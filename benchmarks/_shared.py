"""Shared machinery for the figure benchmarks.

Several figures analyse the *same* experiment (figures 2 and 3 both come
from torrent 8; figures 4, 5, 6 and 10 from torrent 7; figure 1 sweeps
all 26 torrents and figures 9/11 aggregate the same sweep).  Experiments
are therefore memoised per process: the first benchmark that needs a
trace pays for the simulation, later ones reuse it and only time their
analysis.

Set ``REPRO_FAST=1`` to sweep a representative subset of Table I instead
of all 26 torrents (roughly 4x faster; the recorded EXPERIMENTS.md
numbers come from the full sweep).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.instrumentation import Instrumentation, TraceRecorder
from repro.workloads import TorrentScenario, build_experiment, scenario_by_id

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_SEED = 3

FAST_SUBSET = (2, 7, 8, 10, 13, 19, 22, 26)

_trace_cache: Dict[Tuple, Tuple[TorrentScenario, Instrumentation, dict]] = {}


def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


def sweep_ids() -> Tuple[int, ...]:
    if fast_mode():
        return FAST_SUBSET
    return tuple(range(1, 27))


def run_table1_experiment(
    torrent_id: int,
    seed: int = DEFAULT_SEED,
    block_size: Optional[int] = None,
    trace_path: Optional[str] = None,
    **build_kwargs,
) -> Tuple[TorrentScenario, Instrumentation, dict]:
    """Run (or fetch from cache) one Table-I experiment.

    Returns (scenario, finalized trace, summary) where summary carries the
    swarm-level facts the analysis cannot recover from the trace alone.
    When *trace_path* is given a structured JSONL trace of the local peer
    is written there, the summary gains a ``trace_fingerprint`` entry, and
    the memoisation cache is bypassed (the trace must observe a live run).
    """
    key = (torrent_id, seed, block_size, tuple(sorted(build_kwargs)))
    if trace_path is None and key in _trace_cache:
        return _trace_cache[key]
    scenario = scenario_by_id(torrent_id)
    recorder = TraceRecorder(trace_path) if trace_path is not None else None
    # Give every torrent its own RNG stream: several Table-I torrents
    # scale to near-identical parameters, and a shared seed would make
    # them literally the same simulation.
    harness = build_experiment(
        scenario,
        seed=seed + 37 * torrent_id,
        block_size=block_size,
        trace_recorder=recorder,
        **build_kwargs,
    )
    trace = harness.run()
    seeds, leechers = harness.swarm.seeds_and_leechers()
    summary = {
        "first_full_copy_at": harness.swarm.result.first_full_copy_at,
        "final_seeds": seeds,
        "final_leechers": leechers,
        "local_completed_at": trace.seed_state_at,
        "mean_download_time": harness.swarm.result.mean_download_time(),
        "local_address": harness.local_peer.address,
    }
    if recorder is not None:
        summary["trace_fingerprint"] = recorder.close()
        return (scenario, trace, summary)
    _trace_cache[key] = (scenario, trace, summary)
    return _trace_cache[key]


def write_result(name: str, text: str) -> None:
    """Persist a regenerated table/series next to the benchmarks and echo
    it to stdout (visible with ``pytest -s`` or on failure)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / ("%s.txt" % name)
    path.write_text(text)
    print("\n" + text)
