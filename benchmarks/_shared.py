"""Shared machinery for the figure benchmarks.

Several figures analyse the *same* experiment (figures 2 and 3 both come
from torrent 8; figures 4, 5, 6 and 10 from torrent 7; figure 1 sweeps
all 26 torrents and figures 9/11 aggregate the same sweep).  Experiments
are therefore memoised per process: the first benchmark that needs a
trace pays for the simulation, later ones reuse it and only time their
analysis.

Since PR 4 the plain Table-I runs execute through the campaign runner
(:mod:`repro.campaign`): each run is a :class:`~repro.campaign.ShardSpec`
whose derived seed reproduces the historical ``seed + 37 * torrent_id``
stream, so routing through the runner changes nothing about the results
— but it adds two capabilities:

* ``REPRO_CAMPAIGN_CACHE=<dir>`` content-addresses every run into an
  on-disk cache; re-running the benchmarks replays the stored traces
  instead of re-simulating (and a code/config change re-runs exactly the
  invalidated shards).
* ``REPRO_BENCH_WORKERS=<n>`` shards the figure-1/9/11 sweep across
  *n* worker processes (:func:`run_campaign_sweep`); results are
  byte-identical at any worker count.

Set ``REPRO_FAST=1`` to sweep a representative subset of Table I instead
of all 26 torrents (roughly 4x faster; the recorded EXPERIMENTS.md
numbers come from the full sweep).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ShardCache,
    ShardSpec,
    derive_shard_seed,
    execute_shard,
)
from repro.instrumentation import Instrumentation, TraceRecorder
from repro.workloads import TorrentScenario, build_experiment, scenario_by_id

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_SEED = 3

FAST_SUBSET = (2, 7, 8, 10, 13, 19, 22, 26)

_trace_cache: Dict[Tuple, Tuple[TorrentScenario, Instrumentation, dict]] = {}


def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


def sweep_ids() -> Tuple[int, ...]:
    if fast_mode():
        return FAST_SUBSET
    return tuple(range(1, 27))


def bench_workers() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def _campaign_cache() -> Optional[ShardCache]:
    root = os.environ.get("REPRO_CAMPAIGN_CACHE")
    return ShardCache(root) if root else None


def _paper_shard(torrent_id: int, seed: int, block_size: Optional[int]) -> ShardSpec:
    """The campaign shard equivalent to a legacy ``seed + 37 * id`` run."""
    return ShardSpec(
        torrent_id=torrent_id,
        scenario="paper",
        replicate=0,
        seed=derive_shard_seed(seed, torrent_id, "paper", 0),
        block_size=block_size,
    )


def run_table1_experiment(
    torrent_id: int,
    seed: int = DEFAULT_SEED,
    block_size: Optional[int] = None,
    trace_path: Optional[str] = None,
    **build_kwargs,
) -> Tuple[TorrentScenario, Instrumentation, dict]:
    """Run (or fetch from cache) one Table-I experiment.

    Returns (scenario, finalized trace, summary) where summary carries the
    swarm-level facts the analysis cannot recover from the trace alone.
    Plain runs execute through the campaign runner's shard path (module
    docstring); runs with ``build_kwargs`` (ablation strategies — not
    serialisable into a shard spec) or an explicit *trace_path* keep the
    direct path, and the memoisation cache is bypassed for the latter
    (the trace must observe a live run).
    """
    if build_kwargs or trace_path is not None:
        return _run_direct(torrent_id, seed, block_size, trace_path, **build_kwargs)
    key = (torrent_id, seed, block_size)
    if key in _trace_cache:
        return _trace_cache[key]
    shard = _paper_shard(torrent_id, seed, block_size)
    record, trace = execute_shard(
        shard, cache=_campaign_cache(), want_instrumentation=True
    )
    _trace_cache[key] = (scenario_by_id(torrent_id), trace, record["summary"])
    return _trace_cache[key]


def run_campaign_sweep(
    torrent_ids: Optional[Tuple[int, ...]] = None,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> Dict[int, Tuple[TorrentScenario, Instrumentation, dict]]:
    """Run the whole figure-1/9/11 sweep as one campaign.

    With more than one worker the shards execute in parallel processes
    and their traces come back through an on-disk cache
    (``REPRO_CAMPAIGN_CACHE`` or a temporary directory); the rebuilt
    instrumentation is exact (differential-replay guarantee), so the
    sweep's figures are byte-identical at any worker count.  Results
    land in the per-process memo, so later benchmarks reuse them.
    """
    torrent_ids = tuple(torrent_ids or sweep_ids())
    workers = bench_workers() if workers is None else max(1, workers)
    missing = [
        tid for tid in torrent_ids if (tid, seed, None) not in _trace_cache
    ]
    if workers == 1 or len(missing) <= 1:
        for torrent_id in torrent_ids:
            run_table1_experiment(torrent_id, seed=seed)
    elif missing:
        cache = _campaign_cache()
        scratch = None
        if cache is None:
            scratch = tempfile.TemporaryDirectory(prefix="repro-sweep-")
            cache = ShardCache(scratch.name)
        try:
            spec = CampaignSpec(
                name="bench-sweep",
                torrent_ids=tuple(missing),
                campaign_seed=seed,
            )
            CampaignRunner(spec, cache_dir=cache.root, workers=workers).run()
            # Workers filled the on-disk cache; this loop only replays.
            for torrent_id in missing:
                record, trace = execute_shard(
                    _paper_shard(torrent_id, seed, None),
                    cache=cache,
                    want_instrumentation=True,
                )
                _trace_cache[(torrent_id, seed, None)] = (
                    scenario_by_id(torrent_id),
                    trace,
                    record["summary"],
                )
        finally:
            if scratch is not None:
                scratch.cleanup()
    return {
        torrent_id: run_table1_experiment(torrent_id, seed=seed)
        for torrent_id in torrent_ids
    }


def _run_direct(
    torrent_id: int,
    seed: int,
    block_size: Optional[int],
    trace_path: Optional[str],
    **build_kwargs,
) -> Tuple[TorrentScenario, Instrumentation, dict]:
    """The pre-campaign path: live run, optional explicit trace file."""
    key = (torrent_id, seed, block_size, tuple(sorted(build_kwargs)))
    if trace_path is None and key in _trace_cache:
        return _trace_cache[key]
    scenario = scenario_by_id(torrent_id)
    recorder = TraceRecorder(trace_path) if trace_path is not None else None
    # Give every torrent its own RNG stream: several Table-I torrents
    # scale to near-identical parameters, and a shared seed would make
    # them literally the same simulation.
    harness = build_experiment(
        scenario,
        seed=derive_shard_seed(seed, torrent_id, "paper", 0),
        block_size=block_size,
        trace_recorder=recorder,
        **build_kwargs,
    )
    trace = harness.run()
    seeds, leechers = harness.swarm.seeds_and_leechers()
    summary = {
        "first_full_copy_at": harness.swarm.result.first_full_copy_at,
        "final_seeds": seeds,
        "final_leechers": leechers,
        "local_completed_at": trace.seed_state_at,
        "mean_download_time": harness.swarm.result.mean_download_time(),
        "local_address": harness.local_peer.address,
    }
    if recorder is not None:
        summary["trace_fingerprint"] = recorder.close()
        return (scenario, trace, summary)
    _trace_cache[key] = (scenario, trace, summary)
    return _trace_cache[key]


def write_result(name: str, text: str) -> None:
    """Persist a regenerated table/series next to the benchmarks and echo
    it to stdout (visible with ``pytest -s`` or on failure)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / ("%s.txt" % name)
    path.write_text(text)
    print("\n" + text)
