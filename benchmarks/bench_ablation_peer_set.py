"""Ablation A6 — peer-set size: real torrents (80) vs simulations (15).

Reproduces the structural argument of §V: earlier simulation studies
capped the peer set at ~15 peers, which inflates the diameter of the
random graph BitTorrent builds, and "the diameter has a fundamental
impact on the efficiency of the rarest first algorithm".

The same transient torrent runs with mainline's defaults (peer set 80,
40 initiated) and with the [5]-style small sets (peer set 15, 7
initiated).  Reported: graph diameter / average path length, entropy,
and download times.
"""

from repro.analysis import summarize_entropy
from repro.analysis.graph import graph_stats, swarm_graph
from repro.instrumentation import Instrumentation
from repro.protocol.metainfo import make_metainfo
from repro.sim.churn import flash_crowd
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

from _shared import write_result

NUM_PIECES = 96
PIECE_SIZE = 16 * KIB
CROWD = 60


def _run(max_peer_set, max_initiated, min_peer_set, rng_seed=83):
    metainfo = make_metainfo(
        "ablation-a6", num_pieces=NUM_PIECES, piece_size=PIECE_SIZE,
        block_size=4 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=rng_seed))

    def peer_config(upload):
        return PeerConfig(
            upload_capacity=upload,
            max_peer_set=max_peer_set,
            max_initiated=max_initiated,
            min_peer_set=min_peer_set,
        )

    swarm.add_peer(config=peer_config(24 * KIB), is_seed=True)
    flash_crowd(
        swarm,
        CROWD,
        config_factory=lambda rng: peer_config(rng.choice([10, 20, 50]) * KIB),
        spread=20.0,
    )
    trace = Instrumentation()
    swarm.add_peer(config=peer_config(20 * KIB), observer=trace)
    trace.start_sampling()
    # Measure the graph mid-download, while the whole crowd is still
    # leeching (seeds close seed-to-seed links, emptying a finished graph).
    stats_holder = {}

    def sample_graph() -> None:
        stats_holder["stats"] = graph_stats(swarm_graph(swarm))

    swarm.simulator.schedule(60.0, sample_graph)
    result = swarm.run(2500)
    trace.finalize()
    entropy = summarize_entropy(trace)
    return {
        "graph": stats_holder["stats"],
        "ab": entropy.median_local,
        "mean_dl": result.mean_download_time() or float("nan"),
    }


def bench_ablation_peer_set(benchmark):
    def sweep():
        return {
            "mainline-80": _run(max_peer_set=80, max_initiated=40, min_peer_set=20),
            "small-15": _run(max_peer_set=15, max_initiated=7, min_peer_set=4),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation A6 — peer-set size: mainline 80 vs simulation-study 15",
        "%-12s %9s %10s %8s %8s %10s"
        % ("peer set", "diameter", "avg path", "degree", "a/b med", "mean dl"),
    ]
    for name in ("mainline-80", "small-15"):
        stats = results[name]
        graph = stats["graph"]
        lines.append(
            "%-12s %9d %10.2f %8.1f %8.2f %10.0f"
            % (
                name,
                graph.diameter,
                graph.average_path_length,
                graph.mean_degree,
                stats["ab"],
                stats["mean_dl"],
            )
        )
    write_result("ablation_peer_set", "\n".join(lines) + "\n")

    big = results["mainline-80"]
    small = results["small-15"]
    # Shape (§V): small peer sets inflate the graph's diameter and path
    # lengths; the 80-peer graph of real torrents is much denser.
    assert big["graph"].diameter <= small["graph"].diameter
    assert big["graph"].average_path_length < small["graph"].average_path_length
    assert big["graph"].mean_degree > 2 * small["graph"].mean_degree
    # And the torrent does not get faster by knowing fewer peers.
    assert big["mean_dl"] <= small["mean_dl"] * 1.2