"""Ablation A1 — piece-selection strategies (motivates §I and §IV-A.4).

Runs the same mid-size swarm under local rarest first, uniform random,
sequential, and the global-rarest oracle, plus the idealised
network-coding comparator, in both torrent regimes.

Shapes: rarest first >= random >= sequential on diversity; the
global-knowledge oracle adds nothing over local rarest first; the coding
bound is close to rarest first (the paper: "the benefit of network
coding ... will not be significant").
"""

from random import Random

from repro.analysis import replication_series, summarize_entropy
from repro.coding import CodingSwarm
from repro.core.rarest_first import (
    GlobalRarestSelector,
    RandomSelector,
    RarestFirstSelector,
    SequentialSelector,
)
from repro.instrumentation import Instrumentation
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import make_metainfo
from repro.sim.churn import flash_crowd
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

from _shared import write_result

NUM_PIECES = 128
PIECE_SIZE = 32 * KIB
CROWD = 30
SEED_UPLOAD = 24 * KIB
DURATION = 1500.0


def _run(selector_factory, steady, rng_seed=19):
    metainfo = make_metainfo(
        "ablation-a1", num_pieces=NUM_PIECES, piece_size=PIECE_SIZE,
        block_size=8 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=rng_seed, snapshot_interval=10.0))

    def make_selector():
        if selector_factory is GlobalRarestSelector:
            return GlobalRarestSelector(lambda: swarm.global_counts)
        return selector_factory()

    swarm.add_peer(config=PeerConfig(upload_capacity=SEED_UPLOAD), is_seed=True)
    crowd_rng = Random(rng_seed ^ 0xC0FFEE)

    def crowd_kwargs():
        kwargs = {"selector": make_selector()}
        if steady:
            have = crowd_rng.sample(
                range(NUM_PIECES),
                crowd_rng.randint(NUM_PIECES // 20, NUM_PIECES // 4),
            )
            kwargs["initial_bitfield"] = Bitfield(NUM_PIECES, have=have)
        return kwargs

    flash_crowd(
        swarm,
        CROWD,
        config_factory=lambda rng: PeerConfig(
            upload_capacity=rng.choice([8, 16, 24]) * KIB, seeding_time=60.0
        ),
        spread=20.0,
        kwargs_factory=crowd_kwargs,
    )
    trace = Instrumentation()
    local = swarm.add_peer(
        config=PeerConfig(upload_capacity=20 * KIB),
        selector=make_selector(),
        observer=trace,
    )
    trace.start_sampling()
    result = swarm.run(DURATION)
    trace.finalize()
    entropy = summarize_entropy(trace)
    series = replication_series(trace, leecher_state_only=True)
    gaps = [h - l for l, h in zip(series.min_copies, series.max_copies)]
    return {
        "ab": entropy.median_local,
        "cd": entropy.median_remote,
        "gap": sum(gaps) / len(gaps) if gaps else float("nan"),
        "mean_dl": result.mean_download_time() or float("nan"),
    }


def _run_coding(rng_seed=19):
    swarm = CodingSwarm(
        total_size=NUM_PIECES * PIECE_SIZE, config=SwarmConfig(seed=rng_seed)
    )
    swarm.add_peer("seed", PeerConfig(upload_capacity=SEED_UPLOAD), is_seed=True)
    for index in range(CROWD + 1):
        swarm.add_peer(
            "peer%d" % index,
            PeerConfig(upload_capacity=[8, 16, 24][index % 3] * KIB),
        )
    result = swarm.run(DURATION)
    return result.mean_download_time() or float("nan")


STRATEGIES = (
    ("rarest-first", RarestFirstSelector),
    ("random", RandomSelector),
    ("sequential", SequentialSelector),
    ("global-rarest", GlobalRarestSelector),
)


def bench_ablation_piece_selection(benchmark):
    def sweep():
        out = {}
        for regime, steady in (("steady", True), ("transient", False)):
            out[regime] = {
                name: _run(factory, steady) for name, factory in STRATEGIES
            }
        out["coding_mean_dl"] = _run_coding()
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation A1 — piece-selection strategies"]
    for regime in ("steady", "transient"):
        lines.append("--- %s ---" % regime)
        lines.append(
            "%-14s %8s %8s %10s %10s" % ("strategy", "a/b", "c/d", "gap", "mean dl")
        )
        for name, __ in STRATEGIES:
            stats = results[regime][name]
            lines.append(
                "%-14s %8.2f %8.2f %10.1f %10.0f"
                % (name, stats["ab"], stats["cd"], stats["gap"], stats["mean_dl"])
            )
    lines.append("network coding (idealised) mean dl: %.0f s" % results["coding_mean_dl"])
    write_result("ablation_piece_selection", "\n".join(lines) + "\n")

    steady = results["steady"]
    transient = results["transient"]
    # Diversity ordering in steady state: rarest < random < sequential gap.
    assert steady["rarest-first"]["gap"] < steady["random"]["gap"]
    assert steady["random"]["gap"] <= steady["sequential"]["gap"] * 1.1
    # The oracle buys nothing over local rarest first.
    assert abs(
        steady["rarest-first"]["gap"] - steady["global-rarest"]["gap"]
    ) < 0.25 * steady["rarest-first"]["gap"] + 1.0
    # Transient: sequential collapses on download time; rarest first does not.
    assert transient["sequential"]["mean_dl"] > 1.5 * transient["rarest-first"]["mean_dl"]
    # Coding's idealised bound does not leave rarest first far behind.
    assert transient["rarest-first"]["mean_dl"] < 2.0 * results["coding_mean_dl"]