"""Ablation A4 — rarest first's auxiliary policies (§II-C.1).

Toggles, on the instrumented peer, the two block-level policies:

* **strict priority** — finish started pieces first.  Off, the peer
  scatters requests over many pieces and holds more simultaneously
  partial (hence unserveable) pieces;
* **end game mode** — duplicate the last in-flight blocks everywhere.
  On, the tail of the download (last blocks stuck behind one slow
  uploader) shrinks; the paper notes the mode "has little impact on the
  overall performance" but bounds the termination idle time.
"""

from random import Random

from repro.instrumentation import Instrumentation
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

from _shared import write_result

NUM_PIECES = 96


def _run(strict_priority, endgame, rng_seed=67):
    metainfo = make_metainfo(
        "ablation-a4", num_pieces=NUM_PIECES, piece_size=16 * KIB,
        block_size=2 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=rng_seed, snapshot_interval=2.0))
    rng = Random(rng_seed ^ 0xFEED)
    # A deliberately slow seed plus moderate leechers: the last blocks
    # often sit behind a slow uploader, which is what end game punishes.
    swarm.add_peer(config=PeerConfig(upload_capacity=6 * KIB), is_seed=True)
    for __ in range(10):
        have = rng.sample(range(NUM_PIECES), rng.randint(10, 60))
        swarm.add_peer(
            config=PeerConfig(upload_capacity=rng.choice([1, 2, 8]) * KIB),
            initial_bitfield=Bitfield(NUM_PIECES, have=have),
        )
    trace = Instrumentation()
    local = swarm.add_peer(
        config=PeerConfig(
            upload_capacity=20 * KIB,
            strict_priority=strict_priority,
            endgame_enabled=endgame,
        ),
        observer=trace,
    )
    trace.start_sampling()
    result = swarm.run(3000)
    trace.finalize()
    arrivals = sorted(t for t, *__ in trace.block_arrivals)
    tail = arrivals[-1] - arrivals[max(0, len(arrivals) - 20)] if arrivals else None
    partials = [s.active_partial_pieces for s in trace.snapshots if not s.is_seed]
    return {
        "done": result.download_time(local.address),
        "tail_20_blocks": tail,
        "max_partial_pieces": max(partials) if partials else 0,
        "endgame_entered": trace.endgame_at is not None,
    }


def bench_ablation_policies(benchmark):
    def sweep():
        return {
            "baseline": _run(strict_priority=True, endgame=True),
            "no-strict": _run(strict_priority=False, endgame=True),
            "no-endgame": _run(strict_priority=True, endgame=False),
            "neither": _run(strict_priority=False, endgame=False),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation A4 — strict priority and end game mode",
        "%-11s %10s %14s %14s %9s"
        % ("variant", "dl (s)", "tail-20 (s)", "max partial", "endgame"),
    ]
    for name in ("baseline", "no-strict", "no-endgame", "neither"):
        stats = results[name]
        lines.append(
            "%-11s %10.0f %14.1f %14d %9s"
            % (
                name,
                stats["done"] or float("nan"),
                stats["tail_20_blocks"] or float("nan"),
                stats["max_partial_pieces"],
                "yes" if stats["endgame_entered"] else "no",
            )
        )
    write_result("ablation_policies", "\n".join(lines) + "\n")

    # Shapes: strict priority caps the number of partial pieces...
    assert (
        results["baseline"]["max_partial_pieces"]
        < results["no-strict"]["max_partial_pieces"]
    )
    # ...end game mode engages only when enabled...
    assert results["baseline"]["endgame_entered"]
    assert not results["no-endgame"]["endgame_entered"]
    # ...and, per the paper, it has little impact on overall performance.
    assert results["baseline"]["done"] <= results["no-endgame"]["done"] * 1.25