"""Ablation A2 — new vs old seed-state choke algorithm (§IV-B.3).

An instrumented seed serves heterogeneous leechers (three with uncapped
downloads, six capped) plus one fast free rider, under the new (SKU/SRU
round-robin) and the old (rate-ranked) algorithm.

Shapes: the old algorithm concentrates its service time on the fast
downloaders and lets the free rider take a large share; the new one
equalises service time across every interested leecher and clips the
rider to its rotation share.
"""

from repro.core.choke import OldSeedChoker, SeedChoker
from repro.core.fairness import jain_index
from repro.core.free_rider import FreeRiderChoker
from repro.instrumentation import Instrumentation
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

from _shared import write_result

NUM_PIECES = 512


def _run(choker_factory, rng_seed=47):
    metainfo = make_metainfo(
        "ablation-a2", num_pieces=NUM_PIECES, piece_size=4 * KIB, block_size=1 * KIB
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=rng_seed))
    trace = Instrumentation()
    swarm.add_peer(
        config=PeerConfig(upload_capacity=8 * KIB),
        is_seed=True,
        seed_choker=choker_factory(),
        observer=trace,
    )
    trace.start_sampling()
    rider = swarm.add_peer(
        config=PeerConfig(upload_capacity=0.0),
        leecher_choker=FreeRiderChoker(),
        seed_choker=FreeRiderChoker(),
    )
    for index in range(9):
        download = None if index < 3 else 1 * KIB
        swarm.add_peer(
            config=PeerConfig(upload_capacity=256.0, download_capacity=download)
        )
    swarm.run(600)
    trace.finalize()
    rounds = {
        address: float(record.unchoked_rounds_seed)
        for address, record in trace.records.items()
    }
    service = {
        address: record.uploaded_seed_state
        for address, record in trace.records.items()
    }
    total = sum(service.values())
    return {
        "rounds_jain": jain_index(list(rounds.values())),
        "rider_share": service.get(rider.address, 0.0) / total if total else 0.0,
        "top3_rounds_share": (
            sum(sorted(rounds.values(), reverse=True)[:3]) / sum(rounds.values())
            if sum(rounds.values())
            else 0.0
        ),
    }


def bench_ablation_seed_choke(benchmark):
    def sweep():
        return {"new": _run(SeedChoker), "old": _run(OldSeedChoker)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation A2 — seed-state choke: new (SKU/SRU) vs old (rate-ranked)",
        "%-6s %14s %16s %14s"
        % ("algo", "service Jain", "top-3 rounds", "rider share"),
    ]
    for name in ("new", "old"):
        stats = results[name]
        lines.append(
            "%-6s %14.2f %15.0f%% %13.0f%%"
            % (
                name,
                stats["rounds_jain"],
                100 * stats["top3_rounds_share"],
                100 * stats["rider_share"],
            )
        )
    write_result("ablation_seed_choke", "\n".join(lines) + "\n")

    # Shapes: the new algorithm spreads service time more evenly...
    assert results["new"]["rounds_jain"] > results["old"]["rounds_jain"]
    # ...the old one concentrates on a top-3...
    assert results["old"]["top3_rounds_share"] > 0.5
    # ...and the fast free rider takes more under the old algorithm.
    assert results["old"]["rider_share"] > results["new"]["rider_share"]