"""Ablation A5 — super-seeding vs the plain seed in transient state.

§IV-A.4 argues that "simple policies can be implemented to guarantee
that the ratio of duplicate pieces remains low for the initial seed,
e.g., the new choke algorithm in seed state or the super seeding mode",
closing most of the gap to network coding during the torrent's startup.

This bench puts one slow initial seed in front of a flash crowd, with
and without super-seeding, and reports:

* bytes the seed uploaded by the time the first full copy existed
  (1.0 content = zero duplicate service, the coding ideal);
* the duration of the transient phase;
* the crowd's mean download time.
"""

from repro.protocol.metainfo import make_metainfo
from repro.sim.churn import flash_crowd
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

from _shared import write_result

NUM_PIECES = 96
PIECE_SIZE = 16 * KIB
SEED_UPLOAD = 12 * KIB
CROWD = 30


def _run(super_seeding, rng_seed=71):
    metainfo = make_metainfo(
        "ablation-a5", num_pieces=NUM_PIECES, piece_size=PIECE_SIZE,
        block_size=4 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=rng_seed))
    seed = swarm.add_peer(
        config=PeerConfig(upload_capacity=SEED_UPLOAD, super_seeding=super_seeding),
        is_seed=True,
    )
    flash_crowd(
        swarm,
        CROWD,
        config_factory=lambda rng: PeerConfig(
            upload_capacity=rng.choice([10, 20, 50]) * KIB
        ),
        spread=20.0,
    )
    samples = {}
    swarm.on_tick(lambda now: samples.__setitem__(now, seed.total_uploaded))
    result = swarm.run(2500)
    first_copy = result.first_full_copy_at
    uploaded_at_first_copy = None
    if first_copy is not None:
        uploaded_at_first_copy = min(
            (value for time, value in samples.items() if time >= first_copy),
            default=seed.total_uploaded,
        )
    content = metainfo.geometry.total_size
    return {
        "first_copy": first_copy,
        "copies_served": (
            uploaded_at_first_copy / content if uploaded_at_first_copy else None
        ),
        "mean_dl": result.mean_download_time(),
    }


def bench_ablation_super_seeding(benchmark):
    def sweep():
        return {"plain": _run(False), "super": _run(True)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation A5 — super-seeding vs plain initial seed (transient state)",
        "%-7s %14s %22s %10s"
        % ("seed", "1st copy (s)", "copies served by then", "mean dl"),
    ]
    for name in ("plain", "super"):
        stats = results[name]
        lines.append(
            "%-7s %14.0f %22.2f %10.0f"
            % (
                name,
                stats["first_copy"] or float("nan"),
                stats["copies_served"] or float("nan"),
                stats["mean_dl"] or float("nan"),
            )
        )
    write_result("ablation_super_seeding", "\n".join(lines) + "\n")

    plain, fancy = results["plain"], results["super"]
    assert plain["first_copy"] is not None and fancy["first_copy"] is not None
    # Shape: super-seeding serves (close to) exactly one copy before the
    # first full copy exists...
    assert fancy["copies_served"] <= 1.3
    # ...at least as tight as the plain seed's duplicate ratio...
    assert fancy["copies_served"] <= plain["copies_served"] + 0.05
    # ...without hurting the crowd.
    assert fancy["mean_dl"] <= plain["mean_dl"] * 1.3