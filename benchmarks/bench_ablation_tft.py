"""Ablation A3 — choke algorithm vs bit-level tit-for-tat (§IV-B.1).

The paper's two arguments against byte-deficit tit-for-tat, as
experiments:

1. **asymmetric connectivity**: a leecher whose upload is far below its
   download capacity can never use the torrent's excess capacity under
   TFT — its neighbours cut it off at the deficit threshold — while the
   choke algorithm lets it ride the excess;
2. **free riders are penalised either way**, so TFT's harshness buys no
   additional protection worth the stranded capacity.
"""

from random import Random

from repro.core.choke import SeedChoker, TitForTatChoker
from repro.core.free_rider import FreeRiderChoker
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

from _shared import write_result

NUM_PIECES = 192
BLOCK = 1 * KIB


def _run(leecher_choker_factory, rng_seed=59):
    metainfo = make_metainfo(
        "ablation-a3", num_pieces=NUM_PIECES, piece_size=4 * KIB, block_size=BLOCK
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=rng_seed))
    rng = Random(rng_seed ^ 0xABBA)
    # A small seed: most service capacity lives on the leechers, so the
    # leecher-side peer-selection policy is what decides outcomes.
    swarm.add_peer(
        config=PeerConfig(upload_capacity=2 * KIB), is_seed=True,
        seed_choker=SeedChoker(),
    )

    def leecher_config(r):
        return PeerConfig(upload_capacity=4 * KIB, seeding_time=30.0)

    # A reciprocating population met mid-life, sustained by arrivals so
    # the leecher pool never collapses into all-seeds.
    for __ in range(16):
        have = rng.sample(range(NUM_PIECES), rng.randint(20, 110))
        swarm.add_peer(
            config=leecher_config(rng),
            leecher_choker=leecher_choker_factory(),
            initial_bitfield=Bitfield(NUM_PIECES, have=have),
        )
    from repro.sim.churn import poisson_arrivals

    poisson_arrivals(
        swarm,
        rate=0.08,
        duration=4000.0,
        config_factory=leecher_config,
        rng=Random(rng_seed ^ 0xD1CE),
        kwargs_factory=lambda: {"leecher_choker": leecher_choker_factory()},
    )
    # The asymmetric leecher: tiny upload, unconstrained download.
    asymmetric = swarm.add_peer(
        config=PeerConfig(upload_capacity=256.0),
        leecher_choker=leecher_choker_factory(),
    )
    # A free rider for the robustness comparison.
    rider = swarm.add_peer(
        config=PeerConfig(upload_capacity=0.0),
        leecher_choker=FreeRiderChoker(),
        seed_choker=FreeRiderChoker(),
    )
    result = swarm.run(4000)
    return {
        "asymmetric_done": result.completions.get(asymmetric.address),
        "rider_done": result.completions.get(rider.address),
        "mean_dl": result.mean_download_time(),
    }


def bench_ablation_tft(benchmark):
    def sweep():
        return {
            "choke": _run(lambda: None),
            "tft": _run(lambda: TitForTatChoker(deficit_threshold=2 * BLOCK)),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation A3 — mainline choke vs bit-level tit-for-tat",
        "%-6s %18s %14s %12s"
        % ("algo", "asymmetric done", "rider done", "mean dl"),
    ]
    for name in ("choke", "tft"):
        stats = results[name]
        lines.append(
            "%-6s %17.0fs %13.0fs %11.0fs"
            % (
                name,
                stats["asymmetric_done"] or float("nan"),
                stats["rider_done"] or float("nan"),
                stats["mean_dl"] or float("nan"),
            )
        )
    write_result("ablation_tft", "\n".join(lines) + "\n")

    # Shape: the asymmetric leecher completes faster under choke —
    # TFT strands the swarm's excess capacity.
    assert results["choke"]["asymmetric_done"] is not None
    assert results["tft"]["asymmetric_done"] is None or (
        results["choke"]["asymmetric_done"]
        < results["tft"]["asymmetric_done"]
    )
    # Contributors do not pay for that generosity.
    assert results["choke"]["mean_dl"] <= results["tft"]["mean_dl"] * 1.3