"""Engine throughput benchmark: simulated events/sec across swarm sizes.

Unlike the figure/table benchmarks (which reproduce paper artefacts),
this one measures the *simulator itself*: how fast the event engine,
piece picker and fluid bandwidth loop chew through a swarm.  Each swarm
size runs twice on the same seed — once with the naive O(num_pieces)
selection path (``use_rarity_index=False``, the pre-index baseline) and
once with the incremental rarity index — and the report records
wall-clock, events/sec and the indexed-over-naive speedup.  Because the
two paths are trace-equivalent, both runs execute the identical event
sequence: the speedup is pure hot-path cost, not workload drift.

The medium swarm additionally measures structured-tracing overhead
(``tracing_overhead_pct``): the same indexed run with a
``TracingObserver`` on one peer (the default ``repro run --trace``
configuration, budget < 25%) and on every peer (the ``--trace-all``
worst case, informational), asserting that tracing leaves the swarm's
final piece sets byte-identical.

Run it directly (no pytest needed); it writes machine-readable
``BENCH_engine_throughput.json`` at the repository root so future PRs
can diff engine throughput across commits:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from random import Random

from repro.instrumentation import TraceRecorder, TracingObserver
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine_throughput.json"

# One-block pieces keep every request on the piece-selection hot path
# (no strict-priority shortcut), which is exactly what this benchmark
# stresses; capacities are high enough that the swarm makes real
# progress within the simulated window.  High piece counts are the
# regime the rarity buckets exist for: the naive path pays
# O(num_pieces) per selection probe, the indexed path O(rarest bucket).
SWARMS = {
    "small": dict(leechers=10, pieces=512, sim_seconds=400.0),
    "medium": dict(leechers=30, pieces=1024, sim_seconds=450.0),
    "large": dict(leechers=60, pieces=1024, sim_seconds=250.0),
}
QUICK_SCALE = 0.25  # --quick shrinks the simulated window, not the swarm


def build_swarm(
    leechers: int,
    pieces: int,
    seed: int,
    use_rarity_index: bool,
    observer_factory=None,
) -> Swarm:
    metainfo = make_metainfo(
        "throughput-%dp" % pieces,
        num_pieces=pieces,
        piece_size=16 * KIB,
        block_size=16 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=seed))
    swarm.observer_factory = observer_factory
    rng = Random(seed)

    def peer_config() -> PeerConfig:
        return PeerConfig(
            upload_capacity=rng.choice([32, 64, 96, 128]) * KIB,
            use_rarity_index=use_rarity_index,
        )

    swarm.add_peer(config=peer_config(), is_seed=True)
    # Staggered arrivals spread the availability distribution across
    # many copy counts, the regime the rarity buckets are built for.
    for index in range(leechers):
        delay = rng.uniform(0.0, 60.0)
        swarm.schedule_arrival(delay, config=peer_config())
    return swarm


def swarm_fingerprint(swarm: Swarm) -> str:
    """Digest of every peer's final piece set.

    Two runs that executed the identical event sequence end with
    identical per-peer piece sets, so comparing fingerprints between the
    naive and indexed runs proves trace equivalence at piece granularity
    even when the simulated window ends before anyone completes.
    """
    digest = hashlib.sha256()
    for address in sorted(swarm.peers):
        have = sorted(swarm.peers[address].bitfield.have_set)
        digest.update(repr((address, have)).encode())
    return digest.hexdigest()


def run_once(
    leechers: int,
    pieces: int,
    sim_seconds: float,
    seed: int,
    use_rarity_index: bool,
    trace: str = "off",
) -> dict:
    """One timed swarm run.  ``trace`` selects the tracing configuration:
    ``"off"``, ``"local"`` (one observed peer, the paper's methodology and
    what ``repro run --trace`` does) or ``"all"`` (a TracingObserver on
    every peer, the ``--trace-all`` worst case).  The in-memory sink
    keeps disk speed out of the measurement."""
    recorder = None
    factory = None
    if trace != "off":
        recorder = TraceRecorder()
        if trace == "all":
            factory = lambda: TracingObserver(recorder)
        else:
            observers = iter([TracingObserver(recorder)])
            factory = lambda: next(observers, None)
    swarm = build_swarm(leechers, pieces, seed, use_rarity_index, factory)
    started = time.perf_counter()
    result = swarm.run(sim_seconds)
    wall = time.perf_counter() - started
    events = swarm.simulator.events_processed
    row = {
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_second": round(events / wall, 1) if wall > 0 else None,
        "blocks_moved": int(result.bytes_moved // (16 * KIB)),
        "completions": len(result.completions),
        "completion_trace": sorted(result.completions.items()),
        "fingerprint": swarm_fingerprint(swarm),
    }
    if recorder is not None:
        row["trace_events"] = recorder.events_emitted
        recorder.close()
    return row


def run_suite(quick: bool, seed: int) -> dict:
    report = {
        "benchmark": "engine_throughput",
        "python": platform.python_version(),
        "seed": seed,
        "quick": quick,
        "swarms": {},
    }
    for name, params in SWARMS.items():
        sim_seconds = params["sim_seconds"] * (QUICK_SCALE if quick else 1.0)
        sized = {
            "peers": params["leechers"] + 1,
            "pieces": params["pieces"],
            "sim_seconds": sim_seconds,
        }
        for label, use_index in (("naive", False), ("indexed", True)):
            sized[label] = run_once(
                params["leechers"], params["pieces"], sim_seconds, seed, use_index
            )
            print(
                "%-7s %-8s wall=%7.2fs  events/s=%10.1f  blocks=%d"
                % (
                    name,
                    label,
                    sized[label]["wall_seconds"],
                    sized[label]["events_per_second"],
                    sized[label]["blocks_moved"],
                )
            )
        # Trace equivalence makes the comparison apples-to-apples; a
        # mismatch means the indexed path diverged and the timing is
        # meaningless, so record it loudly.  The fingerprint covers every
        # peer's piece set, so this bites even before any completions.
        sized["traces_match"] = (
            sized["naive"].pop("completion_trace")
            == sized["indexed"].pop("completion_trace")
            and sized["naive"]["fingerprint"] == sized["indexed"]["fingerprint"]
            and sized["naive"]["blocks_moved"] == sized["indexed"]["blocks_moved"]
        )
        sized["speedup_indexed_over_naive"] = round(
            sized["naive"]["wall_seconds"] / sized["indexed"]["wall_seconds"], 2
        )
        print(
            "%-7s speedup=%.2fx  traces_match=%s"
            % (name, sized["speedup_indexed_over_naive"], sized["traces_match"])
        )
        if name == "medium":
            # Structured-tracing overhead on the indexed medium swarm:
            # once with the default configuration (one observed peer,
            # the paper instruments a single client — the <25% budget
            # applies here) and once with a TracingObserver on every
            # peer (the --trace-all worst case, reported for scale).
            # Observers must not perturb the simulation, so both traced
            # runs' swarm fingerprints have to match the untraced one.
            preserved = True
            for mode, key in (("local", "indexed_traced"), ("all", "indexed_traced_all")):
                traced = run_once(
                    params["leechers"],
                    params["pieces"],
                    sim_seconds,
                    seed,
                    use_rarity_index=True,
                    trace=mode,
                )
                traced.pop("completion_trace")
                sized[key] = traced
                preserved = preserved and (
                    traced["fingerprint"] == sized["indexed"]["fingerprint"]
                )
                overhead = (
                    traced["wall_seconds"] / sized["indexed"]["wall_seconds"]
                    - 1.0
                ) * 100.0
                traced["tracing_overhead_pct"] = round(overhead, 1)
                print(
                    "%-7s trace:%-5s wall=%7.2fs  overhead=%+.1f%%  "
                    "trace_events=%d"
                    % (name, mode, traced["wall_seconds"], overhead, traced["trace_events"])
                )
            sized["tracing_preserves_run"] = preserved
            sized["tracing_overhead_pct"] = sized["indexed_traced"][
                "tracing_overhead_pct"
            ]
            print(
                "%-7s tracing_overhead=%.1f%% (local, budget <25%%)  run_preserved=%s"
                % (name, sized["tracing_overhead_pct"], preserved)
            )
        report["swarms"][name] = sized
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the simulated window ~4x (smoke-test mode)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output", type=Path, default=OUTPUT, help="report path (JSON)"
    )
    args = parser.parse_args(argv)
    report = run_suite(args.quick, args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % args.output)
    failures = [
        name
        for name, sized in report["swarms"].items()
        if not sized["traces_match"]
    ]
    failures.extend(
        name
        for name, sized in report["swarms"].items()
        if not sized.get("tracing_preserves_run", True)
    )
    if failures:
        print("TRACE MISMATCH in: %s" % ", ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
