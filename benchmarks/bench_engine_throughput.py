"""Engine throughput benchmark: simulated events/sec across swarm sizes.

Unlike the figure/table benchmarks (which reproduce paper artefacts),
this one measures the *simulator itself*: how fast the event engine,
piece picker and fluid bandwidth loop chew through a swarm.  Each swarm
size runs twice on the same seed — once with the naive O(num_pieces)
selection path (``use_rarity_index=False``, the pre-index baseline) and
once with the incremental rarity index — and the report records
wall-clock, events/sec and the indexed-over-naive speedup.  Because the
two paths are trace-equivalent, both runs execute the identical event
sequence: the speedup is pure hot-path cost, not workload drift.

Run it directly (no pytest needed); it writes machine-readable
``BENCH_engine_throughput.json`` at the repository root so future PRs
can diff engine throughput across commits:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from random import Random

from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine_throughput.json"

# One-block pieces keep every request on the piece-selection hot path
# (no strict-priority shortcut), which is exactly what this benchmark
# stresses; capacities are high enough that the swarm makes real
# progress within the simulated window.  High piece counts are the
# regime the rarity buckets exist for: the naive path pays
# O(num_pieces) per selection probe, the indexed path O(rarest bucket).
SWARMS = {
    "small": dict(leechers=10, pieces=512, sim_seconds=400.0),
    "medium": dict(leechers=30, pieces=1024, sim_seconds=450.0),
    "large": dict(leechers=60, pieces=1024, sim_seconds=250.0),
}
QUICK_SCALE = 0.25  # --quick shrinks the simulated window, not the swarm


def build_swarm(
    leechers: int, pieces: int, seed: int, use_rarity_index: bool
) -> Swarm:
    metainfo = make_metainfo(
        "throughput-%dp" % pieces,
        num_pieces=pieces,
        piece_size=16 * KIB,
        block_size=16 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=seed))
    rng = Random(seed)

    def peer_config() -> PeerConfig:
        return PeerConfig(
            upload_capacity=rng.choice([32, 64, 96, 128]) * KIB,
            use_rarity_index=use_rarity_index,
        )

    swarm.add_peer(config=peer_config(), is_seed=True)
    # Staggered arrivals spread the availability distribution across
    # many copy counts, the regime the rarity buckets are built for.
    for index in range(leechers):
        delay = rng.uniform(0.0, 60.0)
        swarm.schedule_arrival(delay, config=peer_config())
    return swarm


def swarm_fingerprint(swarm: Swarm) -> str:
    """Digest of every peer's final piece set.

    Two runs that executed the identical event sequence end with
    identical per-peer piece sets, so comparing fingerprints between the
    naive and indexed runs proves trace equivalence at piece granularity
    even when the simulated window ends before anyone completes.
    """
    digest = hashlib.sha256()
    for address in sorted(swarm.peers):
        have = sorted(swarm.peers[address].bitfield.have_set)
        digest.update(repr((address, have)).encode())
    return digest.hexdigest()


def run_once(
    leechers: int, pieces: int, sim_seconds: float, seed: int, use_rarity_index: bool
) -> dict:
    swarm = build_swarm(leechers, pieces, seed, use_rarity_index)
    started = time.perf_counter()
    result = swarm.run(sim_seconds)
    wall = time.perf_counter() - started
    events = swarm.simulator.events_processed
    return {
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_second": round(events / wall, 1) if wall > 0 else None,
        "blocks_moved": int(result.bytes_moved // (16 * KIB)),
        "completions": len(result.completions),
        "completion_trace": sorted(result.completions.items()),
        "fingerprint": swarm_fingerprint(swarm),
    }


def run_suite(quick: bool, seed: int) -> dict:
    report = {
        "benchmark": "engine_throughput",
        "python": platform.python_version(),
        "seed": seed,
        "quick": quick,
        "swarms": {},
    }
    for name, params in SWARMS.items():
        sim_seconds = params["sim_seconds"] * (QUICK_SCALE if quick else 1.0)
        sized = {
            "peers": params["leechers"] + 1,
            "pieces": params["pieces"],
            "sim_seconds": sim_seconds,
        }
        for label, use_index in (("naive", False), ("indexed", True)):
            sized[label] = run_once(
                params["leechers"], params["pieces"], sim_seconds, seed, use_index
            )
            print(
                "%-7s %-8s wall=%7.2fs  events/s=%10.1f  blocks=%d"
                % (
                    name,
                    label,
                    sized[label]["wall_seconds"],
                    sized[label]["events_per_second"],
                    sized[label]["blocks_moved"],
                )
            )
        # Trace equivalence makes the comparison apples-to-apples; a
        # mismatch means the indexed path diverged and the timing is
        # meaningless, so record it loudly.  The fingerprint covers every
        # peer's piece set, so this bites even before any completions.
        sized["traces_match"] = (
            sized["naive"].pop("completion_trace")
            == sized["indexed"].pop("completion_trace")
            and sized["naive"]["fingerprint"] == sized["indexed"]["fingerprint"]
            and sized["naive"]["blocks_moved"] == sized["indexed"]["blocks_moved"]
        )
        sized["speedup_indexed_over_naive"] = round(
            sized["naive"]["wall_seconds"] / sized["indexed"]["wall_seconds"], 2
        )
        print(
            "%-7s speedup=%.2fx  traces_match=%s"
            % (name, sized["speedup_indexed_over_naive"], sized["traces_match"])
        )
        report["swarms"][name] = sized
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the simulated window ~4x (smoke-test mode)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output", type=Path, default=OUTPUT, help="report path (JSON)"
    )
    args = parser.parse_args(argv)
    report = run_suite(args.quick, args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % args.output)
    failures = [
        name
        for name, sized in report["swarms"].items()
        if not sized["traces_match"]
    ]
    if failures:
        print("TRACE MISMATCH in: %s" % ", ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
