"""Engine throughput benchmark: simulated events/sec across swarm sizes.

Unlike the figure/table benchmarks (which reproduce paper artefacts),
this one measures the *simulator itself*: how fast the event engine,
piece picker and fluid bandwidth loop chew through a swarm.  Each swarm
size runs three times on the same seed:

- ``naive``   — O(num_pieces) selection (``use_rarity_index=False``)
  with every mega-swarm fast path pinned off (``REFERENCE_EXTRA``),
  the pre-index baseline;
- ``indexed`` — incremental rarity index, fast paths still pinned off:
  this reproduces the pre-mega-swarm hot path byte for byte, so the
  committed baseline numbers stay comparable across PRs;
- ``fast``    — default configuration (``extra={}``): availability
  matrix, numpy max-min allocator, fused HAVE fan-out.

Because all three paths are trace-equivalent, the runs execute the
identical event sequence: the recorded ``speedup_indexed_over_naive``
and ``speedup_fast_over_indexed`` are pure hot-path cost, not workload
drift.

The medium swarm additionally measures structured-tracing overhead
(``tracing_overhead_pct``): the indexed run with a ``TracingObserver``
on one peer (the default ``repro run --trace`` configuration, budget
< 25%) and on every peer (the ``--trace-all`` worst case,
informational), asserting that tracing leaves the swarm's final piece
sets byte-identical.  On the *fast* run it then compares the JSONL
recorder against the binary recorder under ``--trace-all``: the binary
trace must decode to byte-identical JSONL lines
(``binary_trace_matches_jsonl``), and two overhead readings are
recorded — against the untraced fast run (the harsh denominator) and
against the indexed reference run, the same denominator the pre-binary
"~88% JSONL overhead" figure used (budget there: <= 25%).

A ``streaming`` tier re-runs the medium swarm as a streaming workload:
every peer carries the playback model and picks pieces through the
sequential-window selector, whose playback-position binding puts
time-dependent state on the selection hot path.  It measures the same
naive/indexed/fast differential as the other tiers and asserts trace
equivalence (plus identical playback outcomes), gating the fast
engine's non-rarest selector dispatch at benchmark scale.

An ``open_system`` tier runs the flash-crowd stability workload: every
leecher departs the instant it completes, selection goes through the
mode-suppression strategy (whose scarcity-oracle binding and optional
offer-declines sit on the selection hot path), and a read-only
``StabilityDetector`` samples the swarm throughout.  The tier measures
the same naive/indexed/fast differential and asserts trace equivalence
*and* identical stability verdicts across the three engine paths.

An ``xlarge`` mega-swarm tier (1000 leechers + 1 seed) runs the fast
configuration only — the reference path would take tens of minutes —
once on the binary-heap event queue and once on the calendar
timer-wheel, asserting the two queues produce identical final piece
sets at four-digit scale.  ``--skip-xlarge`` drops the tier for smoke
runs.

A ``campaign`` section benchmarks the PR-4 campaign runner on an
8-shard experiment matrix three ways — serial (1 worker), parallel
(4 workers, fresh cache) and fully cached — recording the
parallel-over-serial speedup (target >= 3x on a >= 4-core host; the
measured value and the host's core count are both recorded so the
number is interpretable), asserting the two fresh runs' manifests are
byte-identical, and asserting the cached rerun executes zero shards.

Run it directly (no pytest needed); it writes machine-readable
``BENCH_engine_throughput.json`` at the repository root so future PRs
can diff engine throughput across commits:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from random import Random

from repro.campaign import CampaignRunner, CampaignSpec
from repro.instrumentation import (
    BinaryTraceRecorder,
    TraceRecorder,
    TracingObserver,
    binary_to_jsonl,
)
from repro.core.rarest_first import make_selector
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine_throughput.json"

# One-block pieces keep every request on the piece-selection hot path
# (no strict-priority shortcut), which is exactly what this benchmark
# stresses; capacities are high enough that the swarm makes real
# progress within the simulated window.  High piece counts are the
# regime the rarity buckets exist for: the naive path pays
# O(num_pieces) per selection probe, the indexed path O(rarest bucket).
SWARMS = {
    "small": dict(leechers=10, pieces=512, sim_seconds=400.0),
    "medium": dict(leechers=30, pieces=1024, sim_seconds=450.0),
    "large": dict(leechers=60, pieces=1024, sim_seconds=250.0),
}
# The mega-swarm tier: 1000 leechers + 1 seed.  Only the fast
# configuration runs here (the pinned reference path is ~20x slower and
# would push the benchmark out of interactive time); correctness at
# this scale is asserted by running it on both event-queue
# implementations and comparing final piece sets.
XLARGE = dict(leechers=1000, pieces=2048, sim_seconds=90.0)
# The streaming tier: the medium swarm re-run as a streaming workload —
# every leecher consumes in order through the windowed selector while
# playback-position bindings put time-dependent state on the selection
# hot path.  Same naive/indexed/fast differential as the other tiers,
# so the fast-path dispatch for non-rarest selectors stays gated.
STREAMING = dict(leechers=30, pieces=1024, sim_seconds=450.0)
STREAMING_SELECTOR = "seq-window:window=32"
STREAMING_RATE = 24.0 * KIB
# The open-system tier: a flash crowd of depart-on-completion leechers
# against one deliberately weak origin seed, selection through the
# mode-suppression strategy and a StabilityDetector sampling throughout
# — the flash-crowd stability workload (DESIGN.md §14) at benchmark
# scale.
OPEN_SYSTEM = dict(leechers=40, pieces=256, sim_seconds=400.0)
OPEN_SYSTEM_SELECTOR = "mode-suppression:suppression=0.9"
OPEN_SYSTEM_SEED_UPLOAD = 24.0 * KIB
OPEN_SYSTEM_STABILITY_INTERVAL = 20.0
QUICK_SCALE = 0.25  # --quick shrinks the simulated window, not the swarm

# Pins every mega-swarm fast path off: the pre-PR hot path, kept
# runnable forever so baseline numbers stay comparable across commits
# and so the fast path has an in-benchmark differential reference.
REFERENCE_EXTRA = {
    "availability_backend": "index",
    "have_fanout": "unbatched",
    "allocator": "reference",
    "event_queue": "heap",
}
FAST_EXTRA: dict = {}  # defaults: matrix + numpy allocator + fused HAVE

# The campaign benchmark: 4 small Table-I torrents x 2 replicates = 8
# independent shards, enough to keep 4 workers busy; the simulated
# window is chosen so one shard costs ~1-2 s and the whole serial run
# stays under ~15 s.
CAMPAIGN_TORRENTS = (2, 3, 13, 19)
CAMPAIGN_REPLICATES = 2
CAMPAIGN_DURATION = 400.0
CAMPAIGN_WORKERS = 4
CAMPAIGN_SPEEDUP_TARGET = 3.0


def build_swarm(
    leechers: int,
    pieces: int,
    seed: int,
    use_rarity_index: bool,
    observer_factory=None,
    extra=None,
    selector_spec=None,
    playback_rate=None,
    seeding_time=None,
    seed_upload=None,
) -> Swarm:
    metainfo = make_metainfo(
        "throughput-%dp" % pieces,
        num_pieces=pieces,
        piece_size=16 * KIB,
        block_size=16 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=seed, extra=dict(extra or {})))
    swarm.observer_factory = observer_factory
    rng = Random(seed)

    def peer_config() -> PeerConfig:
        kwargs = {}
        if playback_rate is not None:
            kwargs["playback_rate"] = playback_rate
        if seeding_time is not None:
            kwargs["seeding_time"] = seeding_time
        return PeerConfig(
            upload_capacity=rng.choice([32, 64, 96, 128]) * KIB,
            use_rarity_index=use_rarity_index,
            **kwargs,
        )

    def peer_kwargs():
        # Fresh selector per peer: streaming strategies carry per-peer
        # playback-position bindings and must never be shared.
        if selector_spec is None:
            return {}
        return {"selector": make_selector(selector_spec)}

    if seed_upload is not None:
        # Open-system tier: a dedicated weak origin seed that never
        # departs (its config draws no seeding_time).
        swarm.add_peer(
            config=PeerConfig(
                upload_capacity=seed_upload, use_rarity_index=use_rarity_index
            ),
            is_seed=True,
        )
    else:
        swarm.add_peer(config=peer_config(), is_seed=True, **peer_kwargs())
    # Staggered arrivals spread the availability distribution across
    # many copy counts, the regime the rarity buckets are built for.
    for index in range(leechers):
        delay = rng.uniform(0.0, 60.0)
        swarm.schedule_arrival(delay, config=peer_config(), **peer_kwargs())
    return swarm


def swarm_fingerprint(swarm: Swarm) -> str:
    """Digest of every peer's final piece set.

    Two runs that executed the identical event sequence end with
    identical per-peer piece sets, so comparing fingerprints between the
    naive and indexed runs proves trace equivalence at piece granularity
    even when the simulated window ends before anyone completes.
    """
    digest = hashlib.sha256()
    for address in sorted(swarm.peers):
        have = sorted(swarm.peers[address].bitfield.have_set)
        digest.update(repr((address, have)).encode())
    return digest.hexdigest()


def run_once(
    leechers: int,
    pieces: int,
    sim_seconds: float,
    seed: int,
    use_rarity_index: bool,
    trace: str = "off",
    trace_format: str = "jsonl",
    extra=None,
    selector_spec=None,
    playback_rate=None,
    seeding_time=None,
    seed_upload=None,
    stability_interval=None,
) -> dict:
    """One timed swarm run.  ``trace`` selects the tracing configuration:
    ``"off"``, ``"local"`` (one observed peer, the paper's methodology and
    what ``repro run --trace`` does) or ``"all"`` (a TracingObserver on
    every peer, the ``--trace-all`` worst case); ``trace_format`` picks
    the JSONL or the struct-packed binary recorder.  The in-memory sink
    keeps disk speed out of the measurement.  ``extra`` is the
    ``SwarmConfig.extra`` dict selecting reference vs fast engine
    paths."""
    recorder = None
    factory = None
    if trace != "off":
        if trace_format == "binary":
            recorder = BinaryTraceRecorder()
        else:
            recorder = TraceRecorder()
        if trace == "all":
            def factory():
                return TracingObserver(recorder)
        else:
            observers = iter([TracingObserver(recorder)])

            def factory():
                return next(observers, None)
    swarm = build_swarm(
        leechers, pieces, seed, use_rarity_index, factory, extra,
        selector_spec=selector_spec, playback_rate=playback_rate,
        seeding_time=seeding_time, seed_upload=seed_upload,
    )
    detector = None
    if stability_interval is not None:
        from repro.workloads.open_system import StabilityDetector

        detector = StabilityDetector(interval=stability_interval)
        detector.attach(swarm)
    started = time.perf_counter()
    result = swarm.run(sim_seconds)
    wall = time.perf_counter() - started
    events = swarm.simulator.events_processed
    row = {
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_second": round(events / wall, 1) if wall > 0 else None,
        "blocks_moved": int(result.bytes_moved // (16 * KIB)),
        "completions": len(result.completions),
        "completion_trace": sorted(result.completions.items()),
        "fingerprint": swarm_fingerprint(swarm),
    }
    if detector is not None:
        verdict = detector.finalize(swarm.simulator.now)
        row["departures"] = len(result.departures)
        row["stability_verdict"] = verdict.as_dict()
    if playback_rate is not None:
        states = [
            peer.playback
            for peer in swarm.peers.values()
            if peer.playback is not None
        ]
        row["playback_started"] = sum(
            1 for state in states if state.started_at is not None
        )
        row["in_order_pieces_total"] = sum(
            state.in_order_pieces for state in states
        )
    if recorder is not None:
        row["trace_events"] = recorder.events_emitted
        recorder.close()
        # Canonical digest of the trace *as JSONL lines*: a binary
        # trace of the same run must hash identically to the JSONL
        # recorder's output, because binary_to_jsonl is lossless.
        if trace_format == "binary":
            lines = binary_to_jsonl(recorder)
        else:
            lines = recorder.lines()
        row["trace_sha256"] = hashlib.sha256(
            ("\n".join(lines) + "\n").encode()
        ).hexdigest()
    return row


def run_suite(quick: bool, seed: int) -> dict:
    report = {
        "benchmark": "engine_throughput",
        "python": platform.python_version(),
        "seed": seed,
        "quick": quick,
        "swarms": {},
    }
    for name, params in SWARMS.items():
        sim_seconds = params["sim_seconds"] * (QUICK_SCALE if quick else 1.0)
        sized = {
            "peers": params["leechers"] + 1,
            "pieces": params["pieces"],
            "sim_seconds": sim_seconds,
        }
        configs = (
            ("naive", False, REFERENCE_EXTRA),
            ("indexed", True, REFERENCE_EXTRA),
            ("fast", True, FAST_EXTRA),
        )
        for label, use_index, extra in configs:
            sized[label] = run_once(
                params["leechers"], params["pieces"], sim_seconds, seed,
                use_index, extra=extra,
            )
            print(
                "%-7s %-8s wall=%7.2fs  events/s=%10.1f  blocks=%d"
                % (
                    name,
                    label,
                    sized[label]["wall_seconds"],
                    sized[label]["events_per_second"],
                    sized[label]["blocks_moved"],
                )
            )
        # Trace equivalence makes the comparison apples-to-apples; a
        # mismatch means a path diverged and the timing is meaningless,
        # so record it loudly.  The fingerprint covers every peer's
        # piece set, so this bites even before any completions.
        reference_trace = sized["naive"].pop("completion_trace")
        sized["traces_match"] = all(
            sized[label].pop("completion_trace") == reference_trace
            and sized[label]["fingerprint"] == sized["naive"]["fingerprint"]
            and sized[label]["blocks_moved"] == sized["naive"]["blocks_moved"]
            for label in ("indexed", "fast")
        )
        sized["speedup_indexed_over_naive"] = round(
            sized["naive"]["wall_seconds"] / sized["indexed"]["wall_seconds"], 2
        )
        sized["speedup_fast_over_indexed"] = round(
            sized["indexed"]["wall_seconds"] / sized["fast"]["wall_seconds"], 2
        )
        print(
            "%-7s speedup: indexed/naive=%.2fx  fast/indexed=%.2fx  "
            "traces_match=%s"
            % (
                name,
                sized["speedup_indexed_over_naive"],
                sized["speedup_fast_over_indexed"],
                sized["traces_match"],
            )
        )
        if name == "medium":
            # Structured-tracing overhead on the indexed medium swarm:
            # once with the default configuration (one observed peer,
            # the paper instruments a single client — the <25% budget
            # applies here) and once with a TracingObserver on every
            # peer (the --trace-all worst case, reported for scale).
            # Observers must not perturb the simulation, so both traced
            # runs' swarm fingerprints have to match the untraced one.
            preserved = True
            for mode, key in (("local", "indexed_traced"), ("all", "indexed_traced_all")):
                traced = run_once(
                    params["leechers"],
                    params["pieces"],
                    sim_seconds,
                    seed,
                    use_rarity_index=True,
                    trace=mode,
                    extra=REFERENCE_EXTRA,
                )
                traced.pop("completion_trace")
                sized[key] = traced
                preserved = preserved and (
                    traced["fingerprint"] == sized["indexed"]["fingerprint"]
                )
                overhead = (
                    traced["wall_seconds"] / sized["indexed"]["wall_seconds"]
                    - 1.0
                ) * 100.0
                traced["tracing_overhead_pct"] = round(overhead, 1)
                print(
                    "%-7s trace:%-5s wall=%7.2fs  overhead=%+.1f%%  "
                    "trace_events=%d"
                    % (name, mode, traced["wall_seconds"], overhead, traced["trace_events"])
                )
            sized["tracing_preserves_run"] = preserved
            sized["tracing_overhead_pct"] = sized["indexed_traced"][
                "tracing_overhead_pct"
            ]
            print(
                "%-7s tracing_overhead=%.1f%% (local, budget <25%%)  run_preserved=%s"
                % (name, sized["tracing_overhead_pct"], preserved)
            )
            # Binary vs JSONL recorder under --trace-all on the *fast*
            # run — the harshest reading, since the overhead is judged
            # against the quickest untraced baseline.  Losslessness is
            # asserted end to end: the binary trace must decode to the
            # exact JSONL lines the text recorder emitted for the same
            # run.
            binary_preserved = True
            for fmt, key in (
                ("jsonl", "fast_traced_all"),
                ("binary", "fast_traced_all_binary"),
            ):
                traced = run_once(
                    params["leechers"],
                    params["pieces"],
                    sim_seconds,
                    seed,
                    use_rarity_index=True,
                    trace="all",
                    trace_format=fmt,
                    extra=FAST_EXTRA,
                )
                traced.pop("completion_trace")
                sized[key] = traced
                binary_preserved = binary_preserved and (
                    traced["fingerprint"] == sized["fast"]["fingerprint"]
                )
                overhead = (
                    traced["wall_seconds"] / sized["fast"]["wall_seconds"]
                    - 1.0
                ) * 100.0
                traced["tracing_overhead_pct"] = round(overhead, 1)
                print(
                    "%-7s trace-all:%-7s wall=%7.2fs  overhead=%+.1f%%  "
                    "trace_events=%d"
                    % (name, fmt, traced["wall_seconds"], overhead,
                       traced["trace_events"])
                )
            sized["binary_tracing_preserves_run"] = binary_preserved
            sized["binary_trace_matches_jsonl"] = (
                sized["fast_traced_all"]["trace_sha256"]
                == sized["fast_traced_all_binary"]["trace_sha256"]
            )
            sized["binary_tracing_overhead_pct"] = sized[
                "fast_traced_all_binary"
            ]["tracing_overhead_pct"]
            # The pre-binary "~88% overhead" figure was swarm-wide JSONL
            # tracing measured against the then-default (indexed
            # reference) engine; the <=25% binary budget uses the same
            # denominator.  The _pct number above judges binary tracing
            # against the much faster untraced fast engine — the harsher
            # reading — and is reported alongside.
            sized["binary_tracing_overhead_vs_indexed_pct"] = round(
                (
                    sized["fast_traced_all_binary"]["wall_seconds"]
                    / sized["indexed"]["wall_seconds"]
                    - 1.0
                )
                * 100.0,
                1,
            )
            print(
                "%-7s binary_tracing_overhead: vs_fast=%+.1f%%  "
                "vs_indexed=%+.1f%% (budget <=25%%)  lossless=%s  "
                "run_preserved=%s"
                % (
                    name,
                    sized["binary_tracing_overhead_pct"],
                    sized["binary_tracing_overhead_vs_indexed_pct"],
                    sized["binary_trace_matches_jsonl"],
                    binary_preserved,
                )
            )
        report["swarms"][name] = sized
    return report


def run_streaming_suite(quick: bool, seed: int) -> dict:
    """The streaming tier: naive/indexed/fast differential with the
    sequential-window selector and the playback model on every peer.

    Playback-position bindings make selection depend on simulated time,
    the regime the streaming strategies add to the hot path; the three
    engine paths must still execute the identical event sequence, so
    ``traces_match`` here gates the non-rarest fast-engine dispatch
    (matrix backend falling back to the candidate scan) at benchmark
    scale.
    """
    sim_seconds = STREAMING["sim_seconds"] * (QUICK_SCALE if quick else 1.0)
    section = {
        "peers": STREAMING["leechers"] + 1,
        "pieces": STREAMING["pieces"],
        "sim_seconds": sim_seconds,
        "selector": STREAMING_SELECTOR,
        "playback_rate": STREAMING_RATE,
    }
    configs = (
        ("naive", False, REFERENCE_EXTRA),
        ("indexed", True, REFERENCE_EXTRA),
        ("fast", True, FAST_EXTRA),
    )
    for label, use_index, extra in configs:
        section[label] = run_once(
            STREAMING["leechers"], STREAMING["pieces"], sim_seconds, seed,
            use_index, extra=extra,
            selector_spec=STREAMING_SELECTOR, playback_rate=STREAMING_RATE,
        )
        print(
            "%-9s %-8s wall=%7.2fs  events/s=%10.1f  blocks=%d  "
            "playing=%d  in_order=%d"
            % (
                "streaming",
                label,
                section[label]["wall_seconds"],
                section[label]["events_per_second"],
                section[label]["blocks_moved"],
                section[label]["playback_started"],
                section[label]["in_order_pieces_total"],
            )
        )
    reference_trace = section["naive"].pop("completion_trace")
    section["traces_match"] = all(
        section[label].pop("completion_trace") == reference_trace
        and section[label]["fingerprint"] == section["naive"]["fingerprint"]
        and section[label]["playback_started"]
        == section["naive"]["playback_started"]
        and section[label]["in_order_pieces_total"]
        == section["naive"]["in_order_pieces_total"]
        for label in ("indexed", "fast")
    )
    section["speedup_indexed_over_naive"] = round(
        section["naive"]["wall_seconds"] / section["indexed"]["wall_seconds"], 2
    )
    section["speedup_fast_over_indexed"] = round(
        section["indexed"]["wall_seconds"] / section["fast"]["wall_seconds"], 2
    )
    print(
        "%-9s speedup: indexed/naive=%.2fx  fast/indexed=%.2fx  "
        "traces_match=%s"
        % (
            "streaming",
            section["speedup_indexed_over_naive"],
            section["speedup_fast_over_indexed"],
            section["traces_match"],
        )
    )
    return section


def run_open_system_suite(quick: bool, seed: int) -> dict:
    """The open-system flash-crowd tier: depart-on-completion arrivals,
    mode-suppression selection and a sampling StabilityDetector.

    The suppression decision consults the picker's scarcity oracle on
    every selection probe (and may consume an extra RNG draw to decline
    an offer), and completion-time departures put peer-teardown events
    on the hot path — the costs this tier exists to track.  The three
    engine paths must execute the identical event sequence *and* reach
    the identical stability verdict.
    """
    sim_seconds = OPEN_SYSTEM["sim_seconds"] * (QUICK_SCALE if quick else 1.0)
    section = {
        "peers": OPEN_SYSTEM["leechers"] + 1,
        "pieces": OPEN_SYSTEM["pieces"],
        "sim_seconds": sim_seconds,
        "selector": OPEN_SYSTEM_SELECTOR,
        "seed_upload": OPEN_SYSTEM_SEED_UPLOAD,
        "stability_interval": OPEN_SYSTEM_STABILITY_INTERVAL,
    }
    configs = (
        ("naive", False, REFERENCE_EXTRA),
        ("indexed", True, REFERENCE_EXTRA),
        ("fast", True, FAST_EXTRA),
    )
    for label, use_index, extra in configs:
        section[label] = run_once(
            OPEN_SYSTEM["leechers"], OPEN_SYSTEM["pieces"], sim_seconds, seed,
            use_index, extra=extra,
            selector_spec=OPEN_SYSTEM_SELECTOR, seeding_time=0.0,
            seed_upload=OPEN_SYSTEM_SEED_UPLOAD,
            stability_interval=OPEN_SYSTEM_STABILITY_INTERVAL,
        )
        print(
            "%-11s %-8s wall=%7.2fs  events/s=%10.1f  blocks=%d  "
            "departed=%d  stable=%s"
            % (
                "open-system",
                label,
                section[label]["wall_seconds"],
                section[label]["events_per_second"],
                section[label]["blocks_moved"],
                section[label]["departures"],
                section[label]["stability_verdict"]["stable"],
            )
        )
    reference_trace = section["naive"].pop("completion_trace")
    section["traces_match"] = all(
        section[label].pop("completion_trace") == reference_trace
        and section[label]["fingerprint"] == section["naive"]["fingerprint"]
        and section[label]["departures"] == section["naive"]["departures"]
        and section[label]["stability_verdict"]
        == section["naive"]["stability_verdict"]
        for label in ("indexed", "fast")
    )
    section["speedup_indexed_over_naive"] = round(
        section["naive"]["wall_seconds"] / section["indexed"]["wall_seconds"], 2
    )
    section["speedup_fast_over_indexed"] = round(
        section["indexed"]["wall_seconds"] / section["fast"]["wall_seconds"], 2
    )
    print(
        "%-11s speedup: indexed/naive=%.2fx  fast/indexed=%.2fx  "
        "traces_match=%s"
        % (
            "open-system",
            section["speedup_indexed_over_naive"],
            section["speedup_fast_over_indexed"],
            section["traces_match"],
        )
    )
    return section


def run_xlarge_suite(quick: bool, seed: int) -> dict:
    """The 1000-leecher mega-swarm tier, fast configuration only.

    The pinned reference path is far too slow for interactive use at
    this scale, so instead of a naive-path differential the tier runs
    the same swarm on both event-queue implementations (binary heap vs
    calendar timer-wheel) and asserts identical final piece sets —
    queue-order equivalence at four-digit scale, where bucket-rotation
    bugs would actually surface.
    """
    sim_seconds = XLARGE["sim_seconds"] * (QUICK_SCALE if quick else 1.0)
    section = {
        "peers": XLARGE["leechers"] + 1,
        "pieces": XLARGE["pieces"],
        "sim_seconds": sim_seconds,
    }
    for label, queue in (("fast", "heap"), ("fast_wheel", "wheel")):
        extra = dict(FAST_EXTRA, event_queue=queue)
        section[label] = run_once(
            XLARGE["leechers"], XLARGE["pieces"], sim_seconds, seed,
            use_rarity_index=True, extra=extra,
        )
        print(
            "%-7s %-10s wall=%7.2fs  events/s=%10.1f  blocks=%d"
            % (
                "xlarge",
                label,
                section[label]["wall_seconds"],
                section[label]["events_per_second"],
                section[label]["blocks_moved"],
            )
        )
    section["traces_match"] = (
        section["fast"].pop("completion_trace")
        == section["fast_wheel"].pop("completion_trace")
        and section["fast"]["fingerprint"] == section["fast_wheel"]["fingerprint"]
        and section["fast"]["blocks_moved"] == section["fast_wheel"]["blocks_moved"]
    )
    print(
        "%-7s heap-vs-wheel traces_match=%s"
        % ("xlarge", section["traces_match"])
    )
    return section


def run_campaign_suite(quick: bool, seed: int) -> dict:
    """Serial vs parallel vs worker-pool vs cached runs of one campaign.

    Four invocations of the same spec: ``workers=1`` into a fresh cache,
    ``workers=4`` into another fresh cache (the speedup pair), a
    2-worker ``worker-pool`` socket backend into a third, then
    ``workers=4`` again on the warm cache (must execute nothing).
    Manifest fingerprints cover every shard's trace fingerprint, so
    their equality proves the parallel and distributed runs computed
    byte-identical results, not just "also finished".

    The serial-vs-parallel speedup is only *recorded* on hosts with at
    least 2 CPUs: on a 1-CPU host the two runs contend for the same
    core and the ratio measures process-pool overhead, not parallelism
    — recording it would be misleading, so it is skipped (and says so).
    """
    duration = CAMPAIGN_DURATION * (QUICK_SCALE if quick else 1.0)
    spec = CampaignSpec(
        name="bench-campaign",
        torrent_ids=CAMPAIGN_TORRENTS,
        scenarios=("smoke",),
        replicates=CAMPAIGN_REPLICATES,
        campaign_seed=seed,
        duration=duration,
    )

    def timed_run(cache_dir: str, workers: int, backend: str = "local"):
        started = time.perf_counter()
        result = CampaignRunner(
            spec, cache_dir=cache_dir, workers=workers, backend=backend
        ).run()
        return result, time.perf_counter() - started

    cpus = os.cpu_count() or 1
    measure_speedup = cpus >= 2
    with tempfile.TemporaryDirectory(prefix="bench-campaign-serial-") as serial_dir, \
            tempfile.TemporaryDirectory(prefix="bench-campaign-par-") as parallel_dir, \
            tempfile.TemporaryDirectory(prefix="bench-campaign-pool-") as pool_dir:
        serial, serial_wall = timed_run(serial_dir, 1)
        parallel, parallel_wall = timed_run(parallel_dir, CAMPAIGN_WORKERS)
        pool, pool_wall = timed_run(
            pool_dir, 1, backend="worker-pool:spawn=2"
        )
        cached, cached_wall = timed_run(parallel_dir, CAMPAIGN_WORKERS)

    section = {
        "shards": serial.counts["shards"],
        "replicates": CAMPAIGN_REPLICATES,
        "sim_seconds": duration,
        "workers": CAMPAIGN_WORKERS,
        "cpus": cpus,
        "serial_wall_seconds": round(serial_wall, 4),
        "parallel_wall_seconds": round(parallel_wall, 4),
        "worker_pool_workers": 2,
        "worker_pool_wall_seconds": round(pool_wall, 4),
        "deterministic_across_workers": serial.fingerprint == parallel.fingerprint,
        "deterministic_across_backends": serial.fingerprint == pool.fingerprint,
        "manifest_fingerprint": serial.fingerprint,
        "cached_rerun_wall_seconds": round(cached_wall, 4),
        "cached_rerun_executed": cached.counts["executed"],
        "cached_rerun_cache_hits": cached.counts["cache_hits"],
    }
    if measure_speedup:
        section["speedup_parallel_over_serial"] = (
            round(serial_wall / parallel_wall, 2) if parallel_wall > 0 else None
        )
        section["speedup_target"] = CAMPAIGN_SPEEDUP_TARGET
        # The 3x target only binds where 4 workers have 4 cores to run
        # on; on smaller multi-CPU hosts the value is informational.
        section["speedup_target_applies"] = cpus >= CAMPAIGN_WORKERS
    else:
        section["speedup_skipped"] = (
            "1 CPU: serial and parallel contend for the same core, the "
            "ratio would measure pool overhead, not parallelism"
        )
    print(
        "campaign %d shards: serial=%.2fs  parallel(%d workers, %d cpus)=%.2fs  "
        "worker-pool(2 workers)=%.2fs  deterministic=%s/%s"
        % (
            section["shards"], serial_wall, CAMPAIGN_WORKERS, cpus,
            parallel_wall, pool_wall,
            section["deterministic_across_workers"],
            section["deterministic_across_backends"],
        )
    )
    if measure_speedup:
        print(
            "campaign speedup: %.2fx over serial (target %.1fx%s)"
            % (
                section["speedup_parallel_over_serial"],
                CAMPAIGN_SPEEDUP_TARGET,
                "" if section["speedup_target_applies"]
                else ", informational on %d cpus" % cpus,
            )
        )
    else:
        print("campaign speedup: skipped (%s)" % section["speedup_skipped"])
    print(
        "campaign cached rerun: wall=%.2fs  executed=%d  cache_hits=%d"
        % (cached_wall, cached.counts["executed"], cached.counts["cache_hits"])
    )
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the simulated window ~4x (smoke-test mode)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output", type=Path, default=OUTPUT, help="report path (JSON)"
    )
    parser.add_argument(
        "--skip-xlarge",
        action="store_true",
        help="skip the 1000-leecher mega-swarm tier",
    )
    args = parser.parse_args(argv)
    report = run_suite(args.quick, args.seed)
    report["swarms"]["streaming"] = run_streaming_suite(args.quick, args.seed)
    report["swarms"]["open_system"] = run_open_system_suite(args.quick, args.seed)
    if not args.skip_xlarge:
        report["swarms"]["xlarge"] = run_xlarge_suite(args.quick, args.seed)
    report["campaign"] = run_campaign_suite(args.quick, args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % args.output)
    failures = [
        name
        for name, sized in report["swarms"].items()
        if not sized["traces_match"]
    ]
    failures.extend(
        name
        for name, sized in report["swarms"].items()
        if not (
            sized.get("tracing_preserves_run", True)
            and sized.get("binary_tracing_preserves_run", True)
            and sized.get("binary_trace_matches_jsonl", True)
        )
    )
    if failures:
        print("TRACE MISMATCH in: %s" % ", ".join(failures), file=sys.stderr)
        return 1
    campaign = report["campaign"]
    if not campaign["deterministic_across_workers"]:
        print("CAMPAIGN MANIFEST DIVERGED across worker counts", file=sys.stderr)
        return 1
    if not campaign["deterministic_across_backends"]:
        print(
            "CAMPAIGN MANIFEST DIVERGED between local and worker-pool "
            "backends",
            file=sys.stderr,
        )
        return 1
    if campaign["cached_rerun_executed"] != 0:
        print(
            "CAMPAIGN CACHE MISS: rerun executed %d shards"
            % campaign["cached_rerun_executed"],
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
