"""Figure 10 — correlation between unchokes and interested time, torrent 7.

Per remote peer: the number of times the local peer unchoked it against
the time it was interested in the local peer, in leecher state (top
graph) and in seed state (bottom graph).

Paper shape: in leecher state there is *no* correlation for the
frequently unchoked peers (a small stable subset is regularly unchoked
on reciprocation, not on interest time; the optimistic unchoke adds a
mild interest-time trend among the rarely unchoked).  In seed state the
correlation is strong: the longer a peer is interested, the more
rotation slots it collects — the new seed algorithm's equal-service-time
behaviour.

Discriminating statistic: the share of *service time* (unchoked rounds)
held by the 5 most-served peers.  The leecher choke concentrates
service on its reciprocating subset (large top-5 share, the "few peers
unchoked frequently" of the paper's top graph); the seed rotation
spreads it thin (small top-5 share) and correlates it with interested
time instead.
"""

from repro.analysis import unchoke_interest_correlation
from repro.analysis.stats import pearson

from _shared import run_table1_experiment, write_result

TORRENT = 7


def _service_stats(trace, state):
    """(top-5 service share, Pearson(interest, rounds), n) for one state."""
    window = (
        trace.leecher_interval if state == "leecher" else trace.seed_interval
    )
    if window is None:
        return 0.0, 0.0, 0
    start, end = window
    interests, rounds = [], []
    for record in trace.records.values():
        interested = record.remote_interested_in_local.total_clipped(start, end)
        count = (
            record.unchoked_rounds_leecher
            if state == "leecher"
            else record.unchoked_rounds_seed
        )
        if interested > 0 or count > 0:
            interests.append(interested)
            rounds.append(float(count))
    total = sum(rounds)
    if total == 0:
        return 0.0, 0.0, len(rounds)
    top5 = sum(sorted(rounds, reverse=True)[:5]) / total
    return top5, pearson(interests, rounds), len(rounds)


def bench_fig10_unchoke_correlation(benchmark):
    def run():
        __, trace, __s = run_table1_experiment(TORRENT)
        leecher = unchoke_interest_correlation(trace, state="leecher")
        seed = unchoke_interest_correlation(trace, state="seed")
        return (
            leecher,
            seed,
            _service_stats(trace, "leecher"),
            _service_stats(trace, "seed"),
        )

    leecher, seed, leecher_stats, seed_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    leecher_top5, leecher_r, leecher_n = leecher_stats
    seed_top5, seed_r, seed_n = seed_stats

    lines = [
        "Figure 10 — unchokes vs interested time (torrent 7)",
        "leecher state: n=%d  top-5 service share = %.2f  Pearson(interest, service) = %.2f"
        % (leecher_n, leecher_top5, leecher_r),
        "seed state:    n=%d  top-5 service share = %.2f  Pearson(interest, service) = %.2f"
        % (seed_n, seed_top5, seed_r),
        "",
        "leecher state (interested s -> unchokes):",
    ]
    for interest, count in sorted(
        zip(leecher.interested_times, leecher.unchoke_counts)
    )[:: max(1, len(leecher) // 30)]:
        lines.append("  %8.0f %6d" % (interest, count))
    lines.append("seed state (interested s -> unchokes):")
    for interest, count in sorted(
        zip(seed.interested_times, seed.unchoke_counts)
    )[:: max(1, len(seed) // 30)]:
        lines.append("  %8.0f %6d" % (interest, count))
    write_result("fig10_unchoke_correlation", "\n".join(lines) + "\n")

    assert leecher_n >= 10 and seed_n >= 10
    # Shape: the leecher choke elects a small stable subset, the seed
    # rotation spreads service across everyone...
    assert leecher_top5 > 1.2 * seed_top5
    assert seed_top5 < 0.3
    # ...and in seed state (only there) service tracks interested time:
    # rotation slots accumulate with time spent interested, while the
    # leecher choke follows reciprocation instead.
    assert seed_r > 0.3
    assert seed_r > leecher_r + 0.2