"""Figure 11 — fairness of the (new) choke algorithm in seed state.

For each torrent: remote peers ranked by the bytes received from the
local peer while it was a seed, grouped in sets of 5, each set's share
of the seed-state upload.

Paper shape: the shares are spread far more evenly across the sets than
in leecher state (figure 9) — the new seed-state algorithm gives every
interested leecher the same service time, so no small set monopolises
the seed.  (Torrents where fewer than ~10 peers were served concentrate
trivially, as the paper notes for its torrents 6 and 15.)
"""

from repro.analysis import leecher_contribution, seed_contribution

from _shared import run_table1_experiment, sweep_ids, write_result


def _sweep():
    rows = []
    for torrent_id in sweep_ids():
        scenario, trace, __ = run_table1_experiment(torrent_id)
        seed_shares = seed_contribution(trace)
        up_shares, __down = leecher_contribution(trace)
        served = sum(
            1
            for record in trace.records.values()
            if record.uploaded_seed_state > 0
        )
        rows.append((scenario, seed_shares, up_shares, served))
    return rows


def bench_fig11_seed_fairness(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        "Figure 11 — seed-state upload contribution by sets of 5 peers",
        "%-3s %6s | %5s %5s %5s %5s %5s %5s"
        % ("ID", "served", "s1", "s2", "s3", "s4", "s5", "s6"),
    ]
    seed_top, leech_top = [], []
    for scenario, seed_shares, up_shares, served in rows:
        lines.append(
            "%-3d %6d | %5.2f %5.2f %5.2f %5.2f %5.2f %5.2f"
            % tuple([scenario.torrent_id, served] + seed_shares)
        )
        if served >= 15 and sum(up_shares) > 0:
            seed_top.append(seed_shares[0])
            leech_top.append(up_shares[0])
    write_result("fig11_seed_fairness", "\n".join(lines) + "\n")

    assert len(seed_top) >= 5
    # Shape: the seed-state top set takes a visibly smaller share than
    # the leecher-state top set — service is spread across the sets.
    mean_seed_top = sum(seed_top) / len(seed_top)
    mean_leech_top = sum(leech_top) / len(leech_top)
    assert mean_seed_top < mean_leech_top