"""Figure 1 — entropy characterisation.

For every Table-I torrent, joins it with the instrumented client and
reports the 20th percentile, median and 80th percentile of the two
peer-availability ratios of §IV-A.1:

* a/b: time the local peer (leecher state) is interested in each remote
  leecher over that remote's time in the peer set (top graph);
* c/d: time each remote leecher is interested in the local peer over the
  same presence time (bottom graph).

Paper shape: most torrents sit close to 1 on both graphs; the torrents
in a startup (transient) phase — 1, 2, 4, 5, 6, 8, 9 — are visibly lower
on the top graph.

The sweep executes as one campaign through
:func:`_shared.run_campaign_sweep`: set ``REPRO_BENCH_WORKERS=4`` to
shard the 26 torrents across 4 worker processes (byte-identical
results, the campaign runner derives every shard's seed independently
of scheduling) and ``REPRO_CAMPAIGN_CACHE=<dir>`` to reuse traces
across invocations.
"""

import math

from repro.analysis import summarize_entropy

from _shared import run_campaign_sweep, sweep_ids, write_result


def _sweep():
    rows = []
    experiments = run_campaign_sweep(sweep_ids())
    for torrent_id in sweep_ids():
        scenario, trace, __ = experiments[torrent_id]
        summary = summarize_entropy(trace)
        rows.append((scenario, summary))
    return rows


def bench_fig1_entropy(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        "Figure 1 — entropy characterisation (per-torrent percentiles)",
        "%-3s %5s | %6s %6s %6s | %6s %6s %6s | %-9s"
        % ("ID", "n", "a/b20", "a/b50", "a/b80", "c/d20", "c/d50", "c/d80", "state"),
    ]
    steady_ab_medians = []
    transient_ab_medians = []
    steady_cd_medians = []
    for scenario, summary in rows:
        lines.append(
            "%-3d %5d | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f | %-9s"
            % (
                scenario.torrent_id,
                len(summary.local_in_remote),
                summary.p20_local,
                summary.median_local,
                summary.p80_local,
                summary.p20_remote,
                summary.median_remote,
                summary.p80_remote,
                "transient" if scenario.transient else "steady",
            )
        )
        if not math.isnan(summary.median_local):
            if scenario.transient:
                transient_ab_medians.append(summary.median_local)
            else:
                steady_ab_medians.append(summary.median_local)
        if not scenario.transient and not math.isnan(summary.median_remote):
            steady_cd_medians.append(summary.median_remote)
    write_result("fig1_entropy", "\n".join(lines) + "\n")

    # Shape criteria (DESIGN.md S5):
    # most steady torrents have median a/b ~ 1 ...
    close_to_one = sum(1 for m in steady_ab_medians if m >= 0.9)
    assert close_to_one / len(steady_ab_medians) >= 0.8
    # ... transient torrents sit visibly lower on the top graph ...
    mean_steady = sum(steady_ab_medians) / len(steady_ab_medians)
    mean_transient = sum(transient_ab_medians) / len(transient_ab_medians)
    assert mean_transient < mean_steady - 0.15
    # ... and the bottom graph's medians are high for steady torrents.
    high_cd = sum(1 for m in steady_cd_medians if m >= 0.7)
    assert high_cd / len(steady_cd_medians) >= 0.6
