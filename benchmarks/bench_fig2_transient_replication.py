"""Figure 2 — piece replication in the peer set, transient torrent.

Paper torrent 8 (1 seed, 861 leechers, 3 GB): the number of copies of
the least/mean/most replicated piece in the local peer set over time,
while the local peer is a leecher.  Paper shape: the min curve stays at
zero for most of the run — rare pieces exist that the 80-peer set does
not hold — the max hugs the peer-set size, and the mean climbs steadily.

Scaling note: the paper's peer set samples 80 of ~860 peers, so the
initial seed is usually *outside* it and rare pieces read as zero
copies.  The scaled swarm fits entirely inside the peer set, so the
same phenomenon — pieces present only at the initial seed — reads as
*one* copy.  The shape criterion is therefore "min <= 1 for most of the
leecher phase", identical up to the seed's own membership.

The experiment executes as campaign shard ``t08-paper-r0`` (through
``_shared.run_table1_experiment``): the summary carries the shard's
trace fingerprint, recorded below so the result file pins the exact
run it was derived from.
"""

from repro.analysis import replication_series

from _shared import run_table1_experiment, write_result

TORRENT = 8


def bench_fig2_transient_replication(benchmark):
    def run():
        __, trace, summary = run_table1_experiment(TORRENT)
        return replication_series(trace, leecher_state_only=True), summary

    series, summary = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 2 — copies of pieces in the peer set vs time (torrent 8, leecher state)",
        "%8s %6s %8s %6s" % ("t (s)", "min", "mean", "max"),
    ]
    step = max(1, len(series.times) // 40)
    for index in range(0, len(series.times), step):
        lines.append(
            "%8.0f %6d %8.2f %6d"
            % (
                series.times[index],
                series.min_copies[index],
                series.mean_copies[index],
                series.max_copies[index],
            )
        )
    rare_fraction = sum(1 for low in series.min_copies if low <= 1) / len(
        series.min_copies
    )
    lines.append(
        "fraction of samples with rare pieces (min <= 1 copy): %.2f"
        % rare_fraction
    )
    lines.append("first full copy pushed at: %s" % summary["first_full_copy_at"])
    if summary.get("trace_fingerprint"):
        lines.append("shard trace fingerprint: %s" % summary["trace_fingerprint"])
    write_result("fig2_transient_replication", "\n".join(lines) + "\n")

    # Shape: rare pieces (only at the initial seed) for most of the
    # leecher phase — the paper's min-at-zero curve, shifted by the
    # seed's own peer-set membership (see module docstring).
    assert rare_fraction > 0.7
    # Max approaches the peer-set scale while the min stays rare.
    assert max(series.max_copies) >= 20
    # The mean climbs: available pieces replicate fast (exponentially).
    assert series.mean_copies[-1] > series.mean_copies[0]
