"""Figure 3 — number of rarest pieces vs time, transient torrent.

Paper torrent 8: the size of the rarest-pieces set decreases *linearly*
with time, because the rare pieces are served by the initial seed at a
constant rate — the paper derives the seed's upload capacity (~36 kB/s)
from this slope.  Shape: negative slope, good linear fit, and a decay
rate close to the configured upload capacity of the scaled scenario's
initial seed.

Shares campaign shard ``t08-paper-r0`` with figure 2 (one simulation,
two analyses): with ``REPRO_CAMPAIGN_CACHE`` set, both figures replay
the same cached trace.
"""

from repro.analysis import rarest_set_series
from repro.analysis.replication import linearity_r_squared, rarest_set_decay_rate

from _shared import run_table1_experiment, write_result

TORRENT = 8


def bench_fig3_transient_rarest_set(benchmark):
    def run():
        scenario, trace, summary = run_table1_experiment(TORRENT)
        times, sizes = rarest_set_series(trace, leecher_state_only=True)
        return scenario, times, sizes, summary

    scenario, times, sizes, summary = benchmark.pedantic(run, rounds=1, iterations=1)

    # Fit only the strictly transient window (before the first full copy),
    # as the paper does: after it the set size has collapsed.
    cutoff = summary["first_full_copy_at"] or times[-1]
    fit_times = [t for t in times if t <= cutoff]
    fit_sizes = sizes[: len(fit_times)]
    slope = rarest_set_decay_rate(fit_times, fit_sizes)
    fit = linearity_r_squared(fit_times, fit_sizes)
    seed_rate_pieces = scenario.initial_seed_upload / scenario.piece_size

    lines = [
        "Figure 3 — number of rarest pieces vs time (torrent 8, leecher state)",
        "%8s %8s" % ("t (s)", "rarest"),
    ]
    step = max(1, len(times) // 40)
    for index in range(0, len(times), step):
        lines.append("%8.0f %8d" % (times[index], sizes[index]))
    lines.append("linear fit over the transient window:")
    lines.append(
        "  slope = %.4f pieces/s (R^2 = %.3f); initial seed pushes %.4f pieces/s"
        % (slope, fit if fit is not None else float("nan"), seed_rate_pieces)
    )
    if summary.get("trace_fingerprint"):
        lines.append("shard trace fingerprint: %s" % summary["trace_fingerprint"])
    write_result("fig3_transient_rarest_set", "\n".join(lines) + "\n")

    # Shape: linear decrease whose rate is set by the source capacity.
    assert slope is not None and slope < 0
    assert fit is not None and fit > 0.9
    assert abs(slope) < 1.5 * seed_rate_pieces  # cannot beat the source
    assert abs(slope) > 0.3 * seed_rate_pieces  # and tracks it
