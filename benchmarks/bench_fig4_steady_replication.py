"""Figure 4 — piece replication in the peer set, steady-state torrent.

Paper torrent 7 (1 seed, 713 leechers, 700 MB), full run: min/mean/max
copies of pieces in the local peer set.  Paper shape: the least
replicated piece always has at least one copy (no rare pieces — steady
state), the mean stays well bounded between min and max, and the curves
dip when the local peer becomes a seed and closes its connections to the
other seeds.
"""

from repro.analysis import replication_series

from _shared import run_table1_experiment, write_result

TORRENT = 7


def bench_fig4_steady_replication(benchmark):
    def run():
        __, trace, summary = run_table1_experiment(TORRENT)
        full = replication_series(trace)
        leecher = replication_series(trace, leecher_state_only=True)
        return full, leecher, summary

    full, leecher, summary = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 4 — copies of pieces in the peer set vs time (torrent 7)",
        "%8s %6s %8s %6s" % ("t (s)", "min", "mean", "max"),
    ]
    step = max(1, len(full.times) // 40)
    for index in range(0, len(full.times), step):
        lines.append(
            "%8.0f %6d %8.2f %6d"
            % (
                full.times[index],
                full.min_copies[index],
                full.mean_copies[index],
                full.max_copies[index],
            )
        )
    lines.append("local peer became a seed at t=%s" % summary["local_completed_at"])
    write_result("fig4_steady_replication", "\n".join(lines) + "\n")

    # Shape: while the local peer is a leecher the least replicated piece
    # never disappears from the peer set (steady state, §IV-A.2.b).
    assert leecher.times, "local peer never spent time as a leecher"
    assert all(value >= 1 for value in leecher.min_copies)
    # And the mean is bounded by min and max throughout.
    assert all(
        low <= mean <= high
        for low, mean, high in zip(full.min_copies, full.mean_copies, full.max_copies)
    )