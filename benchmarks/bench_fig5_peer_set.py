"""Figure 5 — evolution of the peer-set size, torrent 7.

Paper shape: the peer set grows quickly toward its maximum (80), varies
with churn, and drops when the local peer becomes a seed and closes its
connections to all the other seeds (§IV-A.2.b).
"""

from repro.analysis import peer_set_series

from _shared import run_table1_experiment, write_result

TORRENT = 7


def bench_fig5_peer_set(benchmark):
    def run():
        __, trace, summary = run_table1_experiment(TORRENT)
        return peer_set_series(trace), summary

    (times, sizes), summary = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 5 — size of the peer set vs time (torrent 7)",
        "%8s %6s" % ("t (s)", "size"),
    ]
    step = max(1, len(times) // 40)
    for index in range(0, len(times), step):
        lines.append("%8.0f %6d" % (times[index], sizes[index]))
    write_result("fig5_peer_set", "\n".join(lines) + "\n")

    seed_at = summary["local_completed_at"]
    assert max(sizes) <= 80  # the configured cap is honoured
    assert max(sizes) >= 30  # and the set actually fills up
    # The seed transition sheds the seed connections: size right after
    # completion is below the leecher-phase peak.
    if seed_at is not None:
        peak = max(s for t, s in zip(times, sizes) if t <= seed_at)
        after = [s for t, s in zip(times, sizes) if t >= seed_at]
        assert after and min(after[: 6]) < peak