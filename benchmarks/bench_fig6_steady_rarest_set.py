"""Figure 6 — number of rarest pieces vs time, steady-state torrent.

Paper torrent 7: the rarest-pieces set follows a *sawtooth*: every peer
joining or leaving the peer set can change the rarest set (spikes), and
rarest first quickly duplicates the new rarest pieces (fast collapses).
Shape: the series repeatedly rises and falls instead of decaying once,
and it never diverges.
"""

from repro.analysis import rarest_set_series

from _shared import run_table1_experiment, write_result

TORRENT = 7


def _count_direction_changes(values):
    changes = 0
    last_direction = 0
    for earlier, later in zip(values, values[1:]):
        if later == earlier:
            continue
        direction = 1 if later > earlier else -1
        if last_direction and direction != last_direction:
            changes += 1
        last_direction = direction
    return changes


def bench_fig6_steady_rarest_set(benchmark):
    def run():
        __, trace, __s = run_table1_experiment(TORRENT)
        return rarest_set_series(trace)

    times, sizes = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 6 — number of rarest pieces vs time (torrent 7)",
        "%8s %8s" % ("t (s)", "rarest"),
    ]
    step = max(1, len(times) // 40)
    for index in range(0, len(times), step):
        lines.append("%8.0f %8d" % (times[index], sizes[index]))
    lines.append("direction changes (sawtooth count): %d" % _count_direction_changes(sizes))
    write_result("fig6_steady_rarest_set", "\n".join(lines) + "\n")

    # Shape: a sawtooth, not a monotone decay and not a divergence.
    assert _count_direction_changes(sizes) >= 8
    assert sizes[-1] <= max(sizes)
    # The collapses keep the set bounded well below the piece count.
    tail = sizes[len(sizes) // 2 :]
    assert sum(tail) / len(tail) < max(sizes)