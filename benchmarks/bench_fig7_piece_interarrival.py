"""Figure 7 — CDF of piece interarrival times, torrent 10.

Paper shape (§IV-A.3): the 100 last downloaded pieces have interarrival
times close to the all-pieces distribution (no last-pieces problem in
steady state), while the 100 first pieces are significantly slower (the
*first pieces problem*: the local peer waits for optimistic unchokes
before it can reciprocate).
"""

from repro.analysis import cdf, interarrival_summary

from _shared import run_table1_experiment, write_result

TORRENT = 10
# Finer blocks than the workload default: figure 8 shares this run and
# needs block-level resolution (4 blocks/piece -> 16 kiB paper blocks).
BLOCK_SIZE = 32 * 1024


def bench_fig7_piece_interarrival(benchmark):
    def run():
        __, trace, __s = run_table1_experiment(TORRENT, block_size=BLOCK_SIZE)
        return interarrival_summary(trace, kind="piece", n=100)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 7 — CDF of piece interarrival time (torrent 10)",
        "population medians: all=%.2fs  first-%d=%.2fs  last-%d=%.2fs"
        % (
            summary.median_all,
            summary.n,
            summary.median_first,
            summary.n,
            summary.median_last,
        ),
        "first slowdown x%.2f, last slowdown x%.2f"
        % (summary.first_slowdown(), summary.last_slowdown()),
        "%10s %8s %8s %8s" % ("t (s)", "all", "first", "last"),
    ]
    # Render the three CDFs on a shared grid of interarrival thresholds.
    values, fractions = cdf(summary.all_items)
    from repro.analysis.stats import cdf_at

    grid = sorted({round(v, 3) for v in values[:: max(1, len(values) // 25)]})
    for threshold in grid:
        lines.append(
            "%10.3f %8.3f %8.3f %8.3f"
            % (
                threshold,
                cdf_at(summary.all_items, threshold),
                cdf_at(summary.first_n, threshold),
                cdf_at(summary.last_n, threshold),
            )
        )
    write_result("fig7_piece_interarrival", "\n".join(lines) + "\n")

    # Shape: first pieces notably slower than the population...
    assert summary.first_slowdown() > 1.5
    # ...and no last-pieces problem: the last-100 median does not blow up.
    assert summary.last_slowdown() < 1.5