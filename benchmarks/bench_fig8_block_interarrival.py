"""Figure 8 — CDF of block interarrival times, torrent 10.

Paper shape (§IV-A.3): no last-blocks problem — the last-100 CDF hugs
the all-blocks CDF and its largest gaps stay small — but a clear
*first blocks problem*: the interarrival of the 100 first blocks is
significantly larger, and the largest gaps of the whole download are
among the first blocks (the local peer's startup, waiting to be
optimistically unchoked or seed-random unchoked).
"""

from repro.analysis import interarrival_summary
from repro.analysis.stats import cdf_at

from _shared import run_table1_experiment, write_result

TORRENT = 10
BLOCK_SIZE = 32 * 1024  # shares the cached figure-7 run


def bench_fig8_block_interarrival(benchmark):
    def run():
        __, trace, __s = run_table1_experiment(TORRENT, block_size=BLOCK_SIZE)
        return interarrival_summary(trace, kind="block", n=100)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)

    first_tail, last_tail = summary.tail_ratio(0.95)
    lines = [
        "Figure 8 — CDF of block interarrival time (torrent 10)",
        "population medians: all=%.3fs  first-%d=%.3fs  last-%d=%.3fs"
        % (
            summary.median_all,
            summary.n,
            summary.median_first,
            summary.n,
            summary.median_last,
        ),
        "95th-percentile tail vs all: first x%.2f, last x%.2f"
        % (first_tail, last_tail),
        "largest gap: all=%.2fs first=%.2fs last=%.2fs"
        % (
            max(summary.all_items),
            max(summary.first_n),
            max(summary.last_n),
        ),
        "%10s %8s %8s %8s" % ("t (s)", "all", "first", "last"),
    ]
    grid = sorted(
        {
            round(v, 3)
            for v in sorted(summary.all_items)[:: max(1, len(summary.all_items) // 25)]
        }
    )
    for threshold in grid:
        lines.append(
            "%10.3f %8.3f %8.3f %8.3f"
            % (
                threshold,
                cdf_at(summary.all_items, threshold),
                cdf_at(summary.first_n, threshold),
                cdf_at(summary.last_n, threshold),
            )
        )
    write_result("fig8_block_interarrival", "\n".join(lines) + "\n")

    # Shape: the largest interarrival gaps belong to the first blocks...
    assert max(summary.first_n) >= max(summary.last_n)
    # ...the first blocks' tail is heavy relative to the population...
    assert first_tail >= 1.5
    # ...and the last blocks do not slow down (fluid delivery makes the
    # median gap 0, so the tail ratio is the robust statistic here).
    assert last_tail <= 2.0