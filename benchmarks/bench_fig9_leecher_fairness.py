"""Figure 9 — fairness of the choke algorithm in leecher state.

For each torrent: remote peers are ranked by the bytes the local peer
uploaded to them in leecher state and grouped in sets of 5; the figure
reports each set's share of the uploaded bytes (top graph) and, for the
same grouping, each set's share of the bytes downloaded from remote
*leechers* (bottom graph).

Paper shape: the black set (5 best downloaders) receives a large part of
the upload, and the same leading sets dominate the download direction —
reciprocation.  Torrents in transient state spread their upload over
more peers (low entropy biases peer selection, §IV-B.2).
"""

from repro.analysis import leecher_contribution

from _shared import run_table1_experiment, sweep_ids, write_result


def _sweep():
    rows = []
    for torrent_id in sweep_ids():
        scenario, trace, __ = run_table1_experiment(torrent_id)
        up_shares, down_shares = leecher_contribution(trace)
        rows.append((scenario, up_shares, down_shares))
    return rows


def bench_fig9_leecher_fairness(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        "Figure 9 — leecher-state contribution by sets of 5 peers",
        "    | upload shares (sets 1..6)           | download shares (same sets)",
        "%-3s | %5s %5s %5s %5s %5s %5s | %5s %5s %5s %5s %5s %5s"
        % ("ID", "s1", "s2", "s3", "s4", "s5", "s6", "s1", "s2", "s3", "s4", "s5", "s6"),
    ]
    top_up, top_down, aligned = [], [], 0
    counted = 0
    for scenario, up_shares, down_shares in rows:
        lines.append(
            "%-3d | %5.2f %5.2f %5.2f %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f %5.2f %5.2f %5.2f"
            % tuple([scenario.torrent_id] + up_shares + down_shares)
        )
        if sum(up_shares) > 0 and sum(down_shares) > 0:
            counted += 1
            top_up.append(up_shares[0])
            top_down.append(down_shares[0])
            if down_shares[0] >= max(down_shares[3:] or [0.0]):
                aligned += 1
    write_result("fig9_leecher_fairness", "\n".join(lines) + "\n")

    assert counted >= len(rows) * 0.6
    # Shape: the top set dominates the upload direction...
    assert sum(top_up) / len(top_up) > 0.35
    # ...the same grouping carries real download traffic (reciprocation
    # is measurable, not an artefact of empty columns)...
    assert sum(top_down) / len(top_down) > 0.1
    # ...and it aligns the directions for most torrents: the set we
    # uploaded the most to out-delivers the trailing sets.
    assert aligned / counted >= 0.6