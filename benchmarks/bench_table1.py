"""Table I — torrent characteristics.

Regenerates the paper's Table I: for each of the 26 monitored torrents,
the number of seeds and leechers, their ratio, the maximum peer-set size
and the content size — both the paper's values and the scaled values
this reproduction simulates.
"""

import math

from repro.workloads import TABLE1

from _shared import write_result


def _render() -> str:
    lines = [
        "Table I — torrent characteristics (paper -> scaled reproduction)",
        "%-3s %8s %8s %9s %7s %8s | %6s %7s %7s %9s %5s"
        % (
            "ID", "# of S", "# of L", "ratio", "maxPS", "size MB",
            "S", "L", "ratio", "pieces", "state",
        ),
    ]
    for scenario in TABLE1:
        paper_ratio = (
            "inf" if math.isinf(scenario.paper_ratio) else "%.2g" % scenario.paper_ratio
        )
        scaled_ratio = (
            "inf" if math.isinf(scenario.scaled_ratio) else "%.2g" % scenario.scaled_ratio
        )
        lines.append(
            "%-3d %8d %8d %9s %7d %8d | %6d %7d %7s %9d %5s"
            % (
                scenario.torrent_id,
                scenario.paper_seeds,
                scenario.paper_leechers,
                paper_ratio,
                scenario.paper_max_peer_set,
                scenario.paper_size_mb,
                scenario.seeds,
                scenario.leechers,
                scaled_ratio,
                scenario.num_pieces,
                "T" if scenario.transient else "S",
            )
        )
    return "\n".join(lines) + "\n"


def bench_table1(benchmark):
    table = benchmark(_render)
    write_result("table1", table)
    # Shape checks: the table covers the paper's spread of regimes.
    assert len(TABLE1) == 26
    no_seed = [s for s in TABLE1 if s.paper_seeds == 0]
    single_seed = [s for s in TABLE1 if s.paper_seeds == 1]
    seed_heavy = [s for s in TABLE1 if s.paper_ratio > 1]
    assert len(no_seed) == 1
    assert len(single_seed) == 10
    assert len(seed_heavy) >= 4
