"""Table I — torrent characteristics.

Regenerates the paper's Table I: for each of the 26 monitored torrents,
the number of seeds and leechers, their ratio, the maximum peer-set size
and the content size — both the paper's values and the scaled values
this reproduction simulates.

The table is rendered from the *campaign expansion* of the default
evaluation matrix (one shard per torrent), so it is also a check that
``repro campaign run`` covers exactly the paper's 26 torrents with the
historical per-torrent RNG streams.
"""

import math

from repro.campaign import CampaignSpec, derive_shard_seed, expand_spec
from repro.workloads import TABLE1, scenario_by_id

from _shared import DEFAULT_SEED, write_result


def _render() -> str:
    shards = expand_spec(CampaignSpec(campaign_seed=DEFAULT_SEED))
    lines = [
        "Table I — torrent characteristics (paper -> scaled reproduction)",
        "%-3s %8s %8s %9s %7s %8s | %6s %7s %7s %9s %5s"
        % (
            "ID", "# of S", "# of L", "ratio", "maxPS", "size MB",
            "S", "L", "ratio", "pieces", "state",
        ),
    ]
    for shard in shards:
        scenario = scenario_by_id(shard.torrent_id)
        paper_ratio = (
            "inf" if math.isinf(scenario.paper_ratio) else "%.2g" % scenario.paper_ratio
        )
        scaled_ratio = (
            "inf" if math.isinf(scenario.scaled_ratio) else "%.2g" % scenario.scaled_ratio
        )
        lines.append(
            "%-3d %8d %8d %9s %7d %8d | %6d %7d %7s %9d %5s"
            % (
                scenario.torrent_id,
                scenario.paper_seeds,
                scenario.paper_leechers,
                paper_ratio,
                scenario.paper_max_peer_set,
                scenario.paper_size_mb,
                scenario.seeds,
                scenario.leechers,
                scaled_ratio,
                scenario.num_pieces,
                "T" if scenario.transient else "S",
            )
        )
    return "\n".join(lines) + "\n"


def bench_table1(benchmark):
    table = benchmark(_render)
    write_result("table1", table)
    # Shape checks: the table covers the paper's spread of regimes.
    assert len(TABLE1) == 26
    no_seed = [s for s in TABLE1 if s.paper_seeds == 0]
    single_seed = [s for s in TABLE1 if s.paper_seeds == 1]
    seed_heavy = [s for s in TABLE1 if s.paper_ratio > 1]
    assert len(no_seed) == 1
    assert len(single_seed) == 10
    assert len(seed_heavy) >= 4
    # The default campaign covers exactly Table I, one shard per
    # torrent, each on its historical RNG stream (seed + 37 * id).
    shards = expand_spec(CampaignSpec(campaign_seed=DEFAULT_SEED))
    assert [s.torrent_id for s in shards] == [s.torrent_id for s in TABLE1]
    assert all(
        shard.seed
        == derive_shard_seed(DEFAULT_SEED, shard.torrent_id, "paper", 0)
        == DEFAULT_SEED + 37 * shard.torrent_id
        for shard in shards
    )
