"""Tracker announce-throughput benchmark: announces/sec by sampler and shards.

Measures the :class:`repro.tracker.service.TrackerService` engine — the
shared core behind the in-process tracker and the live announce server —
under a synthetic announce load of one million announces per full run
(``--quick`` scales it down).  Four configurations run on the same seed:

- ``uniform-s1``      — uniform sampling, a single shard: the reference
  configuration every other row is machine-normalised against by
  ``check_regression.py --kind tracker``;
- ``uniform-s8``      — uniform sampling over eight shards (the default
  service shape, O(num_want) per announce);
- ``seed-biased-s8``  — the seed/leecher split sampler;
- ``rarity-aware-s8`` — Efraimidis–Sampelis weighted sampling, O(n log k)
  per announce, so it carries a proportionally smaller announce share.

The announce loop goes through the *wire-caller* path (no caller RNG, so
every request pays the per-request RNG derivation) with a mixed event
stream: a registration ramp, keep-alives, completions and departures,
across 16 swarms.  That is the load profile the standalone server sees.

The run also performs a Fig. 5-style peer-set check (paper §IV-B:
peer-set properties under tracker sampling): on a 400-peer swarm with an
80-seed population, 200 sampled announces must (a) return exactly
``num_want`` peers, (b) never contain the requester, (c) cover nearly
the whole population across requests, and (d) — for the uniform sampler
— reproduce the population's seed fraction within a tolerance, i.e.
random peer-set formation survives sampling unbiased.  The benchmark
exits non-zero if any check fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_tracker.py --output fresh.json
    python benchmarks/check_regression.py --kind tracker --fresh fresh.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.tracker.sampling import make_sampler  # noqa: E402
from repro.tracker.service import AnnounceRequest, TrackerService  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_tracker.json"

#: (report key, sampler spec, shard count, share of the announce load).
#: Shares sum to 1.0; rarity-aware is O(swarm size) per announce and
#: gets a smaller slice so a full run stays near a minute.
CONFIGS = (
    ("uniform-s1", "uniform", 1, 0.35),
    ("uniform-s8", "uniform", 8, 0.35),
    ("seed-biased-s8", "seed-biased:seed_fraction=0.5", 8, 0.20),
    ("rarity-aware-s8", "rarity-aware:bias=1.0", 8, 0.10),
)

TOTAL_ANNOUNCES = 1_000_000
NUM_SWARMS = 16
PEERS_PER_SWARM = 500
NUM_WANT = 25
SEED_FRACTION = 0.2


def _infohashes(count: int):
    return [hashlib.sha1(b"bench-swarm-%d" % i).digest() for i in range(count)]


class _Clock:
    """Deterministic monotonic clock advancing a fixed step per call."""

    __slots__ = ("now", "step")

    def __init__(self, step: float = 0.001):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def run_config(name: str, sampler_spec: str, shards: int, announces: int) -> dict:
    """Drive one service configuration through the synthetic load."""
    clock = _Clock()
    service = TrackerService(
        clock, seed=42, num_shards=shards, sampler=make_sampler(sampler_spec)
    )
    infohashes = _infohashes(NUM_SWARMS)
    requests = []
    # Registration ramp: populate every swarm first (these announces
    # count toward the measured load — a real tracker pays them too).
    for index in range(NUM_SWARMS * PEERS_PER_SWARM):
        swarm = index % NUM_SWARMS
        requests.append(
            AnnounceRequest(
                infohash=infohashes[swarm],
                address="10.%d.%d.%d:6881"
                % (swarm, index // 250 % 256, index % 250 + 1),
                event="started",
                num_want=NUM_WANT,
                is_seed=(index // NUM_SWARMS) % 5 == 0,  # 20% seeds
                have_count=(index * 7) % 100,
            )
        )
    # Steady-state mix: keep-alives with sprinkled completions/departures.
    index = 0
    while len(requests) < announces:
        swarm = index % NUM_SWARMS
        peer = index % (NUM_SWARMS * PEERS_PER_SWARM)
        event = ""
        if index % 97 == 0:
            event = "completed"
        elif index % 89 == 0:
            event = "stopped"
        requests.append(
            AnnounceRequest(
                infohash=infohashes[swarm],
                address="10.%d.%d.%d:6881"
                % (swarm, peer // 250 % 256, peer % 250 + 1),
                event=event,
                num_want=0 if event == "stopped" else NUM_WANT,
                is_seed=event == "completed",
                have_count=(index * 11) % 100,
            )
        )
        index += 1
    requests = requests[:announces]

    peers_returned = 0
    started = time.perf_counter()
    announce = service.announce  # hot-loop binding
    for request in requests:
        peers_returned += len(announce(request).peers)
    wall = time.perf_counter() - started
    stats = service.stats()
    return {
        "sampler": sampler_spec,
        "shards": shards,
        "announces": len(requests),
        "wall_seconds": round(wall, 4),
        "announces_per_second": round(len(requests) / wall, 1),
        "peers_returned": peers_returned,
        "swarms": stats["swarms"],
        "registered_peers": stats["peers"],
    }


def fig5_peer_set_check() -> dict:
    """Peer-set properties under sampling (paper §IV-B / Fig. 5 shape).

    The paper's Fig. 5 argument rests on the tracker handing each peer
    a *uniform random* subset of the swarm, which is what keeps peer
    sets well connected and diverse.  This check pins the properties
    that argument needs, per sampler.
    """
    population = 400
    seeds = int(population * SEED_FRACTION)
    num_want = 50
    requesters = 200
    report = {}
    failures = []
    for name, spec in (
        ("uniform", "uniform"),
        ("seed-biased", "seed-biased:seed_fraction=0.5"),
        ("rarity-aware", "rarity-aware:bias=1.0"),
    ):
        clock = _Clock()
        service = TrackerService(
            clock, seed=7, num_shards=4, sampler=make_sampler(spec)
        )
        infohash = hashlib.sha1(b"fig5-swarm").digest()
        addresses = []
        for index in range(population):
            address = "10.0.%d.%d:6881" % (index // 250, index % 250 + 1)
            addresses.append(address)
            service.announce(
                AnnounceRequest(
                    infohash=infohash,
                    address=address,
                    event="started",
                    num_want=0,
                    is_seed=index < seeds,
                    have_count=100 if index < seeds else index % 100,
                )
            )
        covered = set()
        sizes = []
        seed_share = []
        seed_set = set(addresses[:seeds])
        for address in addresses[:requesters]:
            result = service.announce(
                AnnounceRequest(
                    infohash=infohash,
                    address=address,
                    event="",
                    num_want=num_want,
                    is_seed=address in seed_set,
                )
            )
            sizes.append(len(result.peers))
            covered.update(result.peers)
            seed_share.append(
                sum(1 for peer in result.peers if peer in seed_set) / num_want
            )
            if address in result.peers:
                failures.append("%s: requester returned to itself" % name)
        coverage = len(covered) / population
        mean_seed_share = sum(seed_share) / len(seed_share)
        checks = {
            "full_num_want": all(size == num_want for size in sizes),
            # 200 draws of 50 from 400 leave an unseen peer with
            # probability (1 - 50/400)^200 ~ 3e-12 under uniformity.
            "coverage_ok": coverage > 0.98,
        }
        if name == "uniform":
            # Population seed fraction must survive sampling: 20% +- 3pp
            # over 10k sampled slots.
            checks["seed_fraction_unbiased"] = (
                abs(mean_seed_share - SEED_FRACTION) < 0.03
            )
        if name == "seed-biased":
            checks["seed_fraction_boosted"] = mean_seed_share > SEED_FRACTION + 0.1
        report[name] = {
            "coverage": round(coverage, 4),
            "mean_seed_share": round(mean_seed_share, 4),
            "checks": checks,
        }
        for check, ok in checks.items():
            if not ok:
                failures.append("%s: %s failed" % (name, check))
    report["passed"] = not failures
    report["failures"] = failures
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="1/10th of the announce load (smoke runs; baselines are full)",
    )
    parser.add_argument(
        "--announces", type=int, default=None,
        help="override the total announce load (default %d)" % TOTAL_ANNOUNCES,
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT, help="report path (JSON)"
    )
    args = parser.parse_args(argv)

    total = args.announces or TOTAL_ANNOUNCES
    if args.quick and args.announces is None:
        total //= 10

    report = {
        "benchmark": "tracker_throughput",
        "python": platform.python_version(),
        "seed": 42,
        "quick": bool(args.quick),
        "total_announces": 0,
        "configs": {},
    }
    for name, spec, shards, share in CONFIGS:
        announces = int(total * share)
        print(
            "%-16s %-32s %d shards, %d announces ..."
            % (name, spec, shards, announces),
            file=sys.stderr,
        )
        entry = run_config(name, spec, shards, announces)
        report["configs"][name] = entry
        report["total_announces"] += entry["announces"]
        print(
            "%-16s %12.1f announces/s" % (name, entry["announces_per_second"]),
            file=sys.stderr,
        )

    print("fig5 peer-set-under-sampling check ...", file=sys.stderr)
    report["fig5_peer_set"] = fig5_peer_set_check()
    print(
        "fig5 check: %s" % ("ok" if report["fig5_peer_set"]["passed"] else "FAILED"),
        file=sys.stderr,
    )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s (%d announces)" % (args.output, report["total_announces"]))
    return 0 if report["fig5_peer_set"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
