"""Benchmark-regression gate for the engine and tracker throughput numbers.

Compares a freshly measured report against its committed baseline at the
repository root and exits non-zero when a gated hot path regressed by
more than the tolerance (default 25%).  Two kinds of report are gated:

- ``--kind engine`` (default): ``bench_engine_throughput.py`` against
  ``BENCH_engine_throughput.json`` — the ``indexed`` picker path and the
  ``fast`` mega-swarm engine path;
- ``--kind tracker``: ``bench_tracker.py`` against ``BENCH_tracker.json``
  — announces/sec of the sharded/sampler configurations, normalised by
  the single-shard uniform reference row.

Raw events/sec are not comparable across machines, so the gate
normalises by the *naive* path first: all paths execute the identical
event sequence (trace-equivalence is asserted by the benchmark itself),
so ``fresh_naive / baseline_naive`` measures the host-speed difference
and each gated path is judged after dividing it out::

    machine_factor  = fresh.naive.eps / baseline.naive.eps
    normalised_path = fresh.<path>.eps / machine_factor
    regression iff    normalised_path < (1 - tolerance) * baseline.<path>.eps

Equivalently: a path's speedup-over-naive ratio must not fall by more
than the tolerance.  A genuinely slower host cancels out; a
hot-path-only slowdown (the regression this gate exists for) does not.

The committed baseline is a *full* (non ``--quick``) run; CI therefore
measures in full mode too, because quick runs spend proportionally more
time in the cheap early swarm phase and bias the naive-path
normalisation.  Comparing across modes is allowed but warned about.

Usage (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --output fresh.json
    python benchmarks/check_regression.py --fresh fresh.json

    PYTHONPATH=src python benchmarks/bench_tracker.py --output fresh.json
    python benchmarks/check_regression.py --kind tracker --fresh fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_engine_throughput.json"
DEFAULT_TRACKER_BASELINE = REPO_ROOT / "BENCH_tracker.json"
DEFAULT_TOLERANCE = 0.25


#: Gated hot paths.  Each is normalised by the naive row of the same
#: tier, so only the "xlarge" mega-swarm tier (which has no naive run —
#: the reference path is far too slow at 1001 peers) is exempt.
GATED_LABELS = ("indexed", "fast")

#: Tracker configurations gated by ``--kind tracker``, normalised by the
#: single-shard uniform row (the machine-speed reference).
TRACKER_REFERENCE = "uniform-s1"
GATED_TRACKER_LABELS = ("uniform-s8", "seed-biased-s8", "rarity-aware-s8")


def compare(fresh: dict, baseline: dict, tolerance: float) -> list:
    """One comparison row per (swarm size, gated label) present in both
    reports.  Baselines committed before the fast engine path existed
    have no ``fast`` row; the label is then skipped, not failed."""
    rows = []
    for name, base in baseline.get("swarms", {}).items():
        new = fresh.get("swarms", {}).get(name)
        if new is None or "naive" not in base or "naive" not in new:
            continue
        base_naive = base["naive"]["events_per_second"]
        new_naive = new["naive"]["events_per_second"]
        if not base_naive or not new_naive:
            continue
        machine_factor = new_naive / base_naive
        for label in GATED_LABELS:
            if label not in base or label not in new:
                continue
            base_eps = base[label]["events_per_second"]
            new_eps = new[label]["events_per_second"]
            if not base_eps or not new_eps:
                continue
            normalised = new_eps / machine_factor
            ratio = normalised / base_eps
            rows.append(
                {
                    "swarm": name,
                    "label": label,
                    "baseline_eps": base_eps,
                    "fresh_eps": new_eps,
                    "machine_factor": machine_factor,
                    "normalised_eps": normalised,
                    "ratio": ratio,
                    "regressed": ratio < 1.0 - tolerance,
                }
            )
    return rows


def compare_tracker(fresh: dict, baseline: dict, tolerance: float) -> list:
    """One comparison row per gated tracker configuration in both
    reports, machine-normalised by the shared reference row."""
    base_ref = (
        baseline.get("configs", {})
        .get(TRACKER_REFERENCE, {})
        .get("announces_per_second")
    )
    new_ref = (
        fresh.get("configs", {})
        .get(TRACKER_REFERENCE, {})
        .get("announces_per_second")
    )
    if not base_ref or not new_ref:
        return []
    machine_factor = new_ref / base_ref
    rows = []
    for label in GATED_TRACKER_LABELS:
        base = baseline.get("configs", {}).get(label)
        new = fresh.get("configs", {}).get(label)
        if base is None or new is None:
            continue
        base_aps = base["announces_per_second"]
        new_aps = new["announces_per_second"]
        if not base_aps or not new_aps:
            continue
        normalised = new_aps / machine_factor
        ratio = normalised / base_aps
        rows.append(
            {
                "swarm": "tracker",
                "label": label,
                "baseline_eps": base_aps,
                "fresh_eps": new_aps,
                "machine_factor": machine_factor,
                "normalised_eps": normalised,
                "ratio": ratio,
                "regressed": ratio < 1.0 - tolerance,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--kind", choices=["engine", "tracker"], default="engine",
        help="which benchmark report to gate (default: engine)",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="freshly measured report (bench_*.py --output)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="committed baseline report (default: repo root, by kind)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown of the indexed path (default 0.25)",
    )
    args = parser.parse_args(argv)

    if args.baseline is None:
        args.baseline = (
            DEFAULT_TRACKER_BASELINE if args.kind == "tracker" else DEFAULT_BASELINE
        )
    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(args.baseline.read_text())
    if fresh.get("quick") != baseline.get("quick"):
        print(
            "warning: comparing quick=%s fresh against quick=%s baseline; "
            "the naive-path normalisation is biased across modes"
            % (fresh.get("quick"), baseline.get("quick")),
            file=sys.stderr,
        )
    if args.kind == "tracker":
        rows = compare_tracker(fresh, baseline, args.tolerance)
    else:
        rows = compare(fresh, baseline, args.tolerance)
    if not rows:
        print("no comparable entries between fresh and baseline",
              file=sys.stderr)
        return 2

    print(
        "%-8s %-8s %12s %12s %9s %12s %7s  %s"
        % ("swarm", "path", "base e/s", "fresh e/s", "machine",
           "normalised", "ratio", "verdict")
    )
    regressed = []
    for row in rows:
        print(
            "%-8s %-8s %12.1f %12.1f %8.2fx %12.1f %6.2fx  %s"
            % (
                row["swarm"],
                row["label"],
                row["baseline_eps"],
                row["fresh_eps"],
                row["machine_factor"],
                row["normalised_eps"],
                row["ratio"],
                "REGRESSED" if row["regressed"] else "ok",
            )
        )
        if row["regressed"]:
            regressed.append("%s/%s" % (row["swarm"], row["label"]))
    if regressed:
        print(
            "%s hot path regressed > %.0f%% on: %s"
            % (args.kind, args.tolerance * 100.0, ", ".join(regressed)),
            file=sys.stderr,
        )
        return 1
    print(
        "%s hot paths within %.0f%% of baseline"
        % (args.kind, args.tolerance * 100.0)
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
