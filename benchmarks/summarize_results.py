#!/usr/bin/env python3
"""Condense benchmarks/results/*.txt into one overview (for EXPERIMENTS.md).

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize_results.py
"""

from pathlib import Path

RESULTS = Path(__file__).parent / "results"

HEADLINE_LINES = {
    "table1": 1,
    "fig1_entropy": 10,
    "fig2_transient_replication": 0,
    "fig3_transient_rarest_set": 0,
    "fig7_piece_interarrival": 3,
    "fig8_block_interarrival": 4,
    "fig10_unchoke_correlation": 3,
    "ablation_piece_selection": 0,
    "ablation_seed_choke": 4,
    "ablation_tft": 4,
    "ablation_policies": 6,
    "ablation_super_seeding": 4,
    "ablation_peer_set": 4,
}


def main() -> None:
    if not RESULTS.is_dir():
        raise SystemExit(
            "no results directory; run pytest benchmarks/ --benchmark-only first"
        )
    for path in sorted(RESULTS.glob("*.txt")):
        text = path.read_text().rstrip("\n").splitlines()
        print("=" * 72)
        print(path.stem)
        print("=" * 72)
        # Print headline lines plus any fit/summary lines near the end.
        count = HEADLINE_LINES.get(path.stem)
        if count:
            for line in text[:count]:
                print(line)
        else:
            for line in text[:3]:
                print(line)
        tail = [
            line
            for line in text[-6:]
            if any(
                marker in line
                for marker in ("slope", "fraction", "first full", "share",
                               "Jain", "x", "=")
            )
        ]
        for line in tail:
            print(line)
        print()


if __name__ == "__main__":
    main()
