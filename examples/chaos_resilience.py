#!/usr/bin/env python3
"""Chaos experiment: the algorithms keep working on a hostile network.

The paper measures rarest first and the choke algorithms on *live*
torrents full of flaky peers, dropped connections and hash failures.
This script reruns the same 30-peer swarm three times on increasingly
hostile networks:

* **clean** — the usual idealised simulation;
* **lossy** — 2% message loss, 100 ms jitter, a 60 s tracker outage and
  0.5% piece corruption (the `--faults light` regime);
* **hostile** — 5% loss, duplication, abrupt peer crashes, two tracker
  outages and 1% corruption (`--faults heavy` territory).

The claim to observe: entropy and completion times *degrade gracefully*.
Every surviving leecher still finishes (no deadlock, no stuck peer),
the minimum piece replication stays positive, and the protocol's
recovery machinery is visible in the fault counters — announce retries
with exponential backoff, reaped half-open connections, re-downloaded
corrupt pieces.

Run:  python examples/chaos_resilience.py [seed]
"""

import sys

from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, FaultConfig, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

NUM_LEECHERS = 29  # plus one initial seed = 30 peers
NUM_PIECES = 48
DURATION = 2500.0

SCENARIOS = [
    ("clean", None),
    (
        "lossy",
        FaultConfig(
            message_loss_rate=0.02,
            extra_jitter=0.1,
            hash_failure_rate=0.005,
            tracker_outages=((60.0, 60.0),),
        ),
    ),
    (
        "hostile",
        FaultConfig(
            message_loss_rate=0.05,
            message_duplicate_rate=0.01,
            extra_jitter=0.25,
            crash_probability=0.01,
            crash_interval=120.0,
            hash_failure_rate=0.01,
            tracker_outages=((60.0, 60.0), (900.0, 120.0)),
        ),
    ),
]


def run_scenario(name, faults, seed):
    metainfo = make_metainfo(
        "chaos", num_pieces=NUM_PIECES, piece_size=16 * KIB, block_size=4 * KIB
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=seed, faults=faults))
    swarm.add_peer(config=PeerConfig(upload_capacity=24 * KIB), is_seed=True)
    for __ in range(NUM_LEECHERS):
        swarm.add_peer(config=PeerConfig(upload_capacity=8 * KIB))
    result = swarm.run(DURATION)

    times = sorted(
        result.download_time(address)
        for address in result.completions
        if result.download_time(address) is not None
    )
    crashed = (
        swarm.faults.stats.get("peer_crashes", 0) if swarm.faults else 0
    )
    stuck = sum(
        1 for peer in swarm.peers.values() if peer.online and not peer.is_seed
    )
    print("\n=== %s ===" % name)
    print(
        "completions: %d/%d  (peers crashed: %d, stuck: %d)"
        % (len(times), NUM_LEECHERS, crashed, stuck)
    )
    if times:
        print(
            "download time: median=%.0f s  p90=%.0f s  max=%.0f s"
            % (
                times[len(times) // 2],
                times[int(len(times) * 0.9) - 1],
                times[-1],
            )
        )
    print("min piece replication at end: %d" % swarm.min_global_copies())
    if swarm.faults is not None:
        print("injected faults: %s" % dict(swarm.faults.stats))
        print("tracker announces failed/ok: %d/%d" % (
            swarm.tracker.failed_announce_count, swarm.tracker.announce_count
        ))
    if stuck:
        print("WARNING: %d leechers stuck — resilience machinery failed" % stuck)
    return times, stuck


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    print(
        "30-peer swarm, %d pieces, %.0f simulated seconds, seed %d"
        % (NUM_PIECES, DURATION, seed)
    )
    medians = {}
    for name, faults in SCENARIOS:
        times, stuck = run_scenario(name, faults, seed)
        if times:
            medians[name] = times[len(times) // 2]
        assert stuck == 0, "stuck leechers under %s faults" % name

    if "clean" in medians and "lossy" in medians:
        print(
            "\ngraceful degradation: lossy median is x%.2f the clean median "
            "(hostile: x%.2f)"
            % (
                medians["lossy"] / medians["clean"],
                medians.get("hostile", float("nan")) / medians["clean"],
            )
        )


if __name__ == "__main__":
    main()
