#!/usr/bin/env python3
"""Flash crowd: watch a torrent's transient state from the inside.

The scenario the paper's §IV-A.2.a studies on torrent 8: a single slow
initial seed, a crowd of leechers arriving at torrent birth, and an
instrumented peer in the middle of it.  The script shows the two
transient-state signatures —

1. the rarest-pieces set shrinks *linearly* at the initial seed's upload
   rate (figure 3), and
2. once the seed has pushed the last rare piece, the torrent flips to
   steady state and never returns (figure 2's min-copies curve).

It then repeats the run with a faster initial seed to demonstrate that
"the duration of this phase depends only on the upload capacity of the
source" — the paper's second headline conclusion.

Run:  python examples/flash_crowd.py
"""

from repro.analysis import rarest_set_series, replication_series
from repro.analysis.replication import linearity_r_squared, rarest_set_decay_rate
from repro.instrumentation import Instrumentation
from repro.protocol.metainfo import make_metainfo
from repro.sim.churn import flash_crowd
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

NUM_PIECES = 96
PIECE_SIZE = 64 * KIB
CROWD = 40


def run_flash_crowd(seed_upload: float, rng_seed: int = 11):
    metainfo = make_metainfo(
        "flash-crowd", num_pieces=NUM_PIECES, piece_size=PIECE_SIZE,
        block_size=16 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=rng_seed, snapshot_interval=10.0))
    swarm.add_peer(
        config=PeerConfig(upload_capacity=seed_upload), is_seed=True
    )
    flash_crowd(
        swarm,
        CROWD,
        config_factory=lambda rng: PeerConfig(
            upload_capacity=rng.choice([10, 20, 50]) * KIB
        ),
        spread=30.0,
    )
    trace = Instrumentation()
    swarm.add_peer(config=PeerConfig(upload_capacity=20 * KIB), observer=trace)
    trace.start_sampling()
    result = swarm.run(2500)
    trace.finalize()
    return swarm, trace, result


def main() -> None:
    print("=== flash crowd behind a slow initial seed ===")
    print(
        "content: %d pieces x %d kiB, crowd of %d leechers\n"
        % (NUM_PIECES, PIECE_SIZE // KIB, CROWD)
    )

    durations = {}
    for label, seed_upload in (("slow (16 kiB/s)", 16 * KIB), ("fast (48 kiB/s)", 48 * KIB)):
        swarm, trace, result = run_flash_crowd(seed_upload)
        times, sizes = rarest_set_series(trace, leecher_state_only=True)
        slope = rarest_set_decay_rate(times, sizes)
        fit = linearity_r_squared(times, sizes)
        series = replication_series(trace, leecher_state_only=True)
        durations[label] = result.first_full_copy_at
        print("--- initial seed %s ---" % label)
        print(
            "rarest-set size: %d -> %d over the leecher phase"
            % (sizes[0], sizes[-1])
        )
        if slope is not None:
            print(
                "decay: %.3f pieces/s (linear fit R^2=%.2f)  "
                "[seed pushes %.3f pieces/s]"
                % (slope, fit if fit is not None else float("nan"),
                   seed_upload / PIECE_SIZE)
            )
        print(
            "transient ended (first full copy pushed) at t=%s s"
            % result.first_full_copy_at
        )
        rare_phase = [
            low for low in series.min_copies if low <= 1
        ]
        print(
            "samples with rare pieces (copies <= 1): %d/%d\n"
            % (len(rare_phase), len(series.min_copies))
        )

    slow_end = durations["slow (16 kiB/s)"]
    fast_end = durations["fast (48 kiB/s)"]
    if slow_end and fast_end:
        print(
            "=> tripling the source's upload capacity shortened the "
            "transient phase by x%.1f — the piece-selection strategy was "
            "never the bottleneck (paper §IV-A.2.a)" % (slow_end / fast_end)
        )


if __name__ == "__main__":
    main()
