#!/usr/bin/env python3
"""Free riders vs the choke algorithm, new and old.

Recreates the paper's §IV-B argument as a runnable experiment:

1. in a *scarce* steady-state swarm, a free rider downloads far slower
   than an identically-placed contributor (the choke algorithm in
   leecher state fosters reciprocation);
2. the rider still finishes eventually — the paper's fairness criteria
   deliberately let excess capacity flow to non-contributors;
3. a seed running the *old* (rate-ranked) choke algorithm can be
   monopolised by a fast free rider, while the *new* SKU/SRU algorithm
   gives it only its rotation share.

Run:  python examples/free_riders.py
"""

from random import Random

from repro.analysis.fairness import seed_service_bytes
from repro.core.choke import OldSeedChoker, SeedChoker
from repro.core.fairness import jain_index
from repro.core.free_rider import FreeRiderChoker
from repro.instrumentation import Instrumentation
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm


def leecher_state_experiment() -> None:
    print("=== 1. free rider vs contributing twin (leecher-state choke) ===")
    num_pieces = 192
    metainfo = make_metainfo(
        "free-riders", num_pieces=num_pieces, piece_size=4 * KIB, block_size=1 * KIB
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=41))
    rng = Random(6)
    swarm.add_peer(config=PeerConfig(upload_capacity=3 * KIB), is_seed=True)
    for __ in range(24):
        have = rng.sample(range(num_pieces), rng.randint(20, 120))
        swarm.add_peer(
            config=PeerConfig(upload_capacity=2 * KIB, seeding_time=1.0),
            initial_bitfield=Bitfield(num_pieces, have=have),
        )
    twin = swarm.add_peer(config=PeerConfig(upload_capacity=2 * KIB))
    rider = swarm.add_peer(
        config=PeerConfig(upload_capacity=0.0),
        leecher_choker=FreeRiderChoker(),
        seed_choker=FreeRiderChoker(),
    )
    swarm.run(200)
    print(
        "at t=200 s: contributing twin has %3.0f kiB, free rider %3.0f kiB "
        "(x%.1f)"
        % (
            twin.total_downloaded / KIB,
            rider.total_downloaded / KIB,
            twin.total_downloaded / max(1.0, rider.total_downloaded),
        )
    )
    result = swarm.run(2800)
    print(
        "completions: twin t=%.0f s, rider t=%.0f s — penalised, "
        "not starved (excess capacity reaches it through the seed)\n"
        % (result.completions[twin.address], result.completions[rider.address])
    )


def seed_state_experiment(choker_factory, label: str) -> None:
    num_pieces = 512
    metainfo = make_metainfo(
        "seed-riders", num_pieces=num_pieces, piece_size=4 * KIB, block_size=1 * KIB
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=47))
    trace = Instrumentation()
    swarm.add_peer(
        config=PeerConfig(upload_capacity=8 * KIB),
        is_seed=True,
        seed_choker=choker_factory(),
        observer=trace,
    )
    trace.start_sampling()
    # One fast free rider (uncapped download, zero upload) among slow
    # honest leechers.
    rider = swarm.add_peer(
        config=PeerConfig(upload_capacity=0.0),
        leecher_choker=FreeRiderChoker(),
        seed_choker=FreeRiderChoker(),
    )
    honest = [
        swarm.add_peer(
            config=PeerConfig(upload_capacity=256.0, download_capacity=1 * KIB)
        )
        for __ in range(8)
    ]
    swarm.run(600)
    trace.finalize()
    service = seed_service_bytes(trace)
    total = sum(service.values())
    rider_share = service.get(rider.address, 0.0) / total if total else 0.0
    print(
        "%-28s rider took %4.1f%% of the seed's bytes; service Jain=%.2f"
        % (label, 100 * rider_share, jain_index(list(service.values())))
    )
    return rider_share


def main() -> None:
    leecher_state_experiment()
    print("=== 2. fast free rider against a seed (old vs new choke) ===")
    old_share = seed_state_experiment(OldSeedChoker, "old (rate-ranked) choke:")
    new_share = seed_state_experiment(SeedChoker, "new (SKU/SRU) choke:")
    print(
        "\n=> the new seed-state algorithm cut the fast rider's take "
        "from %.0f%% to %.0f%% — 'free riders cannot receive more than "
        "contributing leechers' (paper §IV-B.3)"
        % (100 * old_share, 100 * new_share)
    )


if __name__ == "__main__":
    main()
