#!/usr/bin/env python3
"""Live swarm: the same algorithms over real localhost TCP.

Everything else in this repository exercises rarest first and the choke
algorithms inside a discrete-event simulator.  This script runs them
for real: six asyncio peers (one seed, five leechers) speak the BEP-3
peer wire protocol over loopback sockets, throttled by per-peer token
buckets, and download a 24-piece torrent to completion in a second or
two of wall-clock time.

The point is not speed — it is *equivalence*.  The live peers reuse the
exact same piece picker, choker and rate estimator objects as the
simulated ones, and emit the same schema-v1 trace.  The script proves
it three ways:

1. the download completes (every leecher ends with every piece);
2. the trace passes the full conformance suite — message grammar,
   unchoke-slot cardinality, swarm-wide byte conservation, and
   rarest-first consistency of every first request;
3. the trace replays through the standard instrumentation pipeline,
   yielding the same per-peer counters the analysis figures consume.

Run:  python examples/live_swarm.py [seed]
"""

import sys

from repro.instrumentation.replay import replay_instrumentation
from repro.instrumentation.trace import TraceRecorder
from repro.net.conformance import check_trace, completion_counts
from repro.net.swarm import LiveSwarm
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig

NUM_PIECES = 24
SEEDS = 1
LEECHERS = 5

CONFIG = PeerConfig(
    upload_capacity=256 * KIB,  # wall-clock friendly: ~1-2 s per run
    choke_interval=0.2,
    rate_window=1.0,
    min_peer_set=1,
)


def main(seed: int = 0) -> int:
    metainfo = make_metainfo(
        "live-demo", num_pieces=NUM_PIECES, piece_size=4 * KIB, block_size=KIB
    )
    recorder = TraceRecorder()
    swarm = LiveSwarm(metainfo, seed=seed, config=CONFIG, recorder=recorder)
    swarm.add_peers(SEEDS, LEECHERS)

    print("running %d live peers over localhost TCP..." % (SEEDS + LEECHERS))
    result = swarm.run_sync(timeout=60.0)

    print("complete: %s in %.2f s wall clock" % (result.all_complete, result.duration))
    for address in result.addresses:
        done = result.completed_at.get(address)
        print(
            "  %-21s %-7s done=%-6s up=%7.0fB down=%7.0fB"
            % (
                address,
                "seed" if done == 0.0 else "leecher",
                "%.2fs" % done if done is not None else "never",
                result.uploaded.get(address, 0.0),
                result.downloaded.get(address, 0.0),
            )
        )

    report = check_trace(recorder, num_pieces=NUM_PIECES)
    print(
        "conformance: %s (%s)"
        % (
            "OK" if report.ok else "%d violations" % len(report.violations),
            " ".join("%s=%d" % item for item in sorted(report.checks.items())),
        )
    )
    for violation in report.violations[:5]:
        print("  " + violation)

    leecher = sorted(completion_counts(recorder))[0]
    replay = replay_instrumentation(recorder, peer=leecher)
    print(
        "replayed %s: %d pieces, %d msgs sent, %d msgs received"
        % (
            leecher,
            len(replay.piece_completions),
            replay.messages_sent,
            replay.messages_received,
        )
    )
    return 0 if (result.all_complete and report.ok) else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 0))
