#!/usr/bin/env python3
"""Fluid model vs simulation: local knowledge is almost free.

The analytical studies the paper discusses ([21] Qiu-Srikant, [25]
Yang-de Veciana) assume every peer knows every other peer.  The paper's
§V observation — reproduced here — is that the *real* protocol, with its
80-peer local view, rarest first and choke, "is close to the one
predicted by the models":

1. a steady torrent's mean download time lands near the fluid model's
   global-knowledge equilibrium;
2. a flash crowd's completion process accelerates like the exponential
   service-capacity growth of [25];
3. the fluid model's sensitivity to the *effectiveness* parameter eta
   shows why entropy (figure 1) matters: eta is exactly what rarest
   first maximises.

Run:  python examples/model_vs_simulation.py
"""

from repro.models import FluidModel, minimum_distribution_time
from repro.protocol.metainfo import make_metainfo
from repro.reporting import ascii_table, sparkline
from repro.sim.churn import flash_crowd, poisson_arrivals
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

UPLOAD = 4 * KIB
NUM_PIECES = 32
PIECE_SIZE = 4 * KIB
CONTENT = NUM_PIECES * PIECE_SIZE
ARRIVAL_RATE = 0.05
SEED_STAY = 10.0
DURATION = 4000.0


def simulate_steady() -> float:
    metainfo = make_metainfo(
        "fluid-vs-sim", num_pieces=NUM_PIECES, piece_size=PIECE_SIZE,
        block_size=1 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=11))
    swarm.add_peer(config=PeerConfig(upload_capacity=UPLOAD), is_seed=True)
    poisson_arrivals(
        swarm,
        rate=ARRIVAL_RATE,
        duration=DURATION,
        config_factory=lambda rng: PeerConfig(
            upload_capacity=UPLOAD, seeding_time=SEED_STAY
        ),
    )
    result = swarm.run(DURATION)
    return result.mean_download_time()


def simulate_flash_crowd():
    metainfo = make_metainfo(
        "crowd-vs-model", num_pieces=16, piece_size=8 * KIB, block_size=2 * KIB
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=5))
    swarm.add_peer(config=PeerConfig(upload_capacity=8 * KIB), is_seed=True)
    flash_crowd(
        swarm, 24,
        config_factory=lambda rng: PeerConfig(upload_capacity=8 * KIB),
        spread=5.0,
    )
    result = swarm.run(1500)
    return sorted(result.completions.values())


def main() -> None:
    print("=== 1. steady-state download time: fluid model vs simulator ===")
    model = FluidModel(
        arrival_rate=ARRIVAL_RATE,
        upload_rate=UPLOAD / CONTENT,
        seed_departure_rate=1.0 / SEED_STAY,
        effectiveness=1.0,
    )
    predicted = model.mean_download_time()
    measured = simulate_steady()
    print(
        "fluid model (global knowledge, eta=1): %.0f s\n"
        "simulator (80-peer view, rarest first + choke): %.0f s  (x%.2f)"
        % (predicted, measured, measured / predicted)
    )

    print("\n=== 2. flash crowd: exponential service capacity ===")
    completions = simulate_flash_crowd()
    half = len(completions) // 2
    print("completion times: %s" % sparkline(completions))
    print(
        "first %d completions span %.0f s, last %d span %.0f s "
        "(accelerating, as [25] predicts)"
        % (
            half,
            completions[half - 1] - completions[0],
            len(completions) - half,
            completions[-1] - completions[half],
        )
    )
    bound = minimum_distribution_time(
        content_size=16 * 8 * KIB,
        source_upload=8 * KIB,
        peer_upload=8 * KIB,
        num_peers=24,
        num_pieces=16,
    )
    print(
        "theoretical minimum distribution time: %.0f s; last completion: %.0f s"
        % (bound, completions[-1])
    )

    print("\n=== 3. why entropy matters: the effectiveness parameter ===")
    rows = []
    for eta in (1.0, 0.8, 0.5, 0.2):
        variant = FluidModel(
            arrival_rate=ARRIVAL_RATE,
            upload_rate=UPLOAD / CONTENT,
            seed_departure_rate=1.0 / SEED_STAY,
            effectiveness=eta,
        )
        rows.append(["%.1f" % eta, "%.0f" % variant.mean_download_time()])
    print(ascii_table(["eta", "mean download (s)"], rows))
    print(
        "=> eta is the fluid model's stand-in for piece diversity; the\n"
        "   close-to-1 entropy that rarest first delivers (figure 1) is\n"
        "   what keeps real swarms on the eta=1 line."
    )


if __name__ == "__main__":
    main()
