#!/usr/bin/env python3
"""Piece-selection shoot-out: rarest first vs its proposed replacements.

The paper's central claim is that local rarest first is "enough": random
selection is worse, and the extra machinery of global knowledge or
network coding buys almost nothing on real (well-connected, 80-peer-set)
torrents.  This script compares the strategies twice:

* in a **steady-state** torrent (random partial bitfields, the regime of
  §IV-A.2.b), where every strategy reaches high entropy but rarest first
  keeps the piece-replication balance much tighter; and
* in a **transient** flash crowd behind one slow seed (§IV-A.2.a), where
  selection discipline decides how well the swarm tracks the source and
  sequential selection collapses.

The idealised network-coding comparator (repro.coding) bounds what any
piece selection could achieve.

Run:  python examples/piece_selection_comparison.py
"""

from random import Random

from repro.analysis import replication_series, summarize_entropy
from repro.coding import CodingSwarm
from repro.core.rarest_first import (
    GlobalRarestSelector,
    RandomSelector,
    RarestFirstSelector,
    SequentialSelector,
)
from repro.instrumentation import Instrumentation
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import make_metainfo
from repro.sim.churn import flash_crowd
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

NUM_PIECES = 128
PIECE_SIZE = 32 * KIB
CROWD = 30
SEED_UPLOAD = 24 * KIB

STRATEGIES = (
    ("rarest-first", RarestFirstSelector),
    ("random", RandomSelector),
    ("sequential", SequentialSelector),
    ("global-rarest", GlobalRarestSelector),
)


def run_swarm(selector_factory, steady: bool, rng_seed=19, duration=1500.0):
    metainfo = make_metainfo(
        "shootout", num_pieces=NUM_PIECES, piece_size=PIECE_SIZE,
        block_size=8 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=rng_seed, snapshot_interval=10.0))

    def make_selector():
        if selector_factory is GlobalRarestSelector:
            return GlobalRarestSelector(lambda: swarm.global_counts)
        return selector_factory()

    swarm.add_peer(config=PeerConfig(upload_capacity=SEED_UPLOAD), is_seed=True)
    crowd_rng = Random(rng_seed ^ 0xC0FFEE)

    def crowd_kwargs():
        kwargs = {"selector": make_selector()}
        if steady:
            have = crowd_rng.sample(
                range(NUM_PIECES),
                crowd_rng.randint(NUM_PIECES // 20, NUM_PIECES // 4),
            )
            kwargs["initial_bitfield"] = Bitfield(NUM_PIECES, have=have)
        return kwargs

    flash_crowd(
        swarm,
        CROWD,
        config_factory=lambda rng: PeerConfig(
            upload_capacity=rng.choice([8, 16, 24]) * KIB, seeding_time=60.0
        ),
        spread=20.0,
        kwargs_factory=crowd_kwargs,
    )
    trace = Instrumentation()
    local = swarm.add_peer(
        config=PeerConfig(upload_capacity=20 * KIB),
        selector=make_selector(),
        observer=trace,
    )
    trace.start_sampling()
    result = swarm.run(duration)
    trace.finalize()

    entropy = summarize_entropy(trace)
    series = replication_series(trace, leecher_state_only=True)
    gaps = [
        high - low for low, high in zip(series.min_copies, series.max_copies)
    ]
    return {
        "entropy_ab": entropy.median_local,
        "entropy_cd": entropy.median_remote,
        "diversity_gap": sum(gaps) / len(gaps) if gaps else float("nan"),
        "mean_download": result.mean_download_time(),
    }


def run_coding(rng_seed=19, duration=1500.0):
    swarm = CodingSwarm(
        total_size=NUM_PIECES * PIECE_SIZE, config=SwarmConfig(seed=rng_seed)
    )
    swarm.add_peer("seed", PeerConfig(upload_capacity=SEED_UPLOAD), is_seed=True)
    for index in range(CROWD + 1):
        upload = [8, 16, 24][index % 3] * KIB
        swarm.add_peer("peer%d" % index, PeerConfig(upload_capacity=upload))
    result = swarm.run(duration)
    return {"mean_download": result.mean_download_time()}


def main() -> None:
    print("=== piece selection shoot-out ===")
    print(
        "swarm: 1 seed @ %d kiB/s + %d leechers, %d pieces x %d kiB\n"
        % (SEED_UPLOAD // KIB, CROWD, NUM_PIECES, PIECE_SIZE // KIB)
    )

    print("--- steady state (torrent met mid-life) ---")
    header = "%-16s %10s %10s %12s %12s" % (
        "strategy", "a/b med", "c/d med", "avail. gap", "mean dl (s)"
    )
    print(header)
    print("-" * len(header))
    for name, factory in STRATEGIES:
        stats = run_swarm(factory, steady=True)
        print(
            "%-16s %10.2f %10.2f %12.1f %12.0f"
            % (
                name,
                stats["entropy_ab"],
                stats["entropy_cd"],
                stats["diversity_gap"],
                stats["mean_download"] or float("nan"),
            )
        )
    print(
        "=> every strategy reaches high entropy in steady state, but\n"
        "   rarest first keeps the max-min replication gap far tighter.\n"
    )

    print("--- transient state (flash crowd, empty leechers) ---")
    print(header)
    print("-" * len(header))
    for name, factory in STRATEGIES:
        stats = run_swarm(factory, steady=False)
        print(
            "%-16s %10.2f %10.2f %12.1f %12.0f"
            % (
                name,
                stats["entropy_ab"],
                stats["entropy_cd"],
                stats["diversity_gap"],
                stats["mean_download"] or float("nan"),
            )
        )
    coding = run_coding()
    print(
        "%-16s %10s %10s %12s %12.0f   (idealised upper bound)"
        % ("network-coding", "1.00*", "1.00*", "-",
           coding["mean_download"] or float("nan"))
    )
    print(
        "\n* coding interest is ideal by construction (repro.coding docs)."
        "\n=> rarest first matches the global-knowledge oracle and sits"
        "\n   close to the coding bound; sequential selection collapses in"
        "\n   the transient phase — replacing rarest first 'cannot be"
        "\n   justified' (paper §IV-A.4)."
    )


if __name__ == "__main__":
    main()
