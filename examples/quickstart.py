#!/usr/bin/env python3
"""Quickstart: join a Table-I torrent with an instrumented client.

Reproduces the paper's basic methodology in one page: build one of the
26 monitored torrents (here torrent 13: 9 seeds, 30 leechers, 350 MB),
join it with an instrumented mainline-default client, run the
experiment, and print the headline measurements — entropy ratios,
piece-replication state, download milestones and the choke algorithm's
behaviour in both states.

Run:  python examples/quickstart.py [torrent-id] [seed]
"""

import sys

from repro.analysis import (
    interarrival_summary,
    peer_set_series,
    replication_series,
    summarize_entropy,
    unchoke_interest_correlation,
)
from repro.workloads import build_experiment, scaled_copy, scenario_by_id


def main() -> None:
    torrent_id = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    scenario = scenario_by_id(torrent_id)
    # Trim the run so the quickstart finishes in well under a minute;
    # drop this override to run the full-length experiment.
    scenario = scaled_copy(scenario, duration=min(scenario.duration, 1500.0))

    print("=== torrent %d (Table I) ===" % scenario.torrent_id)
    print(
        "paper: %d seeds / %d leechers, %d MB   scaled: %d seeds / %d "
        "leechers, %d pieces, %s state"
        % (
            scenario.paper_seeds,
            scenario.paper_leechers,
            scenario.paper_size_mb,
            scenario.seeds,
            scenario.leechers,
            scenario.num_pieces,
            "transient" if scenario.transient else "steady",
        )
    )

    harness = build_experiment(scenario, seed=seed)
    print("\nrunning %.0f simulated seconds ..." % scenario.duration)
    trace = harness.run()
    local = harness.local_peer

    print("\n--- download ---")
    print("pieces: %d/%d" % (local.bitfield.count, local.bitfield.num_pieces))
    if trace.seed_state_at is not None:
        print(
            "became a seed at t=%.0f s (end game entered at t=%s)"
            % (trace.seed_state_at, trace.endgame_at)
        )
    print(
        "messages sent/received: %d / %d"
        % (trace.messages_sent, trace.messages_received)
    )

    print("\n--- entropy (figure 1) ---")
    entropy = summarize_entropy(trace)
    print(
        "local interested in remotes  a/b  p20=%.2f median=%.2f p80=%.2f"
        % (entropy.p20_local, entropy.median_local, entropy.p80_local)
    )
    print(
        "remotes interested in local  c/d  p20=%.2f median=%.2f p80=%.2f"
        % (entropy.p20_remote, entropy.median_remote, entropy.p80_remote)
    )

    print("\n--- piece replication in the peer set (figures 2/4) ---")
    series = replication_series(trace, leecher_state_only=True)
    if series.times:
        print(
            "min copies: min=%d  final=%d   mean copies: final=%.1f"
            % (min(series.min_copies), series.min_copies[-1], series.mean_copies[-1])
        )
        print("fraction of samples with a missing piece: %.2f" % series.fraction_at_zero())
    times, sizes = peer_set_series(trace)
    if sizes:
        print("peer set size: max=%d final=%d" % (max(sizes), sizes[-1]))

    print("\n--- interarrival times (figures 7/8) ---")
    pieces = interarrival_summary(trace, kind="piece")
    print(
        "piece interarrival: median=%.2fs  first-%d slowdown=x%.1f  "
        "last-%d slowdown=x%.1f"
        % (
            pieces.median_all,
            pieces.n,
            pieces.first_slowdown(),
            pieces.n,
            pieces.last_slowdown(),
        )
    )

    print("\n--- choke algorithm (figure 10) ---")
    for state in ("leecher", "seed"):
        correlation = unchoke_interest_correlation(trace, state=state)
        if len(correlation) >= 3:
            print(
                "%s state: %d remotes, unchoke/interest correlation=%.2f"
                % (state, len(correlation), correlation.correlation)
            )
        else:
            print("%s state: not enough data" % state)


if __name__ == "__main__":
    main()
