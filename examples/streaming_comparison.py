#!/usr/bin/env python3
"""Streaming shoot-out: what does in-order delivery cost rarest first?

The paper evaluates BitTorrent as a bulk-download protocol, where local
rarest first wins because *any* piece is as good as any other.  A
streaming consumer breaks that symmetry: pieces are only playable in
order, so pure rarest first — which deliberately downloads out of order
— leaves the player buffering even while the download races ahead.

This script runs the same Table-I torrent as a streaming workload under
the three members of the selection family:

* ``rarest-first``  — the paper's baseline, position-blind;
* ``seq-window``    — rarest first *within* a sliding window ahead of
  the playback position (the classic streaming compromise);
* ``pfs``           — proportional-fair sampling, a probabilistic blend
  of urgency (distance from the playhead) and rarity.

and reports both sides of the trade-off: the playback experience
(startup delay, rebuffer count/time, in-order progress) **and** the
swarm-health metrics the paper cares about (piece-availability entropy,
max-min replication gap) — showing what the streaming strategies give
back in diversity to buy their in-order delivery.

Run:  python examples/streaming_comparison.py
"""

from repro.analysis import (
    playback_summary,
    replication_series,
    summarize_entropy,
)
from repro.core.rarest_first import make_selector
from repro.sim.config import KIB
from repro.workloads import build_experiment, scaled_copy, scenario_by_id

TORRENT_ID = 2
DURATION = 900.0
PLAYBACK_RATE = 16.0 * KIB  # under the 20 kiB/s leecher upload cap
SEED = 11

STRATEGIES = (
    ("rarest-first", "rarest-first"),
    ("seq-window", "seq-window:window=16"),
    ("pfs", "pfs:urgency=0.95,rarity_bias=1.0"),
)


def run_streaming(selector_spec: str) -> dict:
    scenario = scaled_copy(scenario_by_id(TORRENT_ID), duration=DURATION)
    harness = build_experiment(
        scenario,
        seed=SEED,
        local_selector=make_selector(selector_spec),
        population_selector_factory=lambda: make_selector(selector_spec),
        playback_rate=PLAYBACK_RATE,
    )
    trace = harness.run(DURATION)

    summary = playback_summary(trace)
    entropy = summarize_entropy(trace)
    series = replication_series(trace, leecher_state_only=True)
    gaps = [
        high - low for low, high in zip(series.min_copies, series.max_copies)
    ]
    return {
        "startup": summary.startup_delay,
        "rebuffers": summary.rebuffer_count,
        "stalled": summary.rebuffer_seconds,
        "finished": summary.finished,
        "in_order": summary.in_order_pieces,
        "pieces": scenario.num_pieces,
        "entropy_ab": entropy.median_local,
        "diversity_gap": sum(gaps) / len(gaps) if gaps else float("nan"),
    }


def fmt_startup(stats: dict) -> str:
    if stats["startup"] is None:
        return "never"
    return "%.0f" % stats["startup"]


def main() -> None:
    scenario = scaled_copy(scenario_by_id(TORRENT_ID), duration=DURATION)
    print("=== streaming piece-selection shoot-out ===")
    print(
        "torrent %d: %d pieces x %d kiB, playback %d kiB/s, %ds horizon\n"
        % (
            TORRENT_ID,
            scenario.num_pieces,
            scenario.piece_size // KIB,
            PLAYBACK_RATE // KIB,
            DURATION,
        )
    )
    header = "%-14s %8s %9s %9s %10s %8s %10s" % (
        "strategy", "startup", "rebuffers", "stall (s)",
        "in-order", "a/b med", "avail. gap",
    )
    print(header)
    print("-" * len(header))
    for name, spec in STRATEGIES:
        stats = run_streaming(spec)
        print(
            "%-14s %8s %9d %9.0f %6d/%-3d %8.2f %10.1f"
            % (
                name,
                fmt_startup(stats),
                stats["rebuffers"],
                stats["stalled"],
                stats["in_order"],
                stats["pieces"],
                stats["entropy_ab"],
                stats["diversity_gap"],
            )
        )
    print(
        "\n=> rarest first maximises entropy but plays back worst: its"
        "\n   in-order prefix grows only by accident.  The windowed"
        "\n   selector starts fastest at a modest diversity cost; pfs"
        "\n   sits between the two.  For bulk downloads the paper's"
        "\n   verdict stands — these strategies only pay off when the"
        "\n   consumer genuinely needs bytes in order."
    )


if __name__ == "__main__":
    main()
