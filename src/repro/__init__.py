"""repro — a reproduction of *Rarest First and Choke Algorithms Are
Enough* (Legout, Urvoy-Keller, Michiardi; IMC 2006).

The package implements, from scratch, a complete BitTorrent swarm
simulator (protocol substrate, discrete-event engine, fluid bandwidth
model, tracker) around the paper's two contributions:

* the **rarest first** piece-selection algorithm with its random-first,
  strict-priority and end-game policies (:mod:`repro.core`), and
* the **choke** peer-selection algorithm in leecher state and in the new
  (mainline >= 4.0.0) seed state (:mod:`repro.core.choke`);

plus the paper's measurement methodology: an instrumented local peer
(:mod:`repro.instrumentation`), the 26 Table-I torrent scenarios
(:mod:`repro.workloads`), and the analysis that regenerates every figure
(:mod:`repro.analysis`).

Quickstart::

    from repro.workloads import scenario_by_id, build_experiment
    from repro.analysis import summarize_entropy

    harness = build_experiment(scenario_by_id(7), seed=3)
    trace = harness.run()
    print(summarize_entropy(trace).median_local)
"""

from repro.core import (
    LeecherChoker,
    OldSeedChoker,
    PiecePicker,
    RandomSelector,
    RarestFirstSelector,
    SeedChoker,
    SequentialSelector,
    TitForTatChoker,
)
from repro.instrumentation import Instrumentation
from repro.protocol import Bitfield, Metainfo
from repro.sim import Peer, PeerConfig, Simulator, Swarm, SwarmConfig
from repro.workloads import TABLE1, build_experiment, scenario_by_id

__version__ = "1.0.0"

__all__ = [
    "Bitfield",
    "Instrumentation",
    "LeecherChoker",
    "Metainfo",
    "OldSeedChoker",
    "Peer",
    "PeerConfig",
    "PiecePicker",
    "RandomSelector",
    "RarestFirstSelector",
    "SeedChoker",
    "SequentialSelector",
    "Simulator",
    "Swarm",
    "SwarmConfig",
    "TABLE1",
    "TitForTatChoker",
    "build_experiment",
    "scenario_by_id",
    "__version__",
]
