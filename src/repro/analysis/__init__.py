"""Analysis of instrumented-peer traces into the paper's figures.

Each module maps to one group of figures:

* :mod:`repro.analysis.entropy` — figure 1 (peer-availability ratios);
* :mod:`repro.analysis.replication` — figures 2, 3, 4, 6 (copies in the
  peer set, rarest-set size);
* :mod:`repro.analysis.peerset` — figure 5 (peer-set size over time);
* :mod:`repro.analysis.interarrival` — figures 7 and 8 (piece/block
  interarrival CDFs);
* :mod:`repro.analysis.fairness` — figures 9, 10, 11 (contribution sets,
  unchoke/interest correlation, seed service uniformity);
* :mod:`repro.analysis.stats` — shared percentile/CDF helpers;
* :mod:`repro.analysis.streaming` — playback metrics (startup delay,
  rebuffering, in-order lag) for streaming workloads;
* :mod:`repro.analysis.stability` — open-system stable/unstable
  classification and sim-vs-fluid phase diagrams.
"""

from repro.analysis.entropy import EntropySummary, entropy_ratios, summarize_entropy
from repro.analysis.fairness import (
    UnchokeCorrelation,
    leecher_contribution,
    seed_contribution,
    unchoke_interest_correlation,
)
from repro.analysis.interarrival import InterarrivalSummary, interarrival_summary
from repro.analysis.peerset import peer_set_series
from repro.analysis.replication import rarest_set_series, replication_series
from repro.analysis.stability import (
    POLICY_EFFECTIVENESS,
    classify_fluid,
    classify_record,
    fluid_model_for_policy,
    phase_diagram,
)
from repro.analysis.stats import cdf, pearson, percentile
from repro.analysis.streaming import PlaybackSummary, in_order_lag, playback_summary

__all__ = [
    "EntropySummary",
    "InterarrivalSummary",
    "POLICY_EFFECTIVENESS",
    "PlaybackSummary",
    "UnchokeCorrelation",
    "cdf",
    "classify_fluid",
    "classify_record",
    "entropy_ratios",
    "fluid_model_for_policy",
    "in_order_lag",
    "interarrival_summary",
    "leecher_contribution",
    "pearson",
    "peer_set_series",
    "percentile",
    "phase_diagram",
    "playback_summary",
    "rarest_set_series",
    "replication_series",
    "seed_contribution",
    "summarize_entropy",
    "unchoke_interest_correlation",
]
