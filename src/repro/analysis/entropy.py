"""Figure 1: entropy characterisation through peer availability.

The paper characterises a torrent's entropy with two per-remote-peer
ratios, computed while the local peer is in leecher state (§IV-A.1):

* ``a/b`` — *a* is the time the local peer is interested in the remote
  peer, *b* is the time the remote spent in the peer set;
* ``c/d`` — *c* is the time the remote peer is interested in the local
  peer, *d* equals *b*.

Ideal entropy means every leecher is always interested in every other
leecher: both ratios equal one.  Remote peers that stayed less than
10 seconds are filtered out (misbehaving "noise" clients), and only
remote *leechers* are considered (seeds are always interesting and never
interested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.stats import percentile
from repro.instrumentation.logger import Instrumentation, RemotePeerRecord

MIN_PRESENCE_SECONDS = 10.0


@dataclass
class EntropySummary:
    """Percentiles of the two availability ratios for one experiment."""

    local_in_remote: List[float]
    remote_in_local: List[float]

    @property
    def p20_local(self) -> float:
        return percentile(self.local_in_remote, 0.2) if self.local_in_remote else float("nan")

    @property
    def median_local(self) -> float:
        return percentile(self.local_in_remote, 0.5) if self.local_in_remote else float("nan")

    @property
    def p80_local(self) -> float:
        return percentile(self.local_in_remote, 0.8) if self.local_in_remote else float("nan")

    @property
    def p20_remote(self) -> float:
        return percentile(self.remote_in_local, 0.2) if self.remote_in_local else float("nan")

    @property
    def median_remote(self) -> float:
        return percentile(self.remote_in_local, 0.5) if self.remote_in_local else float("nan")

    @property
    def p80_remote(self) -> float:
        return percentile(self.remote_in_local, 0.8) if self.remote_in_local else float("nan")


def _leecher_overlap(
    record: RemotePeerRecord, leecher_start: float, leecher_end: float
) -> float:
    """Time the remote spent in the peer set while the local peer was a
    leecher *and* the remote itself was a leecher."""
    end = leecher_end
    if record.remote_seed_since is not None:
        end = min(end, record.remote_seed_since)
    return record.presence.total_clipped(leecher_start, end)


def entropy_ratios(
    instrumentation: Instrumentation,
    min_presence: float = MIN_PRESENCE_SECONDS,
) -> Tuple[List[float], List[float]]:
    """Compute the per-remote-peer (a/b, c/d) ratio populations.

    Returns two lists: ratios of local-interested-in-remote and of
    remote-interested-in-local, one entry per qualifying remote leecher.
    """
    instrumentation.finalize()
    leecher_start, leecher_end = instrumentation.leecher_interval
    local_ratios: List[float] = []
    remote_ratios: List[float] = []
    for record in instrumentation.records.values():
        if record.remote_seed_since is not None and (
            record.remote_seed_since <= leecher_start
        ):
            continue  # the remote was a seed the whole time: not a leecher peer
        presence = _leecher_overlap(record, leecher_start, leecher_end)
        if presence < min_presence:
            continue  # §IV-A.1: filter peers that stayed < 10 s
        seed_cutoff = leecher_end
        if record.remote_seed_since is not None:
            seed_cutoff = min(seed_cutoff, record.remote_seed_since)
        interested_local = record.local_interested_in_remote.total_clipped(
            leecher_start, seed_cutoff
        )
        interested_remote = record.remote_interested_in_local.total_clipped(
            leecher_start, seed_cutoff
        )
        local_ratios.append(min(1.0, interested_local / presence))
        remote_ratios.append(min(1.0, interested_remote / presence))
    return local_ratios, remote_ratios


def summarize_entropy(
    instrumentation: Instrumentation,
    min_presence: float = MIN_PRESENCE_SECONDS,
) -> EntropySummary:
    """Figure-1 data point for one experiment."""
    local_ratios, remote_ratios = entropy_ratios(instrumentation, min_presence)
    return EntropySummary(local_in_remote=local_ratios, remote_in_local=remote_ratios)


def interest_fraction_series(
    instrumentation: Instrumentation,
    step: float = 30.0,
) -> Tuple[List[float], List[float]]:
    """Entropy over time: at each grid instant during the local peer's
    leecher phase, the fraction of present remote leechers the local
    peer is interested in.

    Transient torrents start low and climb as the source releases pieces
    (§IV-A.1's explanation of figure 1's low-entropy cluster); steady
    torrents sit near one throughout.
    """
    instrumentation.finalize()
    start, end = instrumentation.leecher_interval
    if end <= start:
        return [], []
    times: List[float] = []
    fractions: List[float] = []
    t = start
    while t <= end:
        present = 0
        interested = 0
        for record in instrumentation.records.values():
            if record.remote_seed_since is not None and record.remote_seed_since <= t:
                continue  # only remote leechers count
            if record.presence.total_clipped(t, t + 1e-6) <= 0:
                continue
            present += 1
            if record.local_interested_in_remote.total_clipped(t, t + 1e-6) > 0:
                interested += 1
        if present > 0:
            times.append(t)
            fractions.append(interested / present)
        t += step
    return times, fractions
