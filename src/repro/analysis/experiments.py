"""Multi-seed experiment replication.

The paper notes (§III-E.2) that live experiments cannot be repeated "to
gain statistical information"; a simulator can.  This module runs the
same scenario under several seeds and summarises any scalar metric with
mean, standard deviation and a normal-approximation confidence interval,
so reproduction claims can carry error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, TypeVar

Result = TypeVar("Result")

# Two-sided z-values for the usual confidence levels.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class MetricSummary:
    """Replication statistics of one scalar metric."""

    name: str
    values: List[float]
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def n(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        return "%s = %.4g ± %.4g (95%% CI [%.4g, %.4g], n=%d)" % (
            self.name,
            self.mean,
            self.std,
            self.ci_low,
            self.ci_high,
            self.n,
        )


def summarize_metric(
    name: str, values: Sequence[float], confidence: float = 0.95
) -> MetricSummary:
    """Mean / std / CI of one metric across replications."""
    values = [float(v) for v in values if not math.isnan(v)]
    if not values:
        raise ValueError("no valid values for metric %r" % name)
    n = len(values)
    mean = sum(values) / n
    variance = (
        sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    )
    std = math.sqrt(variance)
    z = _Z_VALUES.get(confidence)
    if z is None:
        raise ValueError(
            "confidence must be one of %s" % sorted(_Z_VALUES)
        )
    margin = z * std / math.sqrt(n) if n > 1 else 0.0
    return MetricSummary(
        name=name,
        values=values,
        mean=mean,
        std=std,
        ci_low=mean - margin,
        ci_high=mean + margin,
    )


def run_replications(
    experiment: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Dict[str, MetricSummary]:
    """Run ``experiment(seed)`` for every seed and summarise each metric.

    *experiment* returns a flat dict of scalar metrics; every replication
    must return the same keys.  NaN values are dropped per metric.

    >>> stats = run_replications(lambda seed: {"x": float(seed)}, [1, 2, 3])
    >>> round(stats["x"].mean, 2)
    2.0
    """
    if not seeds:
        raise ValueError("need at least one seed")
    observations: Dict[str, List[float]] = {}
    for seed in seeds:
        metrics = experiment(seed)
        if not observations:
            observations = {key: [] for key in metrics}
        if set(metrics) != set(observations):
            raise ValueError(
                "replication with seed %r returned different metrics" % seed
            )
        for key, value in metrics.items():
            observations[key].append(float(value))
    return {
        key: summarize_metric(key, values, confidence)
        for key, values in observations.items()
    }
