"""Figures 9, 10 and 11: choke-algorithm fairness analysis.

* Figure 9 (leecher state): remote peers are ranked by the bytes the
  local peer uploaded to them; consecutive sets of 5 peers are formed and
  each set's share of the total upload (top graph) and of the total
  download **from leechers** (bottom graph) is reported.  Reciprocation
  shows as the same leading sets dominating both directions.
* Figure 10: per remote peer, the number of times the local peer unchoked
  it against the time the remote was interested in the local peer —
  leecher state (top) and seed state (bottom).
* Figure 11 (seed state): same sets-of-5 construction on the bytes
  uploaded while in seed state; the new seed-state choke algorithm
  spreads the shares far more evenly than the leecher-state figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.stats import pearson
from repro.core.fairness import contribution_sets, reciprocation_shares
from repro.instrumentation.logger import Instrumentation


def leecher_contribution(
    instrumentation: Instrumentation, set_size: int = 5, num_sets: int = 6
) -> Tuple[List[float], List[float]]:
    """Figure 9 data: (upload shares, reciprocated download shares).

    Groups are formed on bytes uploaded in leecher state; the download
    direction excludes remotes that were already seeds when they joined
    the peer set, because "it is not possible to reciprocate data to
    seeds" (leechers that completed *during* the observation keep their
    leecher-phase contribution).
    """
    instrumentation.finalize()
    uploaded: Dict[str, float] = {}
    downloaded: Dict[str, float] = {}
    for address, record in instrumentation.records.items():
        uploaded[address] = record.uploaded_leecher_state
        if not record.was_seed_on_arrival():
            downloaded[address] = record.downloaded_leecher_state
    return reciprocation_shares(uploaded, downloaded, set_size, num_sets)


def seed_contribution(
    instrumentation: Instrumentation, set_size: int = 5, num_sets: int = 6
) -> List[float]:
    """Figure 11 data: shares of seed-state upload per set of 5 peers."""
    instrumentation.finalize()
    uploaded = {
        address: record.uploaded_seed_state
        for address, record in instrumentation.records.items()
        if record.uploaded_seed_state > 0
    }
    return contribution_sets(uploaded, set_size, num_sets)


@dataclass
class UnchokeCorrelation:
    """Figure 10 data for one local-peer state."""

    interested_times: List[float]
    unchoke_counts: List[int]

    @property
    def correlation(self) -> float:
        return pearson(self.interested_times, [float(c) for c in self.unchoke_counts])

    def __len__(self) -> int:
        return len(self.interested_times)


def unchoke_interest_correlation(
    instrumentation: Instrumentation, state: str = "leecher"
) -> UnchokeCorrelation:
    """Per-remote (interested time, number of unchokes) in one state.

    ``state`` is ``"leecher"`` or ``"seed"``; the window is the local
    peer's time in that state.
    """
    instrumentation.finalize()
    if state == "leecher":
        window = instrumentation.leecher_interval
    elif state == "seed":
        window = instrumentation.seed_interval
        if window is None:
            return UnchokeCorrelation(interested_times=[], unchoke_counts=[])
    else:
        raise ValueError("state must be 'leecher' or 'seed', got %r" % state)
    start, end = window
    interested: List[float] = []
    counts: List[int] = []
    for record in instrumentation.records.values():
        presence = record.presence.total_clipped(start, end)
        if presence <= 0:
            continue
        interested.append(
            record.remote_interested_in_local.total_clipped(start, end)
        )
        counts.append(
            sum(1 for time in record.unchoke_times if start <= time < end)
        )
    return UnchokeCorrelation(interested_times=interested, unchoke_counts=counts)


def seed_service_bytes(instrumentation: Instrumentation) -> Dict[str, float]:
    """Bytes served to each remote peer while in seed state (for the
    Jain-index uniformity check of the seed fairness criterion)."""
    instrumentation.finalize()
    return {
        address: record.uploaded_seed_state
        for address, record in instrumentation.records.items()
        if record.uploaded_seed_state > 0
    }
