"""Swarm connectivity-graph analysis (paper §I and §V).

The paper's critique of earlier simulation studies is structural: "all
the simulations of BitTorrent we are aware of consider that each peer
only knows few other peers [...] The consequence is that BitTorrent
builds a random graph [...] that has a larger diameter in simulations
than in real torrents.  However, the diameter has a fundamental impact
on the efficiency of the rarest first algorithm."

This module materialises the swarm's connection graph and computes the
statistics that argument rests on: diameter, average shortest path,
degree distribution, connectivity.  ``benchmarks/
bench_ablation_peer_set.py`` uses it to reproduce the §V point by
rerunning a torrent with mainline's 80-peer sets against the 15-peer
sets of [5].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.swarm import Swarm


@dataclass(frozen=True)
class GraphStats:
    """Summary of one swarm connectivity graph."""

    num_peers: int
    num_connections: int
    connected: bool
    diameter: int
    """Diameter of the largest connected component."""

    average_path_length: float
    mean_degree: float
    max_degree: int
    min_degree: int


def swarm_graph(swarm: "Swarm") -> nx.Graph:
    """The undirected connection graph of the swarm's online peers."""
    graph = nx.Graph()
    for address, peer in swarm.peers.items():
        graph.add_node(address)
        for remote_address in peer.connections:
            graph.add_edge(address, remote_address)
    return graph


def graph_stats(graph: nx.Graph) -> GraphStats:
    """Compute the §V statistics for a connection graph."""
    if graph.number_of_nodes() == 0:
        return GraphStats(0, 0, True, 0, 0.0, 0.0, 0, 0)
    connected = nx.is_connected(graph)
    if connected:
        component = graph
    else:
        largest = max(nx.connected_components(graph), key=len)
        component = graph.subgraph(largest)
    if component.number_of_nodes() > 1:
        diameter = nx.diameter(component)
        average_path = nx.average_shortest_path_length(component)
    else:
        diameter = 0
        average_path = 0.0
    degrees = [degree for __, degree in graph.degree()]
    return GraphStats(
        num_peers=graph.number_of_nodes(),
        num_connections=graph.number_of_edges(),
        connected=connected,
        diameter=diameter,
        average_path_length=average_path,
        mean_degree=sum(degrees) / len(degrees),
        max_degree=max(degrees),
        min_degree=min(degrees),
    )


def degree_histogram(graph: nx.Graph) -> List[int]:
    """Count of nodes per degree (index = degree)."""
    return nx.degree_histogram(graph)
