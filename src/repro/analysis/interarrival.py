"""Figures 7 and 8: piece and block interarrival-time CDFs.

The paper compares the interarrival-time distribution of the 100 first
downloaded pieces (resp. blocks), of the 100 last, and of all of them.
The reproduction criterion (§IV-A.3): in steady state the last-100 CDF
hugs the all-items CDF (no last-pieces problem) while the first-100 CDF
is shifted right (the *first pieces/blocks problem*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.stats import median, percentile
from repro.instrumentation.logger import Instrumentation


@dataclass
class InterarrivalSummary:
    """Interarrival populations of one item kind (pieces or blocks)."""

    all_items: List[float]
    first_n: List[float]
    last_n: List[float]
    n: int

    @property
    def median_all(self) -> float:
        return median(self.all_items) if self.all_items else float("nan")

    @property
    def median_first(self) -> float:
        return median(self.first_n) if self.first_n else float("nan")

    @property
    def median_last(self) -> float:
        return median(self.last_n) if self.last_n else float("nan")

    def first_slowdown(self) -> float:
        """Ratio median(first n) / median(all): > 1 is a first-items problem."""
        if not self.all_items or self.median_all == 0:
            return float("nan")
        return self.median_first / self.median_all

    def last_slowdown(self) -> float:
        """Ratio median(last n) / median(all): ~1 means no last-items problem."""
        if not self.all_items or self.median_all == 0:
            return float("nan")
        return self.median_last / self.median_all

    def tail_ratio(self, fraction: float = 0.9) -> Tuple[float, float]:
        """(first-n, last-n) high-percentile interarrivals relative to all."""
        if not self.all_items:
            return float("nan"), float("nan")
        base = percentile(self.all_items, fraction)
        if base == 0:
            return float("nan"), float("nan")
        first = percentile(self.first_n, fraction) if self.first_n else float("nan")
        last = percentile(self.last_n, fraction) if self.last_n else float("nan")
        return first / base, last / base


def interarrival_times(arrival_times: Sequence[float]) -> List[float]:
    """Consecutive differences of an (already ordered) arrival sequence."""
    ordered = sorted(arrival_times)
    return [
        later - earlier for earlier, later in zip(ordered, ordered[1:])
    ]


def _summary(arrivals: Sequence[float], n: int) -> InterarrivalSummary:
    ordered = sorted(arrivals)
    return InterarrivalSummary(
        all_items=interarrival_times(ordered),
        first_n=interarrival_times(ordered[: n + 1]),
        last_n=interarrival_times(ordered[-(n + 1) :]),
        n=n,
    )


def interarrival_summary(
    instrumentation: Instrumentation, kind: str = "piece", n: int = 100
) -> InterarrivalSummary:
    """Figure 7 (``kind="piece"``) or figure 8 (``kind="block"``) data."""
    if kind == "piece":
        arrivals = [time for time, __ in instrumentation.piece_completions]
    elif kind == "block":
        arrivals = [entry[0] for entry in instrumentation.block_arrivals]
    else:
        raise ValueError("kind must be 'piece' or 'block', got %r" % kind)
    if len(arrivals) < 3:
        raise ValueError("not enough %s arrivals to analyse" % kind)
    n = min(n, max(1, len(arrivals) // 3))
    return _summary(arrivals, n)
