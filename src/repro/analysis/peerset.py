"""Figure 5: evolution of the peer-set size."""

from __future__ import annotations

from typing import List, Tuple

from repro.instrumentation.logger import Instrumentation


def peer_set_series(instrumentation: Instrumentation) -> Tuple[List[float], List[int]]:
    """(times, peer-set sizes) from the periodic snapshots."""
    snapshots = instrumentation.snapshots
    return (
        [snapshot.time for snapshot in snapshots],
        [snapshot.peer_set_size for snapshot in snapshots],
    )
