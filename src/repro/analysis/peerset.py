"""Figure 5: evolution of the peer-set size."""

from __future__ import annotations

from typing import List, Tuple

from repro.instrumentation.logger import Instrumentation


def peer_set_series(instrumentation: Instrumentation) -> Tuple[List[float], List[int]]:
    """(times, peer-set sizes) from the periodic snapshots.

    Offline gap markers (churn windows) are skipped: a departed peer has
    no peer set, and interpolating a zero across the outage would fake a
    collapse-and-recovery that never happened.
    """
    snapshots = [
        snapshot for snapshot in instrumentation.snapshots if not snapshot.offline
    ]
    return (
        [snapshot.time for snapshot in snapshots],
        [snapshot.peer_set_size for snapshot in snapshots],
    )
