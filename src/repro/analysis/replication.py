"""Figures 2, 3, 4 and 6: piece replication in the local peer set.

Figure 2/4 plot, against time, the number of copies of the least
replicated piece (min), the mean over all pieces, and the most replicated
piece (max) in the local peer's peer set.  Figures 3/6 plot the size of
the rarest-pieces set (the number of pieces that are equally rarest).
All four come straight from the instrumentation snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.instrumentation.logger import Instrumentation, Snapshot


@dataclass
class ReplicationSeries:
    """Time series of min/mean/max piece copies in the peer set."""

    times: List[float]
    min_copies: List[int]
    mean_copies: List[float]
    max_copies: List[int]

    def always_above(self, threshold: int) -> bool:
        """True when the least replicated piece never drops to *threshold*
        or below (steady-state check: min copies >= 1 at all times)."""
        return all(value > threshold for value in self.min_copies)

    def fraction_at_zero(self) -> float:
        """Fraction of samples where some piece is missing from the peer
        set entirely (transient-state signature)."""
        if not self.min_copies:
            return 0.0
        return sum(1 for value in self.min_copies if value == 0) / len(self.min_copies)


def _select_snapshots(
    instrumentation: Instrumentation, leecher_state_only: bool
) -> List[Snapshot]:
    # Offline markers are explicit churn gaps, not observations of an
    # empty peer set; plotting them would interpolate phantom zeros.
    snapshots = [
        snapshot for snapshot in instrumentation.snapshots if not snapshot.offline
    ]
    if leecher_state_only:
        snapshots = [snapshot for snapshot in snapshots if not snapshot.is_seed]
    return snapshots


def replication_series(
    instrumentation: Instrumentation, leecher_state_only: bool = False
) -> ReplicationSeries:
    """Figure 2/4 data: copies of pieces in the peer set over time."""
    snapshots = _select_snapshots(instrumentation, leecher_state_only)
    return ReplicationSeries(
        times=[snapshot.time for snapshot in snapshots],
        min_copies=[snapshot.min_copies for snapshot in snapshots],
        mean_copies=[snapshot.mean_copies for snapshot in snapshots],
        max_copies=[snapshot.max_copies for snapshot in snapshots],
    )


def rarest_set_series(
    instrumentation: Instrumentation, leecher_state_only: bool = False
) -> Tuple[List[float], List[int]]:
    """Figure 3/6 data: (times, rarest-pieces-set sizes)."""
    snapshots = _select_snapshots(instrumentation, leecher_state_only)
    return (
        [snapshot.time for snapshot in snapshots],
        [snapshot.rarest_set_size for snapshot in snapshots],
    )


def rarest_set_decay_rate(
    times: List[float], sizes: List[int]
) -> Optional[float]:
    """Least-squares slope of the rarest-set size (pieces/second).

    In the transient state the paper observes a *linear* decrease whose
    rate is set by the initial seed's upload capacity (§IV-A.2.a); a
    negative, roughly constant slope is the reproduction criterion.
    """
    if len(times) < 2:
        return None
    n = len(times)
    mean_t = sum(times) / n
    mean_s = sum(sizes) / n
    cov = sum((t - mean_t) * (s - mean_s) for t, s in zip(times, sizes))
    var = sum((t - mean_t) ** 2 for t in times)
    if var == 0:
        return None
    return cov / var


def linearity_r_squared(times: List[float], sizes: List[int]) -> Optional[float]:
    """Coefficient of determination of the linear fit used above."""
    slope = rarest_set_decay_rate(times, sizes)
    if slope is None:
        return None
    n = len(times)
    mean_t = sum(times) / n
    mean_s = sum(sizes) / n
    intercept = mean_s - slope * mean_t
    ss_res = sum((s - (slope * t + intercept)) ** 2 for t, s in zip(times, sizes))
    ss_tot = sum((s - mean_s) ** 2 for s in sizes)
    if ss_tot == 0:
        return None
    return 1.0 - ss_res / ss_tot
