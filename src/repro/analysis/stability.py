"""Open-system stability classification and sim-vs-fluid phase diagrams.

Ties the three layers of the flash-crowd subsystem together:

* the **simulation** side: open-system campaign shards (scenarios
  ``flash-crowd`` / ``flash-crowd-suppress``) carry a
  :class:`~repro.workloads.open_system.StabilityDetector` verdict in
  their record summary;
* the **model** side: the open-system extension of
  :class:`~repro.models.fluid.FluidModel` (``seed_capacity``,
  ``seed_departure_rate = inf``) classifies the same operating point
  analytically — stable iff a finite steady state exists;
* the **phase diagram**: :func:`phase_diagram` sweeps an
  ``arrival rate x seed capacity x policy`` grid through the campaign
  runner (one cached shard per cell) and cross-validates the two
  classifications cell by cell.

**Calibration.**  The fluid effectiveness ``eta`` is per policy.  Plain
rarest first in the one-club regime contributes nothing to completions
— everyone holds the same all-but-one set — so ``eta = 0`` and the only
completion flow is the seed injecting the missing piece at
``seed_upload / piece_size`` completions/s: the swarm is stable iff the
arrival rate stays below that.  Mode suppression keeps chunk diversity,
so leecher-to-leecher exchange works at full effectiveness (``eta = 1``,
the seed merely contributes ``seed_upload / content_size``) and the
swarm self-scales at any arrival rate.  This reproduces the qualitative
RFwPMS result: cells with ``arrival_rate > seed_upload / piece_size``
are unstable under rarest first and stable under mode suppression.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import (
    DEFAULT_CAMPAIGN_SEED,
    SCENARIOS,
    CampaignSpec,
)
from repro.models.fluid import FluidModel
from repro.workloads import INTERNET_2005, scenario_by_id

__all__ = [
    "POLICY_EFFECTIVENESS",
    "POLICY_SCENARIOS",
    "classify_fluid",
    "classify_record",
    "fluid_model_for_policy",
    "phase_diagram",
]

#: Campaign scenario implementing each policy's open-system run.
POLICY_SCENARIOS: Dict[str, str] = {
    "rarest-first": "flash-crowd",
    "mode-suppression": "flash-crowd-suppress",
}

#: Fluid effectiveness ``eta`` per policy (see module docstring).
POLICY_EFFECTIVENESS: Dict[str, float] = {
    "rarest-first": 0.0,
    "mode-suppression": 1.0,
}


def fluid_model_for_policy(
    policy: str,
    arrival_rate: float,
    seed_upload: float,
    piece_size: int,
    content_size: int,
    leecher_upload: Optional[float] = None,
) -> FluidModel:
    """The open-system fluid model for one phase-diagram cell.

    ``leecher_upload`` defaults to the mean of the
    :data:`~repro.workloads.capacities.INTERNET_2005` population mix the
    campaign shards actually sample from.
    """
    if policy not in POLICY_EFFECTIVENESS:
        raise KeyError(
            "unknown policy %r (have: %s)"
            % (policy, ", ".join(sorted(POLICY_EFFECTIVENESS)))
        )
    if leecher_upload is None:
        leecher_upload = INTERNET_2005.mean_upload()
    eta = POLICY_EFFECTIVENESS[policy]
    if eta > 0:
        seed_capacity = seed_upload / float(content_size)
    else:
        # One-club regime: each seed upload of the missing piece
        # completes exactly one club member.
        seed_capacity = seed_upload / float(piece_size)
    return FluidModel(
        arrival_rate=arrival_rate,
        upload_rate=leecher_upload / float(content_size),
        seed_departure_rate=math.inf,
        effectiveness=eta,
        seed_capacity=seed_capacity,
    )


def classify_fluid(model: FluidModel) -> str:
    """``"stable"`` iff the model has a finite steady state."""
    return "stable" if model.steady_state() is not None else "unstable"


def classify_record(record: dict) -> Optional[str]:
    """The sim-side verdict stored in a campaign shard record, if any."""
    stability = (record.get("summary") or {}).get("stability")
    if stability is None or record.get("status") != "ok":
        return None
    return "stable" if stability.get("stable") else "unstable"


def _cell_geometry(scenario_name: str, torrent_id: int) -> Tuple[int, int]:
    """(piece_size, content_size) of a cell after variant overrides."""
    variant = SCENARIOS[scenario_name]
    base = scenario_by_id(torrent_id)
    piece_size = variant.piece_size or base.piece_size
    num_pieces = variant.num_pieces or base.num_pieces
    return piece_size, num_pieces * piece_size


def phase_diagram(
    arrival_rates: Sequence[float],
    seed_uploads: Sequence[float],
    policies: Sequence[str] = ("rarest-first", "mode-suppression"),
    torrent_id: int = 2,
    cache_dir: Optional[str] = None,
    workers: int = 1,
    campaign_seed: int = DEFAULT_CAMPAIGN_SEED,
    duration: Optional[float] = None,
    timeout: Optional[float] = None,
    progress=None,
) -> dict:
    """Run (or resume from cache) the full stability phase diagram.

    One campaign per ``(arrival_rate, seed_upload)`` point covering
    every policy's scenario, all sharing *cache_dir*, so a re-run is a
    pure cache hit and adding grid points only executes the new cells.
    Returns a JSON-ready matrix: one entry per cell with the sim
    verdict, the fluid verdict, and whether they agree.
    """
    scenarios = tuple(POLICY_SCENARIOS[policy] for policy in policies)
    cells: List[dict] = []
    for arrival_rate in arrival_rates:
        for seed_upload in seed_uploads:
            spec = CampaignSpec(
                name="stability-a%g-s%g" % (arrival_rate, seed_upload),
                torrent_ids=(torrent_id,),
                scenarios=scenarios,
                campaign_seed=campaign_seed,
                duration=duration,
                arrival_rate=float(arrival_rate),
                seed_upload=float(seed_upload),
            )
            runner = CampaignRunner(
                spec,
                cache_dir=cache_dir,
                workers=workers,
                timeout=timeout,
                progress=progress,
            )
            result = runner.run()
            for policy in policies:
                scenario_name = POLICY_SCENARIOS[policy]
                record = next(
                    (
                        rec
                        for rec in result.records.values()
                        if rec.get("scenario") == scenario_name
                    ),
                    None,
                )
                sim = classify_record(record) if record is not None else None
                piece_size, content_size = _cell_geometry(
                    scenario_name, torrent_id
                )
                model = fluid_model_for_policy(
                    policy,
                    arrival_rate,
                    seed_upload,
                    piece_size=piece_size,
                    content_size=content_size,
                )
                fluid = classify_fluid(model)
                cell = {
                    "arrival_rate": arrival_rate,
                    "seed_upload": seed_upload,
                    "policy": policy,
                    "scenario": scenario_name,
                    "sim": sim,
                    "fluid": fluid,
                    "agree": (sim is not None and sim == fluid),
                    "seed_piece_rate": seed_upload / float(piece_size),
                }
                if record is not None:
                    cell["shard_id"] = record.get("shard_id")
                    cell["stability"] = (record.get("summary") or {}).get(
                        "stability"
                    )
                cells.append(cell)
    classified = [cell for cell in cells if cell["sim"] is not None]
    return {
        "grid": {
            "arrival_rates": list(arrival_rates),
            "seed_uploads": list(seed_uploads),
            "policies": list(policies),
            "torrent_id": torrent_id,
            "campaign_seed": campaign_seed,
        },
        "cells": cells,
        "agreement": {
            "agreeing": sum(1 for cell in classified if cell["agree"]),
            "classified": len(classified),
            "total": len(cells),
        },
    }
