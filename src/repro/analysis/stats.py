"""Small statistics helpers shared by the analysis modules."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile, ``fraction`` in [0, 1].

    >>> percentile([1, 2, 3, 4, 5], 0.5)
    3.0
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    if not values:
        return [], []
    ordered = sorted(values)
    n = len(ordered)
    fractions = [(index + 1) / n for index in range(n)]
    return [float(v) for v in ordered], fractions


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of *values* that are <= threshold."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate inputs."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have the same length")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def median(values: Sequence[float]) -> float:
    return percentile(values, 0.5)
