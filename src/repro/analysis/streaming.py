"""Streaming/playback metrics from an instrumented peer.

For on-demand streaming workloads (``PeerConfig.playback_rate`` set)
the interesting quantities are no longer the paper's download-completion
figures but the viewer-facing ones: how long until playback starts, how
often and for how long it rebuffers, and how far the in-order delivered
prefix trails the raw download.  :func:`playback_summary` folds the
playback series an :class:`~repro.instrumentation.logger.Instrumentation`
records (live or replayed — the two are byte-identical) into one
comparable summary per peer, and :func:`in_order_lag` quantifies the
cost of out-of-order piece selection directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.instrumentation.logger import Instrumentation


@dataclass
class PlaybackSummary:
    """Viewer-facing metrics of one peer's playback session."""

    startup_delay: Optional[float]
    """Seconds from join to playback start; None if it never started."""

    started_at: Optional[float]
    finished_at: Optional[float]

    rebuffer_count: int
    """Stall events after playback started."""

    rebuffer_seconds: float
    """Total time spent stalled (closed stall windows only)."""

    stalled_at_end: bool
    """True when the run stopped inside an open stall window."""

    in_order_pieces: int
    """Contiguous delivered prefix (pieces) at the last progress event."""

    in_order_bytes: int

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def play_time(self) -> Optional[float]:
        """Start-to-finish wall time, rebuffering included."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


def playback_summary(instrumentation: Instrumentation) -> PlaybackSummary:
    """Fold the recorded playback series into a :class:`PlaybackSummary`.

    Raises :class:`ValueError` when the peer recorded no playback events
    at all (playback was not configured for it).
    """
    if not instrumentation.playback_events:
        raise ValueError("no playback events recorded (playback_rate unset?)")
    pieces = 0
    total_bytes = 0
    if instrumentation.in_order_history:
        __, pieces, total_bytes = instrumentation.in_order_history[-1]
    intervals = instrumentation.rebuffer_intervals
    return PlaybackSummary(
        startup_delay=instrumentation.playback_startup_delay,
        started_at=instrumentation.playback_started_at,
        finished_at=instrumentation.playback_finished_at,
        rebuffer_count=instrumentation.rebuffer_count,
        rebuffer_seconds=instrumentation.rebuffer_seconds,
        stalled_at_end=bool(intervals) and intervals[-1][1] is None,
        in_order_pieces=pieces,
        in_order_bytes=total_bytes,
    )


def in_order_lag(instrumentation: Instrumentation) -> List[Tuple[float, int]]:
    """``(time, downloaded pieces - in-order pieces)`` at each in-order
    advance: how many completed pieces sit above the first gap.  Zero
    everywhere for a perfectly sequential download; persistently large
    values are the streaming cost of rarity-driven selection."""
    completions = [time for time, __ in instrumentation.piece_completions]
    lag: List[Tuple[float, int]] = []
    downloaded = 0
    for time, pieces, __ in instrumentation.in_order_history:
        while downloaded < len(completions) and completions[downloaded] <= time:
            downloaded += 1
        lag.append((time, downloaded - pieces))
    return lag
