"""Parallel, cached, resumable experiment campaigns.

The paper's evaluation — 26 Table-I torrents behind Table I and
figures 1-11 — is one *campaign*: a declarative
:class:`~repro.campaign.spec.CampaignSpec` expanded into independent
run shards, executed across worker processes by the
:class:`~repro.campaign.runner.CampaignRunner`, content-addressed into
an on-disk :class:`~repro.campaign.cache.ShardCache`, and merged back
into the ``benchmarks/results/`` tables plus a ``manifest.json``.

Determinism contract: a shard's RNG seed is a pure function of
``(campaign_seed, torrent_id, scenario, replicate)``, so the campaign's
aggregated output is byte-identical at any worker count — `repro
campaign run --workers 4` is just faster, never different.
"""

from repro.campaign.aggregate import (
    mean_download_times,
    render_campaign_table,
    render_manifest_table,
    render_streaming_table,
)
from repro.campaign.cache import (
    CACHE_SCHEMA_VERSION,
    DurationBook,
    ShardCache,
    shard_cache_key,
)
from repro.campaign.dispatch import (
    BACKENDS,
    LocalBackend,
    WorkerPoolBackend,
    estimate_shard_cost,
    parse_backend_spec,
    resolve_backend,
    schedule_shards,
)
from repro.campaign.incremental import (
    InvalidationReport,
    ShardDelta,
    diff_spec,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    MANIFEST_NAME,
    ShardTimeout,
    execute_shard,
    manifest_fingerprint,
    run_shard_payload,
)
from repro.campaign.spec import (
    DEFAULT_CAMPAIGN_SEED,
    DEFAULT_SCENARIO,
    PAPER_TORRENT_IDS,
    PAYLOAD_FIELDS,
    SCENARIOS,
    CampaignSpec,
    ScenarioVariant,
    ShardSpec,
    derive_shard_seed,
    expand_spec,
    parse_torrent_ids,
)
from repro.campaign.worker import main_worker, run_worker

__all__ = [
    "BACKENDS",
    "CACHE_SCHEMA_VERSION",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DEFAULT_CAMPAIGN_SEED",
    "DEFAULT_SCENARIO",
    "DurationBook",
    "InvalidationReport",
    "LocalBackend",
    "MANIFEST_NAME",
    "PAPER_TORRENT_IDS",
    "PAYLOAD_FIELDS",
    "SCENARIOS",
    "ScenarioVariant",
    "ShardCache",
    "ShardDelta",
    "ShardSpec",
    "ShardTimeout",
    "WorkerPoolBackend",
    "derive_shard_seed",
    "diff_spec",
    "estimate_shard_cost",
    "execute_shard",
    "expand_spec",
    "main_worker",
    "manifest_fingerprint",
    "mean_download_times",
    "parse_backend_spec",
    "parse_torrent_ids",
    "render_campaign_table",
    "render_manifest_table",
    "render_streaming_table",
    "resolve_backend",
    "run_shard_payload",
    "run_worker",
    "schedule_shards",
    "shard_cache_key",
]
