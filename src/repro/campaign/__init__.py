"""Parallel, cached, resumable experiment campaigns.

The paper's evaluation — 26 Table-I torrents behind Table I and
figures 1-11 — is one *campaign*: a declarative
:class:`~repro.campaign.spec.CampaignSpec` expanded into independent
run shards, executed across worker processes by the
:class:`~repro.campaign.runner.CampaignRunner`, content-addressed into
an on-disk :class:`~repro.campaign.cache.ShardCache`, and merged back
into the ``benchmarks/results/`` tables plus a ``manifest.json``.

Determinism contract: a shard's RNG seed is a pure function of
``(campaign_seed, torrent_id, scenario, replicate)``, so the campaign's
aggregated output is byte-identical at any worker count — `repro
campaign run --workers 4` is just faster, never different.
"""

from repro.campaign.aggregate import (
    mean_download_times,
    render_campaign_table,
    render_manifest_table,
    render_streaming_table,
)
from repro.campaign.cache import CACHE_SCHEMA_VERSION, ShardCache, shard_cache_key
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    MANIFEST_NAME,
    ShardTimeout,
    execute_shard,
    manifest_fingerprint,
    run_shard_payload,
)
from repro.campaign.spec import (
    DEFAULT_CAMPAIGN_SEED,
    DEFAULT_SCENARIO,
    PAPER_TORRENT_IDS,
    SCENARIOS,
    CampaignSpec,
    ScenarioVariant,
    ShardSpec,
    derive_shard_seed,
    expand_spec,
    parse_torrent_ids,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DEFAULT_CAMPAIGN_SEED",
    "DEFAULT_SCENARIO",
    "MANIFEST_NAME",
    "PAPER_TORRENT_IDS",
    "SCENARIOS",
    "ScenarioVariant",
    "ShardCache",
    "ShardSpec",
    "ShardTimeout",
    "derive_shard_seed",
    "execute_shard",
    "expand_spec",
    "manifest_fingerprint",
    "mean_download_times",
    "parse_torrent_ids",
    "render_campaign_table",
    "render_manifest_table",
    "render_streaming_table",
    "run_shard_payload",
    "shard_cache_key",
]
