"""Merge per-shard campaign results into human-readable tables.

The aggregation step is deliberately dumb and deterministic: it reads
only the shard *records* (never the traces), orders everything by shard
id, and renders the same fixed-width tables the figure benchmarks write
into ``benchmarks/results/`` — so a campaign run slots its output next
to the per-figure artefacts, and two byte-identical campaigns render
byte-identical tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def _fmt(value, pattern: str = "%.1f", missing: str = "-") -> str:
    if value is None:
        return missing
    return pattern % value


def render_campaign_table(records: List[dict]) -> str:
    """One row per shard: swarm outcome facts plus the trace fingerprint.

    Failure records render too (status column), so a partially failed
    campaign's table shows exactly which coordinates are missing.
    """
    lines = [
        "Campaign results — one row per shard",
        "%-16s %-7s %6s | %10s %5s %5s %10s %10s  %s"
        % (
            "shard", "status", "cache", "1st copy", "S", "L",
            "local done", "mean dl", "fingerprint",
        ),
    ]
    for record in sorted(records, key=lambda r: r["shard_id"]):
        summary = record.get("summary") or {}
        fingerprint = record.get("trace_fingerprint") or "-"
        lines.append(
            "%-16s %-7s %6s | %10s %5s %5s %10s %10s  %s"
            % (
                record["shard_id"],
                record["status"],
                "hit" if record.get("cache_hit") else "run",
                _fmt(summary.get("first_full_copy_at"), "%.0f"),
                _fmt(summary.get("final_seeds"), "%d"),
                _fmt(summary.get("final_leechers"), "%d"),
                _fmt(summary.get("local_completed_at"), "%.0f"),
                _fmt(summary.get("mean_download_time"), "%.0f"),
                fingerprint[:16],
            )
        )
    return "\n".join(lines) + "\n"


def render_streaming_table(records: List[dict]) -> str:
    """Viewer-facing playback metrics, one row per streaming shard.

    Empty string when no record carries a playback summary (the
    campaign had no streaming scenario), so callers can append it
    unconditionally.
    """
    rows = [
        (record, record["summary"]["playback"])
        for record in sorted(records, key=lambda r: r["shard_id"])
        if (record.get("summary") or {}).get("playback")
    ]
    if not rows:
        return ""
    lines = [
        "Streaming playback — one row per streaming shard",
        "%-22s %-24s %8s %9s %9s %10s %8s"
        % (
            "shard", "selector", "startup", "rebuffers", "stall (s)",
            "finish", "inorder",
        ),
    ]
    for record, playback in rows:
        if playback.get("finished_at") is not None:
            finish = _fmt(playback["finished_at"], "%.0f")
        elif playback.get("stalled_at_end"):
            finish = "stalled"
        else:
            finish = "playing"
        lines.append(
            "%-22s %-24s %8s %9s %9s %10s %8s"
            % (
                record["shard_id"],
                record.get("selector") or "rarest-first",
                _fmt(playback.get("startup_delay"), "%.0f"),
                _fmt(playback.get("rebuffer_count"), "%d"),
                _fmt(playback.get("rebuffer_seconds"), "%.1f"),
                finish,
                _fmt(playback.get("in_order_pieces"), "%d"),
            )
        )
    return "\n".join(lines) + "\n"


def mean_download_times(records: List[dict]) -> Dict[int, Optional[float]]:
    """Per-torrent mean of ``mean_download_time`` across ok replicates.

    Torrents whose shards all failed (or never finished a download) map
    to None, so the caller can render the gap instead of hiding it.
    """
    sums: Dict[int, List[float]] = {}
    seen: Dict[int, bool] = {}
    for record in records:
        torrent_id = record.get("torrent_id")
        if torrent_id is None:
            continue
        seen.setdefault(torrent_id, True)
        if record.get("status") != "ok":
            continue
        value = (record.get("summary") or {}).get("mean_download_time")
        if value is not None:
            sums.setdefault(torrent_id, []).append(value)
    return {
        torrent_id: (sum(values) / len(values) if values else None)
        for torrent_id, values in (
            (tid, sums.get(tid, [])) for tid in sorted(seen)
        )
    }


def render_manifest_table(manifest: dict) -> str:
    """The ``repro campaign status`` view of a manifest."""
    counts = manifest["counts"]
    lines = [
        "campaign: %s  (workers=%s)"
        % (manifest["campaign"]["name"], manifest.get("workers")),
        "shards=%d ok=%d failed=%d timeout=%d cache_hits=%d executed=%d"
        % (
            counts["shards"], counts["ok"], counts["failed"],
            counts["timeout"], counts["cache_hits"], counts["executed"],
        ),
        "%-16s %-7s %5s %8s %8s  %s"
        % ("shard", "status", "hit", "attempts", "wall (s)", "fingerprint"),
    ]
    for entry in manifest["shards"]:
        fingerprint = entry.get("trace_fingerprint") or "-"
        lines.append(
            "%-16s %-7s %5s %8d %8s  %s"
            % (
                entry["shard_id"],
                entry["status"],
                "yes" if entry["cache_hit"] else "no",
                entry.get("attempts") or 0,
                _fmt(entry.get("wall_seconds"), "%.2f"),
                fingerprint[:16],
            )
        )
    lines.append("manifest_fingerprint: %s" % manifest["manifest_fingerprint"])
    return "\n".join(lines) + "\n"
