"""Content-addressed on-disk cache for campaign shard results.

Each shard result is addressed by a SHA-256 key over the shard's fully
resolved spec plus the code-relevant configuration (cache schema
version, trace schema version, package version): the same shard of the
same code always maps to the same key, and any change to the seed,
scenario overrides or trace format yields a new key — so a resumed
campaign after an interrupt or a spec edit re-executes exactly the
missing/changed shards and nothing else.

A cached shard is two files under the cache root::

    <key>.json         the shard record (summary, fingerprint, status)
    <key>.trace.jsonl  the replayable structured trace of the local peer

The record file is written last with an atomic rename, so its presence
marks a complete entry; an interrupted shard leaves only ``*.tmp``
debris that the next run ignores and overwrites.  The trace file is the
authoritative artefact: a cache hit replays it through
:func:`repro.instrumentation.replay.replay_instrumentation` to rebuild
the exact live ``Instrumentation``, figure-ready, without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.campaign.spec import ShardSpec
from repro.instrumentation.trace import TRACE_SCHEMA_VERSION

CACHE_SCHEMA_VERSION = 1


def shard_cache_key(shard: ShardSpec) -> str:
    """The shard's content address (hex SHA-256).

    Covers every field that changes what the simulation computes: the
    resolved shard spec (seed included) and the versions of the cache
    layout, trace schema and package.  Deliberately excludes anything
    volatile (wall-clock, host, worker count).
    """
    payload = {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "trace_schema": TRACE_SCHEMA_VERSION,
        "repro": __version__,
        "shard": shard.as_payload(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ShardCache:
    """Filesystem store of completed shard records, keyed by content."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def record_path(self, key: str) -> Path:
        return self.root / ("%s.json" % key)

    def trace_path(self, key: str) -> Path:
        return self.root / ("%s.trace.jsonl" % key)

    def trace_tmp_path(self, key: str) -> Path:
        """Where a live run streams its trace before the entry commits.

        Suffixed with the pid so concurrent workers (or a worker killed
        mid-write and its retry) never collide on the same tmp file.
        """
        return self.root / ("%s.trace.jsonl.%d.tmp" % (key, os.getpid()))

    def load(self, key: str) -> Optional[dict]:
        """The cached record for *key*, or None.

        An entry only counts when its record parses, self-identifies
        with the same key, and its trace file is present — a half-written
        or cross-version entry reads as a miss, not an error.
        """
        path = self.record_path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if record.get("key") != key:
            return None
        if not self.trace_path(key).exists():
            return None
        return record

    def store(self, key: str, record: dict, trace_tmp: Optional[Path] = None) -> None:
        """Commit one shard entry atomically.

        The trace tmp file (when the run streamed one) is renamed into
        place first, then the record lands via tmp-write + rename: a
        crash between the two leaves no visible record, so the entry
        never looks complete before it is.
        """
        if trace_tmp is not None:
            os.replace(trace_tmp, self.trace_path(key))
        record_tmp = self.root / ("%s.json.%d.tmp" % (key, os.getpid()))
        record_tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        os.replace(record_tmp, self.record_path(key))

    def remove(self, key: str) -> None:
        for path in (self.record_path(key), self.trace_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def keys(self) -> List[str]:
        """Keys of every complete entry under the root (sorted)."""
        found = []
        for path in sorted(self.root.glob("*.json")):
            key = path.stem
            if self.trace_path(key).exists():
                found.append(key)
        return found


DURATIONS_NAME = "durations.json"


class DurationBook:
    """Recorded shard wall-clock durations, for cache-aware scheduling.

    Keyed by *shard id* (not content key): a spec edit that invalidates
    a shard's cache entry usually leaves its runtime roughly unchanged,
    so the stale duration is still the best available scheduling hint —
    exactly the case longest-shard-first ordering exists for.  Stored
    as ``durations.json`` beside the cache entries; purely advisory
    (scheduling never affects results), so a missing or corrupt file
    reads as empty, never as an error.
    """

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else None
        self._durations: dict = {}
        if self.root is not None:
            try:
                loaded = json.loads((self.root / DURATIONS_NAME).read_text())
            except (OSError, ValueError):
                loaded = {}
            if isinstance(loaded, dict):
                self._durations = {
                    str(shard_id): float(seconds)
                    for shard_id, seconds in loaded.items()
                    if isinstance(seconds, (int, float))
                }

    def get(self, shard_id: str) -> Optional[float]:
        return self._durations.get(shard_id)

    def record(self, shard_id: str, wall_seconds: float) -> None:
        self._durations[shard_id] = round(float(wall_seconds), 4)

    def save(self) -> None:
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / DURATIONS_NAME
        tmp = self.root / ("%s.%d.tmp" % (DURATIONS_NAME, os.getpid()))
        tmp.write_text(
            json.dumps(self._durations, indent=2, sort_keys=True) + "\n"
        )
        os.replace(tmp, path)

    def __len__(self) -> int:
        return len(self._durations)
