"""Pluggable dispatch backends for campaign execution.

The :class:`~repro.campaign.runner.CampaignRunner` expands a spec,
filters it against the content-addressed cache, and hands the surviving
shards to a *dispatch backend*.  Two backends ship:

* :class:`LocalBackend` — the historical path: inline execution at
  ``workers=1``, a ``ProcessPoolExecutor`` above that.  All of PR-4's
  semantics (per-shard ``SIGALRM`` timeout, bounded crash retry with
  pool rebuild, structured failure records) live here unchanged.

* :class:`WorkerPoolBackend` — a coordinator speaking a length-prefixed
  JSON work-queue protocol over TCP sockets.  N ``repro campaign
  worker`` processes — spawned locally, or started by hand on other
  hosts behind SSH port-forwards — connect, pull one shard at a time,
  execute it with the exact same guarded entry point the local pool
  uses, commit the result through the shared content-addressed cache,
  and report back.  The cache is the *sole* coordination point for
  results: a worker that dies after committing but before reporting
  loses nothing (the retry is served from the cache), and two workers
  racing the same shard commit byte-identical entries (atomic rename,
  last writer wins — same bytes either way).

Both backends drive the same resolve/absorb bookkeeping callbacks on
the runner, so retry budgets, timeout semantics and manifest contents
are backend-independent — and the campaign fingerprint is *pinned* to
be byte-identical across backends, worker counts, scheduling orders and
warm-vs-cold caches (``tests/test_campaign_dispatch.py``).

**Wire protocol** (version 1).  Every frame is a 4-byte big-endian
length followed by that many bytes of UTF-8 JSON::

    worker      -> coordinator   {"type": "hello", "worker": <id>, "protocol": 1}
    coordinator -> worker        {"type": "work", "shard_id": ..., "payload": {...}}
                                 {"type": "shutdown"}
    worker      -> coordinator   {"type": "result", "shard_id": ..., "record": {...}}
                                 {"type": "error", "shard_id": ...,
                                  "kind": "ShardTimeout"|<exception name>,
                                  "message": ...}

A worker connection dropping while it holds a lease counts as a crash:
the coordinator charges one attempt to that shard and requeues it
(until ``retries`` is exhausted), exactly like a broken process pool.
A ``result`` for a shard that already resolved (a duplicate from a
racing or resurrected worker) is acknowledged and discarded.

**Cache-aware scheduling.**  Pending shards are ordered longest-first
(the classic LPT heuristic) before dispatch: recorded wall-clock
durations from previous runs of the same cache directory
(:class:`~repro.campaign.cache.DurationBook`) when available, a
``piece_count x peers``-based estimate (:func:`estimate_shard_cost`)
for cold shards.  Scheduling affects only wall clock, never results —
the manifest fingerprint is order-independent by construction.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import subprocess
import sys
import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.cache import DurationBook
from repro.campaign.runner import (
    ShardTimeout,
    _run_guarded,
    resolve_scenario,
    run_shard_payload,
)
from repro.campaign.spec import ShardSpec

PROTOCOL_VERSION = 1

#: Upper bound on a single frame; a length prefix beyond this reads as
#: protocol corruption, not a huge record.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Rough calibration of the cold-shard cost estimate: piece-peer units
#: executed per wall-clock second on the bench host.  Only the *ratios*
#: matter (the scheduler sorts), the absolute scale just keeps the
#: estimates in the same ballpark as recorded wall-seconds.
_COST_UNITS_PER_SECOND = 50_000.0

#: Reference duration the cost estimate is normalised against (the
#: Table-I default run length).
_REFERENCE_DURATION = 3000.0


class FrameError(Exception):
    """A malformed, truncated or oversized protocol frame."""


class WorkerCrashed(Exception):
    """A worker connection died while it held a shard lease."""


class RemoteShardError(Exception):
    """A shard failed inside a remote worker; carries the remote text."""


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, message: dict) -> None:
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(struct.pack(">I", len(data)) + data)


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """Exactly *size* bytes, None on clean EOF at a frame boundary."""
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == size:
                return None
            raise FrameError(
                "connection closed mid-frame (%d of %d bytes)"
                % (size - remaining, size)
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """One frame, or None when the peer closed between frames."""
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise FrameError("frame length %d exceeds %d" % (length, MAX_FRAME_BYTES))
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("connection closed before frame body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise FrameError("undecodable frame: %s" % error)
    if not isinstance(message, dict) or "type" not in message:
        raise FrameError("frame is not a typed object")
    return message


# ---------------------------------------------------------------------------
# Cache-aware scheduling
# ---------------------------------------------------------------------------

def estimate_shard_cost(shard: ShardSpec) -> float:
    """Cold-shard cost estimate in pseudo-seconds.

    ``piece_count x peers`` of the fully resolved scenario, scaled by
    the simulated duration: the dominant work term is piece-selection
    probes across the peer set over the run window.  Used only when no
    recorded duration exists for the shard's id.
    """
    scenario = resolve_scenario(shard)
    peers = scenario.seeds + scenario.leechers + 1
    duration_scale = scenario.duration / _REFERENCE_DURATION
    return scenario.num_pieces * peers * duration_scale / _COST_UNITS_PER_SECOND


def shard_cost(shard: ShardSpec, durations: Optional[DurationBook]) -> float:
    """Scheduling cost: recorded wall seconds, else the cold estimate."""
    if durations is not None:
        recorded = durations.get(shard.shard_id)
        if recorded is not None:
            return recorded
    return estimate_shard_cost(shard)


def schedule_shards(
    shards: List[ShardSpec], durations: Optional[DurationBook] = None
) -> List[ShardSpec]:
    """Longest-shard-first order (stable tiebreak on shard id).

    LPT scheduling: the most expensive shards dispatch first so the
    tail of the campaign is short shards filling idle workers, not one
    giant shard everyone waits on.  Pure reordering — results and the
    manifest fingerprint are scheduling-independent by construction.
    """
    return sorted(
        shards,
        key=lambda shard: (-shard_cost(shard, durations), shard.shard_id),
    )


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

def parse_backend_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """``"name"`` or ``"name:key=value,key=value"`` -> (name, options)."""
    name, _, tail = spec.partition(":")
    name = name.strip()
    if name not in BACKENDS:
        raise ValueError(
            "unknown dispatch backend %r (have: %s)"
            % (name, ", ".join(sorted(BACKENDS)))
        )
    options: Dict[str, str] = {}
    if tail:
        for part in tail.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError("backend option %r is not key=value" % part)
            key, value = part.split("=", 1)
            options[key.strip()] = value.strip()
    return name, options


def resolve_backend(
    spec: str,
    workers: int,
    executor: Callable[[dict], dict] = run_shard_payload,
    progress: Optional[Callable[[str], None]] = None,
):
    """Build a backend instance from its spec string."""
    name, options = parse_backend_spec(spec)
    if name == "local":
        return LocalBackend(workers=workers, executor=executor)
    host = options.get("host", "127.0.0.1")
    port = int(options.get("port", "0"))
    spawn = int(options.get("spawn", str(workers)))
    return WorkerPoolBackend(
        workers=spawn, host=host, port=port, progress=progress
    )


# ---------------------------------------------------------------------------
# Local backend (inline / process pool) — PR-4 semantics, relocated
# ---------------------------------------------------------------------------

class LocalBackend:
    """Inline execution at ``workers=1``, a process pool above that."""

    name = "local"

    def __init__(
        self,
        workers: int = 1,
        executor: Callable[[dict], dict] = run_shard_payload,
    ) -> None:
        self.workers = max(1, workers)
        self.executor = executor

    def execute(self, pending: List, resolve, absorb_error) -> None:
        if self.workers == 1:
            self._run_inline(pending, resolve, absorb_error)
        else:
            self._run_pool(pending, resolve, absorb_error)

    def _run_inline(self, pending: List, resolve, absorb_error) -> None:
        """Serial execution in-process — same guard, same bookkeeping."""
        for item in pending:
            while True:
                try:
                    record = _run_guarded(self.executor, dict(item.payload))
                except Exception as error:
                    if absorb_error(item, error):
                        break
                else:
                    resolve(item, record)
                    break

    def _run_pool(self, pending: List, resolve, absorb_error) -> None:
        """Parallel execution; rebuilds the pool after a worker crash."""
        remaining = list(pending)
        resolved_ids = set()

        def done(item):
            resolved_ids.add(item.shard.shard_id)

        while remaining:
            pool = ProcessPoolExecutor(max_workers=self.workers)
            try:
                futures = {
                    pool.submit(_run_guarded, self.executor, dict(item.payload)): item
                    for item in remaining
                }
            except BrokenProcessPool as error:
                # A worker died during submission: charge the first
                # still-unresolved shard (it surfaced the crash) and
                # rebuild — same semantics as a crash mid-round.
                pool.shutdown(wait=False, cancel_futures=True)
                if absorb_error(remaining[0], error):
                    done(remaining[0])
                remaining = [
                    item
                    for item in remaining
                    if item.shard.shard_id not in resolved_ids
                ]
                continue
            try:
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    crashed = []
                    for future in finished:
                        item = futures[future]
                        try:
                            record = future.result()
                        except BrokenProcessPool as error:
                            crashed.append((item, error))
                        except Exception as error:
                            if absorb_error(item, error):
                                done(item)
                        else:
                            resolve(item, record)
                            done(item)
                    if crashed:
                        # The pool is poisoned: charge one attempt to the
                        # shard that surfaced the crash, abandon the rest
                        # of this round (their futures are already dead)
                        # and rebuild.  Shards that finished before the
                        # crash keep their results.
                        if absorb_error(crashed[0][0], crashed[0][1]):
                            done(crashed[0][0])
                        break
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            remaining = [
                item
                for item in remaining
                if item.shard.shard_id not in resolved_ids
            ]


# ---------------------------------------------------------------------------
# Worker-pool backend (socket work queue)
# ---------------------------------------------------------------------------

class WorkerPoolBackend:
    """Coordinator for ``repro campaign worker`` processes over TCP.

    ``workers`` is how many local worker processes to spawn; ``0``
    means spawn none and wait for externally started workers (e.g. on
    other hosts, connecting through SSH port-forwards).  The bound
    address is published on :attr:`address` once :attr:`started` is
    set, so external tooling (and the tests) can connect before any
    spawned worker does.
    """

    name = "worker-pool"

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        progress: Optional[Callable[[str], None]] = None,
        python: Optional[str] = None,
    ) -> None:
        self.workers = max(0, workers)
        self.host = host
        self.port = port
        self.progress = progress or (lambda message: None)
        self.python = python or sys.executable
        self.started = threading.Event()
        self.address: Optional[Tuple[str, int]] = None
        self.duplicate_results = 0
        self._respawns = 0

    # -- coordinator -------------------------------------------------------

    def execute(self, pending: List, resolve, absorb_error) -> None:
        lock = threading.Lock()
        cond = threading.Condition(lock)
        queue = deque(pending)
        unfinished = {item.shard.shard_id for item in pending}
        stopping = False

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self.address = listener.getsockname()[:2]
        self.started.set()
        self.progress(
            "worker-pool listening on %s:%d" % (self.address[0], self.address[1])
        )

        def finish(item, outcome) -> None:
            """Run one resolve/absorb outcome under the lock."""
            kind, value = outcome
            if item.shard.shard_id not in unfinished:
                self.duplicate_results += 1
                return
            if kind == "record":
                resolve(item, value)
                unfinished.discard(item.shard.shard_id)
            else:
                if absorb_error(item, value):
                    unfinished.discard(item.shard.shard_id)
                else:
                    queue.append(item)
            cond.notify_all()

        def handle(conn: socket.socket, peer) -> None:
            worker_name = "%s:%d" % peer[:2]
            try:
                conn.settimeout(30.0)
                hello = recv_frame(conn)
                if hello is None or hello.get("type") != "hello":
                    return
                if hello.get("protocol") != PROTOCOL_VERSION:
                    send_frame(conn, {"type": "shutdown"})
                    return
                worker_name = str(hello.get("worker", worker_name))
                # Shard execution is open-ended: no read timeout past
                # the handshake (overruns are the worker's SIGALRM job).
                conn.settimeout(None)
                while True:
                    with cond:
                        while not queue and unfinished and not stopping:
                            cond.wait(0.25)
                        if not unfinished or stopping:
                            break
                        item = queue.popleft()
                    try:
                        send_frame(
                            conn,
                            {
                                "type": "work",
                                "shard_id": item.shard.shard_id,
                                "payload": item.payload,
                            },
                        )
                        reply = recv_frame(conn)
                        # Discard stale frames (e.g. a worker re-sending
                        # a result it already delivered): a duplicate
                        # must never be attributed to the current lease.
                        while (
                            reply is not None
                            and reply.get("type") in ("result", "error")
                            and reply.get("shard_id") != item.shard.shard_id
                        ):
                            self.duplicate_results += 1
                            reply = recv_frame(conn)
                    except (OSError, FrameError) as error:
                        with cond:
                            finish(
                                item,
                                (
                                    "error",
                                    WorkerCrashed(
                                        "worker %s died holding %s (%s)"
                                        % (worker_name, item.shard.shard_id, error)
                                    ),
                                ),
                            )
                        return
                    if reply is None:
                        with cond:
                            finish(
                                item,
                                (
                                    "error",
                                    WorkerCrashed(
                                        "worker %s disconnected holding %s"
                                        % (worker_name, item.shard.shard_id)
                                    ),
                                ),
                            )
                        return
                    with cond:
                        if reply.get("type") == "result":
                            finish(item, ("record", reply["record"]))
                        elif reply.get("type") == "error":
                            if reply.get("kind") == "ShardTimeout":
                                error = ShardTimeout(
                                    reply.get("message", "remote shard timeout")
                                )
                            else:
                                error = RemoteShardError(
                                    "%s: %s"
                                    % (
                                        reply.get("kind", "Error"),
                                        reply.get("message", ""),
                                    )
                                )
                            finish(item, ("error", error))
                        else:
                            finish(
                                item,
                                (
                                    "error",
                                    WorkerCrashed(
                                        "worker %s sent unexpected frame %r"
                                        % (worker_name, reply.get("type"))
                                    ),
                                ),
                            )
                            return
                try:
                    send_frame(conn, {"type": "shutdown"})
                except OSError:
                    pass
            except (OSError, FrameError, socket.timeout):
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

        def accept_loop() -> None:
            while True:
                try:
                    conn, peer = listener.accept()
                except OSError:
                    return
                thread = threading.Thread(
                    target=handle, args=(conn, peer), daemon=True
                )
                thread.start()

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()

        spawned: List[subprocess.Popen] = []
        # Crash-retry bookkeeping bounds the respawn loop (a shard that
        # kills every worker eventually exhausts its retries and
        # resolves as failed); this cap is a last-ditch guard against a
        # worker that cannot even start (e.g. import error).
        respawn_budget = self.workers + len(pending) * 2
        try:
            for _ in range(self.workers):
                spawned.append(self._spawn_worker())
            with cond:
                while unfinished:
                    cond.wait(0.25)
                    if not self.workers:
                        continue
                    live = [proc for proc in spawned if proc.poll() is None]
                    if len(live) < self.workers:
                        for _ in range(self.workers - len(live)):
                            if self._respawns >= respawn_budget:
                                break
                            self._respawns += 1
                            live.append(self._spawn_worker())
                        spawned = live
                stopping = True
                cond.notify_all()
        finally:
            try:
                listener.close()
            except OSError:
                pass
            for proc in spawned:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    def _spawn_worker(self) -> subprocess.Popen:
        assert self.address is not None
        env = dict(os.environ)
        import repro

        src_dir = str(os.path.dirname(os.path.dirname(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (src_dir, env.get("PYTHONPATH"))
            if part
        )
        return subprocess.Popen(
            [
                self.python,
                "-m",
                "repro",
                "campaign",
                "worker",
                "--connect",
                "%s:%d" % (self.address[0], self.address[1]),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )


BACKENDS = ("local", "worker-pool")
