"""Incremental campaign execution: diff a spec against the cache.

A campaign's cache is content-addressed — a shard's key covers its
fully resolved spec plus the code-relevant versions — so "what would a
re-run actually execute?" is a pure function of the spec and the cache
directory.  :func:`diff_spec` answers it exactly, shard by shard, and
explains *why* each invalidated shard lost its entry:

* ``cached`` — the key has a complete entry; a run serves it for free.
* ``new`` — the shard id has never run into this cache (a torrent,
  scenario or replicate the spec just grew).
* ``changed`` — the shard id ran before under a *different* key; the
  report names the exact coordinates that moved (``duration: 240.0 ->
  120.0``), read by comparing the old cached record's payload against
  the new shard's.  A key change with *no* payload diff is a
  code/version invalidation (cache schema, trace schema or package
  version bump).
* ``evicted`` — the previous run used this *same* key but the entry is
  gone (interrupted commit, manual cleanup): pure re-execution, no
  spec change.

``repro campaign diff`` renders the report and exits non-zero when
work is pending (so scripts can gate on "is this spec fully cached?"),
and ``repro campaign run --incremental`` prints it before executing —
the executed-shard set is pinned to equal the invalidated set by the
property tests in ``tests/test_campaign_dispatch.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.campaign.cache import ShardCache, shard_cache_key
from repro.campaign.runner import MANIFEST_NAME
from repro.campaign.spec import PAYLOAD_FIELDS, CampaignSpec, expand_spec

#: Delta states in severity order (render order).
DELTA_STATES = ("new", "changed", "evicted", "cached")


@dataclass
class ShardDelta:
    """One shard's fate under the spec-vs-cache diff."""

    shard_id: str
    key: str
    state: str
    reason: str = ""
    changed_fields: List[Tuple[str, object, object]] = field(default_factory=list)

    @property
    def invalidated(self) -> bool:
        return self.state != "cached"


@dataclass
class InvalidationReport:
    """The exact work a run of this spec would (re-)execute."""

    campaign: str
    deltas: List[ShardDelta]
    removed: List[str]
    """Shard ids present in the previous manifest but no longer in the
    spec's expansion (shrunk torrent set, dropped scenario, ...) — no
    work, but worth surfacing: their cache entries are now garbage."""

    @property
    def cached(self) -> List[ShardDelta]:
        return [d for d in self.deltas if d.state == "cached"]

    @property
    def invalidated(self) -> List[ShardDelta]:
        return [d for d in self.deltas if d.invalidated]

    def counts(self) -> dict:
        out = {state: 0 for state in DELTA_STATES}
        for delta in self.deltas:
            out[delta.state] += 1
        out["shards"] = len(self.deltas)
        out["invalidated"] = len(self.invalidated)
        out["removed"] = len(self.removed)
        return out

    def render(self) -> str:
        from repro.reporting import ascii_table

        rows = []
        order = {state: rank for rank, state in enumerate(DELTA_STATES)}
        for delta in sorted(
            self.deltas, key=lambda d: (order[d.state], d.shard_id)
        ):
            rows.append(
                [delta.shard_id, delta.state, delta.reason or "-",
                 delta.key[:12]]
            )
        for shard_id in self.removed:
            rows.append([shard_id, "removed", "no longer in the spec", "-"])
        counts = self.counts()
        summary = (
            "%(shards)d shards: %(cached)d cached, %(invalidated)d invalidated "
            "(%(new)d new, %(changed)d changed, %(evicted)d evicted), "
            "%(removed)d removed" % counts
        )
        return (
            ascii_table(["shard", "state", "why", "key"], rows)
            + "\n" + summary + "\n"
        )


def _field_diff(old_payload: dict, new_payload: dict) -> List[Tuple[str, object, object]]:
    """Which payload coordinates moved between two shard payloads."""
    changes = []
    for name in PAYLOAD_FIELDS:
        old = old_payload.get(name)
        new = new_payload.get(name)
        if name == "depart_on_completion":
            old, new = bool(old), bool(new)
        if old != new:
            changes.append((name, old, new))
    return changes


def _describe_changes(changes: List[Tuple[str, object, object]]) -> str:
    return ", ".join(
        "%s: %r -> %r" % (name, old, new) for name, old, new in changes
    )


def load_manifest(cache_root) -> Optional[dict]:
    """The previous run's manifest under *cache_root*, or None."""
    try:
        return json.loads((Path(cache_root) / MANIFEST_NAME).read_text())
    except (OSError, ValueError):
        return None


def diff_spec(
    spec: CampaignSpec,
    cache_dir,
    shard_filter: Optional[str] = None,
) -> InvalidationReport:
    """Diff *spec* against the cache directory; nothing is executed."""
    cache = ShardCache(cache_dir)
    manifest = load_manifest(cache.root)
    previous = {}
    if manifest is not None:
        previous = {
            entry["shard_id"]: entry for entry in manifest.get("shards", [])
        }

    shards = expand_spec(spec, shard_filter=shard_filter)
    deltas: List[ShardDelta] = []
    for shard in shards:
        key = shard_cache_key(shard)
        if cache.load(key) is not None:
            deltas.append(ShardDelta(shard.shard_id, key, "cached"))
            continue
        old_entry = previous.get(shard.shard_id)
        if old_entry is None:
            deltas.append(
                ShardDelta(
                    shard.shard_id, key, "new",
                    reason="never ran into this cache",
                )
            )
            continue
        if old_entry.get("key") == key:
            deltas.append(
                ShardDelta(
                    shard.shard_id, key, "evicted",
                    reason="same key, cache entry lost",
                )
            )
            continue
        # The shard ran before under another key: the old record (still
        # cached under the *old* key unless cleaned) carries the full
        # old payload, so the diff can name the moved coordinates.
        old_record = cache.load(old_entry["key"])
        if old_record is None:
            deltas.append(
                ShardDelta(
                    shard.shard_id, key, "changed",
                    reason="spec changed (previous record unavailable)",
                )
            )
            continue
        changes = _field_diff(old_record, shard.as_payload())
        if changes:
            reason = _describe_changes(changes)
        else:
            reason = "code/version change (cache key schema)"
        deltas.append(
            ShardDelta(
                shard.shard_id, key, "changed",
                reason=reason, changed_fields=changes,
            )
        )

    current_ids = {shard.shard_id for shard in shards}
    removed = sorted(
        shard_id for shard_id in previous if shard_id not in current_ids
    )
    return InvalidationReport(
        campaign=spec.name, deltas=deltas, removed=removed
    )
