"""Multi-process campaign execution.

:func:`execute_shard` runs one fully resolved :class:`ShardSpec` —
live, or served from the content-addressed cache — and is the single
code path behind every consumer: the benchmark helpers run it inline,
the :class:`CampaignRunner` ships it to worker processes, and a cache
hit replays the stored trace into the exact live ``Instrumentation``.

:class:`CampaignRunner` expands a :class:`CampaignSpec` into shards,
orders the ones the cache cannot answer longest-first (recorded
durations when known, a ``piece_count x peers`` estimate for cold
shards) and executes them through a pluggable *dispatch backend*
(:mod:`repro.campaign.dispatch`): ``local`` — inline or a
``ProcessPoolExecutor`` — or ``worker-pool`` — N ``repro campaign
worker`` processes pulling shards over a socket work queue, on this
host or others.  Semantics are backend-independent:

* **RNG hygiene** — every worker re-seeds both the global ``random``
  module and the simulation (via the shard's derived seed) before
  touching a shard; nothing is inherited from the parent process, so a
  1-worker and a 64-worker campaign produce byte-identical traces.
* **Per-shard timeout** — enforced *inside* the worker with an interval
  timer (``SIGALRM``), so a wedged shard kills itself instead of the
  campaign; timeouts are deterministic, so they are recorded, not
  retried.
* **Bounded retry on crash** — a worker dying abruptly (a broken
  process pool, a dropped worker-pool connection) charges one attempt
  to the shard that surfaced the crash and leaves the rest unharmed,
  until each shard either completes or exhausts ``retries``.
* **Structured failure records** — a failed/timed-out shard becomes a
  manifest entry (status, attempts, error strings) and the campaign
  carries on; it never aborts the other shards.

The run ends with a ``manifest.json`` in the cache directory: one entry
per shard (status, duration, cache hit/miss, trace fingerprint) plus a
:func:`manifest_fingerprint` over the order-independent, scheduling-
independent fields — two campaigns agree on that fingerprint iff they
computed the same results.
"""

from __future__ import annotations

import json
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.cache import DurationBook, ShardCache, shard_cache_key
from repro.campaign.spec import CampaignSpec, ShardSpec, expand_spec
from repro.instrumentation import Instrumentation, TraceRecorder
from repro.instrumentation.replay import replay_instrumentation
from repro.workloads import build_experiment, scaled_copy, scenario_by_id

#: XOR salt for the *global* ``random`` re-seed, so the hygiene seed and
#: the simulation seed are distinct streams even though both derive from
#: the shard seed.
_RESEED_SALT = 0x5EED5A17

MANIFEST_SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"


class ShardTimeout(Exception):
    """A shard overran its per-shard wall-clock budget (worker-side)."""


def _alarm(signum, frame):  # pragma: no cover - fires only on overrun
    raise ShardTimeout("shard exceeded its timeout")


def resolve_scenario(shard: ShardSpec):
    """The Table-I scenario with the shard's overrides applied."""
    scenario = scenario_by_id(shard.torrent_id)
    overrides = {}
    if shard.duration is not None:
        overrides["duration"] = shard.duration
    if shard.arrival_rate is not None:
        overrides["arrival_rate"] = shard.arrival_rate
    if shard.seed_upload is not None:
        overrides["initial_seed_upload"] = shard.seed_upload
    if shard.num_pieces is not None:
        overrides["num_pieces"] = shard.num_pieces
    if shard.piece_size is not None:
        overrides["piece_size"] = shard.piece_size
    if overrides:
        scenario = scaled_copy(scenario, **overrides)
    return scenario


def execute_shard(
    shard: ShardSpec,
    cache: Optional[ShardCache] = None,
    resume: bool = True,
    want_instrumentation: bool = False,
) -> Tuple[dict, Optional[Instrumentation]]:
    """Run one shard; returns ``(record, instrumentation-or-None)``.

    With a cache and ``resume``, a complete entry is returned without
    simulating; ``want_instrumentation`` then rebuilds the exact live
    ``Instrumentation`` by replaying the cached trace.  A live run
    always records a structured trace (in-memory when there is no
    cache), so every record carries a ``trace_fingerprint`` — the
    determinism witness the manifest is fingerprinted over.
    """
    key = shard_cache_key(shard)
    if cache is not None and resume:
        cached = cache.load(key)
        if cached is not None:
            record = dict(cached)
            record["cache_hit"] = True
            instrumentation = (
                replay_instrumentation(str(cache.trace_path(key)))
                if want_instrumentation
                else None
            )
            return record, instrumentation

    # Per-shard RNG hygiene: the global random module is re-seeded from
    # the shard (never inherited from the parent process), and the
    # simulation draws only from Random(shard.seed)-derived streams.
    random.seed(shard.seed ^ _RESEED_SALT)

    scenario = resolve_scenario(shard)
    swarm_config = None
    if shard.faults is not None:
        from repro.sim.config import SwarmConfig
        from repro.sim.faults import FAULT_PRESETS

        swarm_config = SwarmConfig(
            seed=shard.seed,
            duration=scenario.duration,
            faults=FAULT_PRESETS[shard.faults],
        )

    # Piece-selection / streaming overrides.  A shard without them calls
    # build_experiment with the exact historical arguments, so baseline
    # traces (and their fingerprints) are unchanged.
    strategy_kwargs: Dict = {}
    if shard.selector is not None:
        from repro.core.rarest_first import make_selector

        spec = shard.selector
        strategy_kwargs["local_selector"] = make_selector(spec)
        strategy_kwargs["population_selector_factory"] = (
            lambda: make_selector(spec)
        )
    if shard.playback_rate is not None:
        strategy_kwargs["playback_rate"] = shard.playback_rate
        strategy_kwargs["playback_startup_pieces"] = (
            shard.playback_startup_pieces
        )
    if shard.depart_on_completion:
        strategy_kwargs["depart_on_completion"] = True
    if shard.flash_crowd_size is not None:
        strategy_kwargs["flash_crowd_size"] = shard.flash_crowd_size
    if shard.stability_interval is not None:
        strategy_kwargs["stability_interval"] = shard.stability_interval
    if shard.tracker_sampler is not None:
        strategy_kwargs["tracker_sampler"] = shard.tracker_sampler

    trace_tmp = cache.trace_tmp_path(key) if cache is not None else None
    recorder = TraceRecorder(str(trace_tmp) if trace_tmp is not None else None)
    started = time.perf_counter()
    try:
        harness = build_experiment(
            scenario,
            seed=shard.seed,
            block_size=shard.block_size,
            swarm_config=swarm_config,
            trace_recorder=recorder,
            **strategy_kwargs,
        )
        instrumentation = harness.run()
    except BaseException:
        # Never leave half-written tmp traces behind a crash/timeout.
        recorder.close()
        if trace_tmp is not None:
            try:
                trace_tmp.unlink()
            except OSError:
                pass
        raise
    fingerprint = recorder.close()
    wall = time.perf_counter() - started
    seeds, leechers = harness.swarm.seeds_and_leechers()
    record = {
        "key": key,
        "shard_id": shard.shard_id,
        "status": "ok",
        "cache_hit": False,
        "wall_seconds": round(wall, 4),
        "trace_fingerprint": fingerprint,
        "trace_events": recorder.events_emitted,
        "summary": {
            "first_full_copy_at": harness.swarm.result.first_full_copy_at,
            "final_seeds": seeds,
            "final_leechers": leechers,
            "local_completed_at": instrumentation.seed_state_at,
            "mean_download_time": harness.swarm.result.mean_download_time(),
            "local_address": harness.local_peer.address,
            "trace_fingerprint": fingerprint,
        },
    }
    if shard.playback_rate is not None and instrumentation.playback_events:
        from repro.analysis.streaming import playback_summary

        playback = playback_summary(instrumentation)
        record["summary"]["playback"] = {
            "startup_delay": playback.startup_delay,
            "rebuffer_count": playback.rebuffer_count,
            "rebuffer_seconds": playback.rebuffer_seconds,
            "stalled_at_end": playback.stalled_at_end,
            "finished_at": playback.finished_at,
            "in_order_pieces": playback.in_order_pieces,
        }
    if harness.stability is not None and harness.stability.verdict is not None:
        record["summary"]["stability"] = harness.stability.verdict.as_dict()
    record.update(shard.as_payload())
    if cache is not None:
        cache.store(key, record, trace_tmp=trace_tmp)
    return record, (instrumentation if want_instrumentation else None)


def run_shard_payload(payload: dict) -> dict:
    """Worker-process entry point: rebuild the shard and execute it.

    ``payload["resume"]`` (default False) lets the shard be served from
    the cache: the worker-pool backend sets it so a worker handed a
    shard that a racing (or crash-recovered) worker already committed
    returns the cached record instead of recomputing — the cache is the
    coordination point, and duplicate completion is idempotent.  The
    local pool leaves it off; the runner already filtered cached shards
    before dispatch, so a local worker never sees a warm one.
    """
    shard = ShardSpec.from_payload(payload)
    cache = (
        ShardCache(payload["cache_root"]) if payload.get("cache_root") else None
    )
    record, __ = execute_shard(
        shard, cache=cache, resume=bool(payload.get("resume"))
    )
    return record


def _run_guarded(executor_fn: Callable[[dict], dict], payload: dict) -> dict:
    """What actually runs in the worker: re-seed, arm the timeout, go.

    Also used verbatim for ``workers=1`` inline execution and by the
    worker-pool workers, so every dispatch path shares every semantic
    (including the timeout).  The interval timer only arms in a main
    thread (signals are process-wide): in-process helper threads — the
    dispatch tests run workers that way — execute unarmed.
    """
    random.seed(payload["seed"] ^ _RESEED_SALT)
    timeout = payload.get("timeout")
    armed = (
        timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if armed:
        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return executor_fn(payload)
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


@dataclass
class _PendingShard:
    shard: ShardSpec
    key: str
    payload: dict
    attempts: int = 0
    errors: List[str] = field(default_factory=list)


@dataclass
class CampaignResult:
    """Everything a campaign run produced, manifest included."""

    spec: CampaignSpec
    manifest: dict
    records: Dict[str, dict]
    cache_dir: Optional[Path]

    @property
    def counts(self) -> dict:
        return self.manifest["counts"]

    @property
    def fingerprint(self) -> str:
        return self.manifest["manifest_fingerprint"]

    def failed_shards(self) -> List[dict]:
        return [
            entry
            for entry in self.manifest["shards"]
            if entry["status"] != "ok"
        ]


def manifest_fingerprint(shard_entries: List[dict]) -> str:
    """Digest over the scheduling-independent facts of a campaign.

    Covers what was computed (shard identity, content key, seed, status,
    trace fingerprint) and nothing about how (wall-clock, attempts,
    cache hits, worker count) — so a 1-worker fresh run, a 4-worker
    fresh run and a fully cached re-run all agree.
    """
    import hashlib

    stable = sorted(
        (
            entry["shard_id"],
            entry["key"],
            entry["seed"],
            entry["status"],
            entry.get("trace_fingerprint"),
        )
        for entry in shard_entries
    )
    canonical = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CampaignRunner:
    """Execute a campaign spec through a dispatch backend, cache-first."""

    def __init__(
        self,
        spec: CampaignSpec,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        executor: Callable[[dict], dict] = run_shard_payload,
        progress: Optional[Callable[[str], None]] = None,
        backend: str = "local",
        dispatch_backend=None,
    ) -> None:
        self.spec = spec
        self.cache = ShardCache(cache_dir) if cache_dir is not None else None
        self.workers = max(1, workers)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.executor = executor
        self.progress = progress or (lambda message: None)
        self.backend_spec = backend
        self._backend = dispatch_backend
        """A pre-built backend instance (tests inject in-process worker
        pools this way); None builds one from ``backend_spec``."""

    def _resolve_dispatch(self):
        if self._backend is not None:
            return self._backend
        from repro.campaign.dispatch import resolve_backend

        return resolve_backend(
            self.backend_spec,
            workers=self.workers,
            executor=self.executor,
            progress=self.progress,
        )

    # -- execution ---------------------------------------------------------

    def run(
        self, resume: bool = True, shard_filter: Optional[str] = None
    ) -> CampaignResult:
        from repro.campaign.dispatch import schedule_shards

        shards = expand_spec(self.spec, shard_filter=shard_filter)
        records: Dict[str, dict] = {}
        by_id = {}
        durations = DurationBook(
            self.cache.root if self.cache is not None else None
        )
        remote = self.backend_spec.partition(":")[0] != "local"
        for shard in shards:
            key = shard_cache_key(shard)
            if self.cache is not None and resume:
                cached = self.cache.load(key)
                if cached is not None:
                    record = dict(cached)
                    record["cache_hit"] = True
                    records[shard.shard_id] = record
                    self.progress("cached   %s" % shard.shard_id)
                    continue
            payload = shard.as_payload()
            payload["timeout"] = self.timeout
            if self.cache is not None:
                payload["cache_root"] = str(self.cache.root)
            if remote:
                # Worker-pool duplicates coordinate through the cache.
                payload["resume"] = True
            by_id[shard.shard_id] = _PendingShard(
                shard=shard, key=key, payload=payload
            )

        # Cache-aware scheduling: longest shard first, by recorded
        # duration when this cache has seen the shard before, by the
        # piece_count x peers estimate when cold.  Pure reordering —
        # the manifest fingerprint is scheduling-order-independent.
        pending = [
            by_id[shard.shard_id]
            for shard in schedule_shards(
                [item.shard for item in by_id.values()], durations
            )
        ]

        executed = len(pending)
        if pending:
            dispatch = self._resolve_dispatch()

            def on_success(item: _PendingShard, record: dict) -> None:
                item.attempts += 1
                self._resolve(item, record, records)
                if record.get("wall_seconds") and not record.get("cache_hit"):
                    durations.record(item.shard.shard_id, record["wall_seconds"])

            def on_error(item: _PendingShard, error: BaseException) -> bool:
                return self._absorb_error(item, error, records)

            dispatch.execute(pending, on_success, on_error)
            durations.save()

        manifest = self._build_manifest(shards, records, executed)
        if self.cache is not None:
            manifest_path = self.cache.root / MANIFEST_NAME
            manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        return CampaignResult(
            spec=self.spec,
            manifest=manifest,
            records=records,
            cache_dir=self.cache.root if self.cache is not None else None,
        )

    def _resolve(self, pending: _PendingShard, record: dict, records: dict) -> None:
        record.setdefault("shard_id", pending.shard.shard_id)
        record.setdefault("key", pending.key)
        record.update(
            {k: v for k, v in pending.shard.as_payload().items() if k not in record}
        )
        record["attempts"] = pending.attempts
        records[pending.shard.shard_id] = record
        self.progress(
            "%-8s %s (attempt %d)"
            % (record["status"], pending.shard.shard_id, pending.attempts)
        )

    def _failure_record(self, pending: _PendingShard, status: str) -> dict:
        return {
            "status": status,
            "cache_hit": False,
            "errors": list(pending.errors),
            "trace_fingerprint": None,
        }

    def _absorb_error(
        self, pending: _PendingShard, error: BaseException, records: dict
    ) -> bool:
        """Charge one attempt; resolve to a failure record when spent.

        Returns True when the shard is finished (gave up), False when it
        should be retried.
        """
        pending.attempts += 1
        pending.errors.append("%s: %s" % (type(error).__name__, error))
        if isinstance(error, ShardTimeout):
            # Deterministic overrun: retrying would time out again.
            self._resolve(pending, self._failure_record(pending, "timeout"), records)
            return True
        if pending.attempts > self.retries:
            self._resolve(pending, self._failure_record(pending, "failed"), records)
            return True
        return False

    # -- manifest ----------------------------------------------------------

    def _build_manifest(
        self, shards: List[ShardSpec], records: Dict[str, dict], executed: int
    ) -> dict:
        entries = []
        for shard in shards:
            record = records.get(shard.shard_id)
            if record is None:  # pragma: no cover - defensive
                record = {
                    "shard_id": shard.shard_id,
                    "key": shard_cache_key(shard),
                    "status": "missing",
                    "cache_hit": False,
                }
                record.update(shard.as_payload())
            entry = {
                "shard_id": record["shard_id"],
                "key": record["key"],
                "torrent_id": record.get("torrent_id"),
                "scenario": record.get("scenario"),
                "replicate": record.get("replicate"),
                "seed": record.get("seed"),
                "status": record["status"],
                "cache_hit": bool(record.get("cache_hit")),
                "attempts": record.get("attempts", 0),
                "wall_seconds": record.get("wall_seconds"),
                "trace_fingerprint": record.get("trace_fingerprint"),
            }
            if record.get("errors"):
                entry["errors"] = record["errors"]
            entries.append(entry)
        entries.sort(key=lambda entry: entry["shard_id"])
        counts = {
            "shards": len(entries),
            "ok": sum(1 for e in entries if e["status"] == "ok"),
            "failed": sum(1 for e in entries if e["status"] == "failed"),
            "timeout": sum(1 for e in entries if e["status"] == "timeout"),
            "cache_hits": sum(1 for e in entries if e["cache_hit"]),
            "executed": executed,
        }
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "campaign": self.spec.describe(),
            "workers": self.workers,
            "backend": self.backend_spec,
            "counts": counts,
            "shards": entries,
            "manifest_fingerprint": manifest_fingerprint(entries),
        }
