"""Declarative experiment-campaign specifications.

A *campaign* is the cross product ``torrent ids x scenarios x
replicates`` — the paper's evaluation is the default campaign: all 26
Table-I torrents, the ``paper`` scenario, one replicate.  A campaign
expands into independent :class:`ShardSpec` run shards, each carrying
everything a worker process needs to execute it: the resolved RNG seed,
the scenario overrides (duration, block size, fault preset) and a
stable identity (:attr:`ShardSpec.shard_id`).

**Seed derivation.**  Each shard's RNG seed is a pure function of
``(campaign_seed, torrent_id, scenario, replicate)``
(:func:`derive_shard_seed`), so results are byte-identical regardless
of worker count, scheduling order, or which shards were served from
cache.  Replicate 0 of the default ``paper`` scenario reproduces the
historical per-torrent stream ``campaign_seed + 37 * torrent_id`` that
the figure benchmarks have always used (see ``benchmarks/_shared.py``),
keeping the recorded EXPERIMENTS.md shapes and any cached results
valid; every other coordinate draws an independent stream from a stable
SHA-256 mix of the full tuple.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import List, Optional, Tuple

DEFAULT_CAMPAIGN_SEED = 3
DEFAULT_SCENARIO = "paper"
PAPER_TORRENT_IDS: Tuple[int, ...] = tuple(range(1, 27))

#: Every key that can appear in :meth:`ShardSpec.as_payload`, in payload
#: order.  The incremental differ (:mod:`repro.campaign.incremental`)
#: walks this list to explain *which* coordinate invalidated a cached
#: shard, so it must stay in lockstep with ``as_payload``.
PAYLOAD_FIELDS: Tuple[str, ...] = (
    "torrent_id",
    "scenario",
    "replicate",
    "seed",
    "duration",
    "block_size",
    "faults",
    "selector",
    "playback_rate",
    "playback_startup_pieces",
    "arrival_rate",
    "seed_upload",
    "num_pieces",
    "piece_size",
    "depart_on_completion",
    "flash_crowd_size",
    "stability_interval",
    "tracker_sampler",
)


@dataclass(frozen=True)
class ScenarioVariant:
    """A named transform applied on top of a Table-I scenario."""

    name: str
    duration: Optional[float] = None
    """Override the scenario's simulated run length (seconds)."""

    block_size: Optional[int] = None
    """Override the torrent's block size (bytes)."""

    faults: Optional[str] = None
    """Fault-injection preset name (``repro.sim.faults.FAULT_PRESETS``)."""

    selector: Optional[str] = None
    """Piece-selection strategy spec for every peer in the swarm
    (:func:`repro.core.rarest_first.make_selector` syntax, e.g.
    ``"seq-window:window=16"``).  None keeps the historical rarest-first
    default and leaves the shard's trace byte-identical to pre-selector
    campaigns."""

    playback_rate: Optional[float] = None
    """Streaming playback rate in bytes/second applied to the local peer
    and every population leecher; None disables the playback model."""

    playback_startup_pieces: Optional[int] = None
    """Startup-buffer threshold (contiguous pieces) for streaming runs."""

    arrival_rate: Optional[float] = None
    """Poisson leecher arrival rate (peers/s) override for the scenario."""

    seed_upload: Optional[float] = None
    """Initial-seed upload capacity (bytes/s) override."""

    num_pieces: Optional[int] = None
    """Piece-count override (shrinks the content for fast sweeps)."""

    piece_size: Optional[int] = None
    """Piece-size override (bytes)."""

    depart_on_completion: bool = False
    """Open-system mode: every population leecher leaves the instant it
    completes (see :mod:`repro.workloads.open_system`)."""

    flash_crowd_size: Optional[int] = None
    """Extra torrent-birth burst of that many leechers."""

    stability_interval: Optional[float] = None
    """Attach a swarm-stability detector sampling every that-many
    seconds; None (the default) attaches nothing and leaves traces
    byte-identical to pre-open-system campaigns."""

    tracker_sampler: Optional[str] = None
    """Tracker peer-sampling strategy spec
    (:func:`repro.tracker.sampling.make_sampler` syntax, e.g.
    ``"rarity-aware:bias=1.0"``).  None keeps the uniform default and
    the shard's historical trace."""


#: The scenario registry.  ``paper`` is the evaluation as published;
#: ``smoke`` is the same swarm on a short window (CI and tests);
#: the ``faults-*`` variants rerun the campaign under the PR-2 chaos
#: presets, the sweep related work asks for.  The ``streaming-*``
#: variants run the same swarm as an on-demand streaming workload (all
#: leechers play at 16 kB/s, under the 20 kB/s upload cap) and differ
#: only in the piece-selection strategy, so comparing them isolates the
#: selector's effect on startup delay and rebuffering.
STREAMING_PLAYBACK_RATE = 16.0 * 1024
SCENARIOS = {
    "paper": ScenarioVariant("paper"),
    "smoke": ScenarioVariant("smoke", duration=240.0),
    "faults-light": ScenarioVariant("faults-light", faults="light"),
    "faults-heavy": ScenarioVariant("faults-heavy", faults="heavy"),
    "streaming-rarest": ScenarioVariant(
        "streaming-rarest", playback_rate=STREAMING_PLAYBACK_RATE
    ),
    "streaming-seqwin": ScenarioVariant(
        "streaming-seqwin",
        selector="seq-window:window=16",
        playback_rate=STREAMING_PLAYBACK_RATE,
    ),
    "streaming-pfs": ScenarioVariant(
        "streaming-pfs",
        selector="pfs:urgency=0.95,rarity_bias=1.0",
        playback_rate=STREAMING_PLAYBACK_RATE,
    ),
    # Open-system flash crowds (departure on completion, a torrent-birth
    # burst, a stability detector sampling the swarm).  The two variants
    # differ only in the piece-selection policy, so a phase diagram over
    # (arrival_rate, seed_upload) x {flash-crowd, flash-crowd-suppress}
    # isolates mode suppression's effect on the stability boundary (see
    # repro.analysis.stability).
    "flash-crowd": ScenarioVariant(
        "flash-crowd",
        duration=1200.0,
        num_pieces=48,
        piece_size=64 * 1024,
        block_size=16 * 1024,
        depart_on_completion=True,
        flash_crowd_size=12,
        stability_interval=30.0,
    ),
    "flash-crowd-suppress": ScenarioVariant(
        "flash-crowd-suppress",
        duration=1200.0,
        num_pieces=48,
        piece_size=64 * 1024,
        block_size=16 * 1024,
        selector="mode-suppression:suppression=0.9",
        depart_on_completion=True,
        flash_crowd_size=12,
        stability_interval=30.0,
    ),
}


def derive_shard_seed(
    campaign_seed: int, torrent_id: int, scenario: str, replicate: int
) -> int:
    """Deterministic per-shard RNG seed.

    Replicate 0 of the default scenario preserves the historical
    ``seed + 37 * id`` stream (module docstring); other coordinates get
    an independent 64-bit stream from a stable hash of the tuple.
    """
    if scenario == DEFAULT_SCENARIO and replicate == 0:
        return campaign_seed + 37 * torrent_id
    payload = repr((campaign_seed, torrent_id, scenario, replicate)).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


@dataclass(frozen=True)
class ShardSpec:
    """One independent run of a campaign: a fully resolved experiment."""

    torrent_id: int
    scenario: str
    replicate: int
    seed: int
    duration: Optional[float] = None
    block_size: Optional[int] = None
    faults: Optional[str] = None
    selector: Optional[str] = None
    playback_rate: Optional[float] = None
    playback_startup_pieces: Optional[int] = None
    arrival_rate: Optional[float] = None
    seed_upload: Optional[float] = None
    num_pieces: Optional[int] = None
    piece_size: Optional[int] = None
    depart_on_completion: bool = False
    flash_crowd_size: Optional[int] = None
    stability_interval: Optional[float] = None
    tracker_sampler: Optional[str] = None

    @property
    def shard_id(self) -> str:
        return "t%02d-%s-r%d" % (self.torrent_id, self.scenario, self.replicate)

    def as_payload(self) -> dict:
        """A picklable/JSON-safe dict from which the shard can be rebuilt.

        The streaming/selector keys are only present when set: a shard
        that uses neither serialises exactly as it did before they
        existed, so cached results and cache keys of historical
        campaigns stay valid.
        """
        payload = {
            "torrent_id": self.torrent_id,
            "scenario": self.scenario,
            "replicate": self.replicate,
            "seed": self.seed,
            "duration": self.duration,
            "block_size": self.block_size,
            "faults": self.faults,
        }
        if self.selector is not None:
            payload["selector"] = self.selector
        if self.playback_rate is not None:
            payload["playback_rate"] = self.playback_rate
        if self.playback_startup_pieces is not None:
            payload["playback_startup_pieces"] = self.playback_startup_pieces
        if self.arrival_rate is not None:
            payload["arrival_rate"] = self.arrival_rate
        if self.seed_upload is not None:
            payload["seed_upload"] = self.seed_upload
        if self.num_pieces is not None:
            payload["num_pieces"] = self.num_pieces
        if self.piece_size is not None:
            payload["piece_size"] = self.piece_size
        if self.depart_on_completion:
            payload["depart_on_completion"] = True
        if self.flash_crowd_size is not None:
            payload["flash_crowd_size"] = self.flash_crowd_size
        if self.stability_interval is not None:
            payload["stability_interval"] = self.stability_interval
        if self.tracker_sampler is not None:
            payload["tracker_sampler"] = self.tracker_sampler
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardSpec":
        return cls(
            torrent_id=payload["torrent_id"],
            scenario=payload["scenario"],
            replicate=payload["replicate"],
            seed=payload["seed"],
            duration=payload.get("duration"),
            block_size=payload.get("block_size"),
            faults=payload.get("faults"),
            selector=payload.get("selector"),
            playback_rate=payload.get("playback_rate"),
            playback_startup_pieces=payload.get("playback_startup_pieces"),
            arrival_rate=payload.get("arrival_rate"),
            seed_upload=payload.get("seed_upload"),
            num_pieces=payload.get("num_pieces"),
            piece_size=payload.get("piece_size"),
            depart_on_completion=payload.get("depart_on_completion", False),
            flash_crowd_size=payload.get("flash_crowd_size"),
            stability_interval=payload.get("stability_interval"),
            tracker_sampler=payload.get("tracker_sampler"),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative description of a campaign.

    ``duration``/``block_size`` apply to every shard and take precedence
    over the scenario variant's own overrides (they are the explicit
    knob, the variant is the default).
    """

    name: str = "paper-table1"
    torrent_ids: Tuple[int, ...] = PAPER_TORRENT_IDS
    scenarios: Tuple[str, ...] = (DEFAULT_SCENARIO,)
    replicates: int = 1
    campaign_seed: int = DEFAULT_CAMPAIGN_SEED
    duration: Optional[float] = None
    block_size: Optional[int] = None
    selector: Optional[str] = None
    playback_rate: Optional[float] = None
    arrival_rate: Optional[float] = None
    seed_upload: Optional[float] = None
    tracker_sampler: Optional[str] = None

    def describe(self) -> dict:
        return {
            "name": self.name,
            "torrent_ids": list(self.torrent_ids),
            "scenarios": list(self.scenarios),
            "replicates": self.replicates,
            "campaign_seed": self.campaign_seed,
            "duration": self.duration,
            "block_size": self.block_size,
            "selector": self.selector,
            "playback_rate": self.playback_rate,
            "arrival_rate": self.arrival_rate,
            "seed_upload": self.seed_upload,
            "tracker_sampler": self.tracker_sampler,
        }


def expand_spec(
    spec: CampaignSpec, shard_filter: Optional[str] = None
) -> List[ShardSpec]:
    """Expand a spec into its shards, in deterministic order.

    Shards are ordered by ``(torrent_id, scenario position, replicate)``
    — the order is part of the campaign's identity and independent of
    how the shards are later scheduled.  ``shard_filter`` keeps only
    shards whose :attr:`~ShardSpec.shard_id` matches the glob (or
    contains it as a substring), e.g. ``"t07-*"`` or ``"faults"``.

    Selector specs are validated here (fail fast, before any worker is
    spawned) against the registry in :mod:`repro.core.rarest_first`.
    """
    from repro.core.rarest_first import parse_selector_spec

    from repro.tracker.sampling import parse_sampler_spec

    for selector_spec in {spec.selector} | {
        SCENARIOS[name].selector for name in spec.scenarios if name in SCENARIOS
    }:
        if selector_spec is not None:
            parse_selector_spec(selector_spec)
    for sampler_spec in {spec.tracker_sampler} | {
        SCENARIOS[name].tracker_sampler
        for name in spec.scenarios
        if name in SCENARIOS
    }:
        if sampler_spec is not None:
            parse_sampler_spec(sampler_spec)
    shards: List[ShardSpec] = []
    for torrent_id in spec.torrent_ids:
        for scenario in spec.scenarios:
            variant = SCENARIOS.get(scenario)
            if variant is None:
                raise KeyError(
                    "unknown scenario %r (have: %s)"
                    % (scenario, ", ".join(sorted(SCENARIOS)))
                )
            for replicate in range(spec.replicates):
                shard = ShardSpec(
                    torrent_id=torrent_id,
                    scenario=scenario,
                    replicate=replicate,
                    seed=derive_shard_seed(
                        spec.campaign_seed, torrent_id, scenario, replicate
                    ),
                    duration=(
                        spec.duration
                        if spec.duration is not None
                        else variant.duration
                    ),
                    block_size=(
                        spec.block_size
                        if spec.block_size is not None
                        else variant.block_size
                    ),
                    faults=variant.faults,
                    selector=(
                        spec.selector
                        if spec.selector is not None
                        else variant.selector
                    ),
                    playback_rate=(
                        spec.playback_rate
                        if spec.playback_rate is not None
                        else variant.playback_rate
                    ),
                    playback_startup_pieces=variant.playback_startup_pieces,
                    arrival_rate=(
                        spec.arrival_rate
                        if spec.arrival_rate is not None
                        else variant.arrival_rate
                    ),
                    seed_upload=(
                        spec.seed_upload
                        if spec.seed_upload is not None
                        else variant.seed_upload
                    ),
                    num_pieces=variant.num_pieces,
                    piece_size=variant.piece_size,
                    depart_on_completion=variant.depart_on_completion,
                    flash_crowd_size=variant.flash_crowd_size,
                    stability_interval=variant.stability_interval,
                    tracker_sampler=(
                        spec.tracker_sampler
                        if spec.tracker_sampler is not None
                        else variant.tracker_sampler
                    ),
                )
                if shard_filter and not _matches(shard.shard_id, shard_filter):
                    continue
                shards.append(shard)
    return shards


def _matches(shard_id: str, pattern: str) -> bool:
    return fnmatch(shard_id, pattern) or pattern in shard_id


def parse_torrent_ids(text: str) -> Tuple[int, ...]:
    """Parse a ``--torrents`` argument: ``all`` or ``1,2,7-9``."""
    if text.strip().lower() == "all":
        return PAPER_TORRENT_IDS
    ids: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            low, high = part.split("-", 1)
            ids.extend(range(int(low), int(high) + 1))
        else:
            ids.append(int(part))
    for torrent_id in ids:
        if not 1 <= torrent_id <= 26:
            raise ValueError("torrent id %d outside Table I (1-26)" % torrent_id)
    return tuple(dict.fromkeys(ids))
