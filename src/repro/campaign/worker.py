"""The campaign worker: one process of a worker-pool backend.

``repro campaign worker --connect HOST:PORT`` connects to a
:class:`~repro.campaign.dispatch.WorkerPoolBackend` coordinator, pulls
shards one at a time over the length-prefixed JSON protocol, executes
each through the exact same guarded entry point the local process pool
uses (``_run_guarded`` -> ``run_shard_payload``: per-shard RNG hygiene,
``SIGALRM`` timeout), commits the result through the shared
content-addressed cache, and reports the record (or a structured
error) back.

Workers are stateless and interchangeable: all coordination happens
through the coordinator's queue and the cache.  Running one on another
host only requires that it sees the same cache directory (shared
filesystem) or — simpler, and what the multi-host quickstart documents
— that each host runs with its own cache and the coordinator's cache
receives the committed records (the worker sends the full record over
the wire, so the coordinator can always rebuild its manifest even when
the caches are disjoint; with a shared cache the trace artefacts land
too).

A worker that receives a shard another worker already committed (the
duplicate-race case) serves it straight from the cache: the payload
carries ``resume=True`` for worker-pool dispatch, making duplicate
completion idempotent — one cache commit, byte-identical records.
"""

from __future__ import annotations

import os
import socket
import sys
from typing import Callable, Optional, Tuple

from repro.campaign.dispatch import (
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.campaign.runner import ShardTimeout, _run_guarded, run_shard_payload


def parse_endpoint(text: str) -> Tuple[str, int]:
    """``"host:port"`` -> (host, port); host defaults to localhost."""
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ValueError("endpoint %r is not HOST:PORT" % text)
    return host or "127.0.0.1", int(port)


def run_worker(
    connect: str,
    executor: Callable[[dict], dict] = run_shard_payload,
    worker_id: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Serve shards from the coordinator at *connect* until shutdown.

    Returns the number of shards executed (results sent).  Raises
    ``OSError`` when the coordinator is unreachable; a coordinator that
    disappears mid-session ends the worker cleanly (it has nothing left
    to do — committed work is already in the cache).
    """
    host, port = parse_endpoint(connect)
    notify = progress or (lambda message: None)
    executed = 0
    sock = socket.create_connection((host, port), timeout=30.0)
    try:
        sock.settimeout(None)
        send_frame(
            sock,
            {
                "type": "hello",
                "worker": worker_id or ("pid-%d" % os.getpid()),
                "protocol": PROTOCOL_VERSION,
            },
        )
        while True:
            try:
                frame = recv_frame(sock)
            except (OSError, FrameError):
                break
            if frame is None or frame.get("type") == "shutdown":
                break
            if frame.get("type") != "work":
                continue
            shard_id = frame.get("shard_id")
            payload = frame["payload"]
            try:
                record = _run_guarded(executor, dict(payload))
            except ShardTimeout as error:
                reply = {
                    "type": "error",
                    "shard_id": shard_id,
                    "kind": "ShardTimeout",
                    "message": str(error),
                }
                notify("timeout  %s" % shard_id)
            except Exception as error:
                reply = {
                    "type": "error",
                    "shard_id": shard_id,
                    "kind": type(error).__name__,
                    "message": str(error),
                }
                notify("error    %s (%s)" % (shard_id, error))
            else:
                reply = {
                    "type": "result",
                    "shard_id": shard_id,
                    "record": record,
                }
                executed += 1
                notify(
                    "done     %s%s"
                    % (shard_id, " (cache hit)" if record.get("cache_hit") else "")
                )
            try:
                send_frame(sock, reply)
            except OSError:
                break
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return executed


def main_worker(connect: str, verbose: bool = False) -> int:
    """CLI entry point: returns a process exit code."""
    progress = (
        (lambda message: print(message, file=sys.stderr)) if verbose else None
    )
    try:
        executed = run_worker(connect, progress=progress)
    except OSError as error:
        print(
            "campaign worker: cannot reach coordinator %s (%s)"
            % (connect, error),
            file=sys.stderr,
        )
        return 1
    if verbose:
        print("campaign worker: %d shards executed" % executed, file=sys.stderr)
    return 0
