"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro list-torrents
    python -m repro run --torrent 7 --seed 3 --save trace.json
    python -m repro run --torrent 7 --trace out.jsonl --trace-all
    python -m repro figure entropy --torrent 7
    python -m repro figure replication --torrent 8 --leecher-only
    python -m repro figure interarrival --torrent 10 --kind piece
    python -m repro figure fairness --torrent 7
    python -m repro analyze trace.json --figure entropy
    python -m repro replay out.jsonl --figure entropy
    python -m repro metrics --torrent 19 --duration 400
    python -m repro model --arrival-rate 0.05 --upload 4096 --content 131072
    python -m repro campaign run --workers 4 --cache-dir campaign-cache
    python -m repro campaign run --torrents 2,3,13,19 --scenario smoke --workers 2
    python -m repro campaign status --cache-dir campaign-cache

``campaign`` runs a whole experiment matrix (torrents x scenarios x
replicates) across worker processes with content-addressed caching —
``repro campaign run`` executes the missing shards and writes a
``manifest.json``; ``repro campaign status`` renders that manifest.
``run`` executes one Table-I experiment with the instrumented client;
``figure`` runs it and prints the requested figure's data; ``analyze``
recomputes figures from a saved trace without re-simulating; ``replay``
reconstructs the instrumentation from a structured JSONL trace (``run
--trace``) and prints any figure from it; ``metrics`` runs an experiment
with the metrics registry and engine profiler enabled and dumps both;
``model`` evaluates the Qiu–Srikant fluid model.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import (
    interarrival_summary,
    peer_set_series,
    rarest_set_series,
    replication_series,
    summarize_entropy,
    unchoke_interest_correlation,
)
from repro.analysis.fairness import leecher_contribution, seed_contribution
from repro.instrumentation import (
    EngineProfiler,
    Instrumentation,
    TraceRecorder,
    replay_instrumentation,
    traced_peers,
)
from repro.models import FluidModel
from repro.reporting import (
    ascii_table,
    load_trace_summary,
    save_trace_summary,
    sparkline,
)
from repro.workloads import TABLE1, build_experiment, scaled_copy, scenario_by_id


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Rarest First and Choke Algorithms Are Enough' (IMC 2006)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "list-torrents", help="print Table I (paper and scaled parameters)"
    )

    run_parser = commands.add_parser(
        "run", help="run one Table-I experiment with the instrumented client"
    )
    _experiment_arguments(run_parser)
    run_parser.add_argument(
        "--save", metavar="PATH", help="save the trace summary as JSON"
    )

    figure_parser = commands.add_parser(
        "figure", help="run an experiment and print one figure's data"
    )
    figure_parser.add_argument(
        "name",
        choices=["entropy", "replication", "rarest-set", "peer-set",
                 "interarrival", "fairness"],
        help="which figure to regenerate",
    )
    _experiment_arguments(figure_parser)
    figure_parser.add_argument(
        "--kind", choices=["piece", "block"], default="piece",
        help="interarrival item kind (figure 7 vs 8)",
    )
    figure_parser.add_argument(
        "--leecher-only", action="store_true",
        help="restrict series to the local peer's leecher state",
    )

    replay_parser = commands.add_parser(
        "replay",
        help="rebuild the instrumentation from a structured JSONL trace "
        "('run --trace') and print one figure — no simulation",
    )
    replay_parser.add_argument("trace", help="JSONL trace from 'run --trace'")
    replay_parser.add_argument(
        "--figure",
        choices=["entropy", "replication", "rarest-set", "peer-set",
                 "interarrival", "fairness"],
        default="entropy",
    )
    replay_parser.add_argument(
        "--kind", choices=["piece", "block"], default="piece"
    )
    replay_parser.add_argument("--leecher-only", action="store_true")
    replay_parser.add_argument(
        "--peer", metavar="ADDR", default=None,
        help="which traced peer to reconstruct (default: the first; "
        "relevant for --trace-all traces)",
    )
    replay_parser.add_argument(
        "--list-peers", action="store_true",
        help="just list the traced peer addresses and exit",
    )

    metrics_parser = commands.add_parser(
        "metrics",
        help="run an experiment with the metrics registry + engine "
        "profiler and dump both",
    )
    _experiment_arguments(metrics_parser)

    analyze_parser = commands.add_parser(
        "analyze", help="recompute figures from a saved trace (no simulation)"
    )
    analyze_parser.add_argument("trace", help="JSON trace from 'run --save'")
    analyze_parser.add_argument(
        "--figure",
        choices=["entropy", "replication", "rarest-set", "peer-set",
                 "interarrival", "fairness"],
        default="entropy",
    )
    analyze_parser.add_argument(
        "--kind", choices=["piece", "block"], default="piece"
    )
    analyze_parser.add_argument("--leecher-only", action="store_true")

    campaign_parser = commands.add_parser(
        "campaign",
        help="run/inspect a sharded, cached, resumable experiment campaign",
    )
    campaign_commands = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )
    def add_campaign_spec_args(parser: argparse.ArgumentParser) -> None:
        """Spec-defining flags shared by ``campaign run`` and ``diff``."""
        parser.add_argument(
            "--name", default="paper-table1",
            help="campaign name (manifest label)",
        )
        parser.add_argument(
            "--torrents", default="all",
            help="'all' (the 26-torrent paper matrix) or e.g. "
            "'2,3,13,19' / '7-9'",
        )
        parser.add_argument(
            "--scenario", default="paper",
            help="comma-separated scenario variants: paper, smoke, "
            "faults-light, faults-heavy, streaming-rarest, "
            "streaming-seqwin, streaming-pfs, flash-crowd, "
            "flash-crowd-suppress",
        )
        parser.add_argument(
            "--selector", default=None, metavar="SPEC",
            help="override every shard's piece-selection strategy "
            "(see 'repro run --selector')",
        )
        parser.add_argument(
            "--playback-rate", type=float, default=None,
            metavar="BYTES_PER_S",
            help="override every shard's streaming playback rate",
        )
        parser.add_argument(
            "--tracker-sampler", default=None, metavar="SPEC",
            help="override every shard's tracker peer-sampling strategy "
            "(see 'repro run --tracker-sampler')",
        )
        parser.add_argument("--replicates", type=int, default=1)
        parser.add_argument(
            "--campaign-seed", type=int, default=3,
            help="root seed every shard's RNG stream derives from",
        )
        parser.add_argument(
            "--duration", type=float, default=None,
            help="override every shard's simulated run length",
        )
        parser.add_argument(
            "--cache-dir", default="campaign-cache",
            help="content-addressed shard cache + manifest directory",
        )
        parser.add_argument(
            "--filter", default=None, metavar="GLOB",
            help="only shards whose id matches (e.g. 't07-*', 'faults')",
        )

    campaign_run = campaign_commands.add_parser(
        "run",
        help="execute a campaign's missing shards across worker processes",
    )
    add_campaign_spec_args(campaign_run)
    campaign_run.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    campaign_run.add_argument(
        "--backend", default="local", metavar="SPEC",
        help="dispatch backend: 'local' (in-process pool, default) or "
        "'worker-pool[:host=H,port=P,spawn=N]' (socket coordinator; "
        "spawn=0 waits for externally started 'campaign worker' "
        "processes)",
    )
    campaign_run.add_argument(
        "--incremental", action="store_true",
        help="print the spec-vs-cache invalidation report before "
        "executing (the run then executes exactly the invalidated "
        "shards)",
    )
    resume_group = campaign_run.add_mutually_exclusive_group()
    resume_group.add_argument(
        "--resume", dest="resume", action="store_true", default=True,
        help="serve completed shards from the cache (default)",
    )
    resume_group.add_argument(
        "--fresh", dest="resume", action="store_false",
        help="ignore cached shard results and re-execute everything",
    )
    campaign_run.add_argument(
        "--timeout", type=float, default=None,
        help="per-shard wall-clock budget in seconds",
    )
    campaign_run.add_argument(
        "--retries", type=int, default=1,
        help="retries per shard after a worker crash or error",
    )
    campaign_run.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="also write the aggregated campaign table into DIR "
        "(e.g. benchmarks/results)",
    )
    campaign_status = campaign_commands.add_parser(
        "status", help="render a campaign's manifest.json"
    )
    campaign_status.add_argument("--cache-dir", default="campaign-cache")
    campaign_status.add_argument(
        "--json", action="store_true", help="dump the raw manifest JSON"
    )
    campaign_diff = campaign_commands.add_parser(
        "diff",
        help="report which shards a run of this spec would (re-)execute, "
        "and why, without executing anything",
    )
    add_campaign_spec_args(campaign_diff)
    campaign_diff.add_argument(
        "--json", action="store_true",
        help="dump the invalidation report as JSON",
    )
    campaign_worker = campaign_commands.add_parser(
        "worker",
        help="serve shards for a 'campaign run --backend worker-pool' "
        "coordinator",
    )
    campaign_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator endpoint (from the coordinator's startup line)",
    )
    campaign_worker.add_argument(
        "--verbose", action="store_true",
        help="log each shard's outcome to stderr",
    )

    net_parser = commands.add_parser(
        "net", help="live asyncio peer-wire swarms over localhost TCP"
    )
    net_commands = net_parser.add_subparsers(dest="net_command", required=True)
    net_run = net_commands.add_parser(
        "run",
        help="download a synthetic torrent through a live localhost swarm "
        "and report per-peer outcomes",
    )
    net_run.add_argument("--seeds", type=int, default=1, help="initial seeds")
    net_run.add_argument("--leechers", type=int, default=5)
    net_run.add_argument("--pieces", type=int, default=24)
    net_run.add_argument(
        "--piece-size", type=int, default=16 * 1024, help="bytes per piece"
    )
    net_run.add_argument(
        "--block-size", type=int, default=4 * 1024, help="bytes per block"
    )
    net_run.add_argument("--seed", type=int, default=0, help="swarm RNG seed")
    net_run.add_argument(
        "--upload", type=float, default=256.0, help="per-peer upload cap, KiB/s"
    )
    net_run.add_argument(
        "--choke-interval", type=float, default=0.5,
        help="seconds between choke rounds (wall clock)",
    )
    net_run.add_argument(
        "--timeout", type=float, default=120.0,
        help="abort if the swarm has not completed after this many seconds",
    )
    net_run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the swarm-wide schema-v1 JSONL trace to PATH "
        "(replayable with 'repro replay')",
    )
    net_run.add_argument(
        "--check", action="store_true",
        help="run the conformance checks over the trace after the download",
    )

    model_parser = commands.add_parser(
        "model", help="evaluate the Qiu-Srikant fluid model"
    )
    model_parser.add_argument("--arrival-rate", type=float, required=True)
    model_parser.add_argument(
        "--upload", type=float, required=True, help="peer upload, bytes/s"
    )
    model_parser.add_argument(
        "--content", type=float, required=True, help="content size, bytes"
    )
    model_parser.add_argument("--seed-stay", type=float, default=60.0)
    model_parser.add_argument("--abort-rate", type=float, default=0.0)
    model_parser.add_argument("--effectiveness", type=float, default=1.0)
    model_parser.add_argument("--duration", type=float, default=2000.0)
    model_parser.add_argument(
        "--seed-capacity", type=float, default=0.0, metavar="PER_S",
        help="completions/s injected by a permanent initial seed "
        "(open-system extension)",
    )
    model_parser.add_argument(
        "--open", action="store_true",
        help="open system: volunteer seeds depart instantly "
        "(seed_departure_rate = inf, overrides --seed-stay)",
    )

    tracker_parser = commands.add_parser(
        "tracker", help="run the standalone announce server"
    )
    tracker_commands = tracker_parser.add_subparsers(
        dest="tracker_command", required=True
    )
    tracker_serve = tracker_commands.add_parser(
        "serve",
        help="serve announces over HTTP-style TCP and UDP datagrams",
    )
    tracker_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    tracker_serve.add_argument(
        "--port", type=int, default=6969, help="HTTP announce port (0 = ephemeral)"
    )
    tracker_serve.add_argument(
        "--udp-port", type=int, default=None,
        help="UDP announce port (default: same as --port; 0 = ephemeral)",
    )
    tracker_serve.add_argument(
        "--shards", type=int, default=8, help="swarm-store shard count"
    )
    tracker_serve.add_argument(
        "--sampler", default="uniform", metavar="SPEC",
        help="peer-sampling strategy: uniform, "
        "'seed-biased:seed_fraction=0.5', 'rarity-aware:bias=1.0'",
    )
    tracker_serve.add_argument(
        "--seed", type=int, default=0,
        help="service seed for per-request RNG derivation",
    )
    tracker_serve.add_argument(
        "--interval", type=float, default=None,
        help="announce interval handed to clients (seconds; default 1800)",
    )
    tracker_serve.add_argument(
        "--announce-budget", type=float, default=None, metavar="PER_SECOND",
        help="load-shedding budget in announces/second (default: unlimited)",
    )
    tracker_serve.add_argument(
        "--expiry-intervals", type=float, default=None, metavar="K",
        help="reap peers silent for more than K announce intervals "
        "(default: never expire)",
    )
    tracker_serve.add_argument(
        "--stats-interval", type=float, default=60.0,
        help="seconds between stats lines on stderr (0 = never)",
    )

    stability_parser = commands.add_parser(
        "stability",
        help="open-system stability phase diagram, sim cross-validated "
        "against the fluid model",
    )
    stability_parser.add_argument(
        "--arrival-rates", default="0.12,0.35", metavar="LIST",
        help="comma-separated Poisson arrival rates (peers/s)",
    )
    stability_parser.add_argument(
        "--seed-uploads", default="16384,49152", metavar="LIST",
        help="comma-separated initial-seed upload capacities (bytes/s)",
    )
    stability_parser.add_argument(
        "--policies", default="rarest-first,mode-suppression", metavar="LIST",
        help="comma-separated policies (rarest-first, mode-suppression)",
    )
    stability_parser.add_argument(
        "--torrent", type=int, default=2, help="Table-I id (1-26)"
    )
    stability_parser.add_argument(
        "--cache-dir", default="stability-cache",
        help="shared shard cache: re-runs are pure cache hits",
    )
    stability_parser.add_argument("--workers", type=int, default=1)
    stability_parser.add_argument("--campaign-seed", type=int, default=3)
    stability_parser.add_argument(
        "--duration", type=float, default=None,
        help="override the simulated run length per cell",
    )
    stability_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-shard wall-clock budget in seconds",
    )
    stability_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the phase-diagram JSON to PATH",
    )
    return parser


def _experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--torrent", type=int, default=7, help="Table-I id (1-26)")
    parser.add_argument("--seed", type=int, default=3, help="RNG seed")
    parser.add_argument(
        "--duration", type=float, default=None,
        help="override the scenario's run length (simulated seconds)",
    )
    parser.add_argument(
        "--faults", choices=["off", "light", "heavy"], default="off",
        help="inject faults: 'light' = 2%% message loss + jitter + one "
        "60 s tracker outage; 'heavy' adds peer crashes, duplication "
        "and piece corruption (default: off)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured JSONL event trace (replayable with "
        "'repro replay')",
    )
    parser.add_argument(
        "--trace-all", action="store_true",
        help="trace every peer in the swarm, not just the local one",
    )
    parser.add_argument(
        "--selector", default=None, metavar="SPEC",
        help="piece-selection strategy for every peer: rarest-first "
        "(default), random, sequential, 'seq-window:window=16', "
        "'pfs:urgency=0.95,rarity_bias=1.0', "
        "'mode-suppression:suppression=0.9'",
    )
    parser.add_argument(
        "--playback-rate", type=float, default=None, metavar="BYTES_PER_S",
        help="streaming workload: play the content in-order at this rate "
        "on the local peer and every leecher, reporting startup delay "
        "and rebuffer metrics",
    )
    parser.add_argument(
        "--playback-startup-pieces", type=int, default=None, metavar="N",
        help="contiguous pieces buffered before playback starts (default 2)",
    )
    parser.add_argument(
        "--tracker-sampler", default=None, metavar="SPEC",
        help="tracker peer-sampling strategy: uniform (default), "
        "'seed-biased:seed_fraction=0.5', 'rarity-aware:bias=1.0'",
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list-torrents": _cmd_list_torrents,
        "run": _cmd_run,
        "figure": _cmd_figure,
        "analyze": _cmd_analyze,
        "replay": _cmd_replay,
        "metrics": _cmd_metrics,
        "model": _cmd_model,
        "net": _cmd_net,
        "campaign": _cmd_campaign,
        "stability": _cmd_stability,
        "tracker": _cmd_tracker,
    }[args.command]
    return handler(args)


def _cmd_list_torrents(args: argparse.Namespace) -> int:
    rows = []
    for scenario in TABLE1:
        rows.append(
            [
                scenario.torrent_id,
                scenario.paper_seeds,
                scenario.paper_leechers,
                scenario.paper_size_mb,
                scenario.seeds,
                scenario.leechers,
                scenario.num_pieces,
                "transient" if scenario.transient else "steady",
            ]
        )
    print(
        ascii_table(
            ["id", "S", "L", "MB", "S'", "L'", "pieces", "state"], rows
        )
    )
    return 0


def _build_harness(args: argparse.Namespace, trace_recorder=None):
    scenario = scenario_by_id(args.torrent)
    if args.duration is not None:
        scenario = scaled_copy(scenario, duration=args.duration)
    print(
        "running torrent %d (%s, %d+%d peers, %d pieces) for %.0f s ..."
        % (
            scenario.torrent_id,
            "transient" if scenario.transient else "steady",
            scenario.seeds,
            scenario.leechers,
            scenario.num_pieces,
            scenario.duration,
        ),
        file=sys.stderr,
    )
    swarm_config = None
    if getattr(args, "faults", "off") != "off":
        from repro.sim.config import SwarmConfig
        from repro.sim.faults import FAULT_PRESETS

        swarm_config = SwarmConfig(
            seed=args.seed,
            duration=scenario.duration,
            faults=FAULT_PRESETS[args.faults],
        )
        print("fault injection: %s preset" % args.faults, file=sys.stderr)
    strategy_kwargs = {}
    selector_spec = getattr(args, "selector", None)
    if selector_spec:
        from repro.core.rarest_first import make_selector

        strategy_kwargs["local_selector"] = make_selector(selector_spec)
        strategy_kwargs["population_selector_factory"] = (
            lambda: make_selector(selector_spec)
        )
        print("piece selector: %s" % selector_spec, file=sys.stderr)
    playback_rate = getattr(args, "playback_rate", None)
    if playback_rate is not None:
        strategy_kwargs["playback_rate"] = playback_rate
        strategy_kwargs["playback_startup_pieces"] = getattr(
            args, "playback_startup_pieces", None
        )
        print(
            "streaming playback: %.0f B/s" % playback_rate, file=sys.stderr
        )
    tracker_sampler = getattr(args, "tracker_sampler", None)
    if tracker_sampler is not None:
        strategy_kwargs["tracker_sampler"] = tracker_sampler
        print("tracker sampler: %s" % tracker_sampler, file=sys.stderr)
    return build_experiment(
        scenario,
        seed=args.seed,
        swarm_config=swarm_config,
        trace_recorder=trace_recorder,
        trace_all_peers=getattr(args, "trace_all", False),
        **strategy_kwargs,
    )


def _run_experiment(args: argparse.Namespace) -> Instrumentation:
    recorder = None
    if getattr(args, "trace", None):
        recorder = TraceRecorder(args.trace)
    harness = _build_harness(args, trace_recorder=recorder)
    trace = harness.run()
    if harness.swarm.faults is not None:
        stats = dict(harness.swarm.faults.stats)
        print("injected faults: %s" % (stats or "none hit"), file=sys.stderr)
    if recorder is not None:
        fingerprint = recorder.close()
        print(
            "structured trace: %s (%d events, fingerprint %s)"
            % (args.trace, recorder.events_emitted, fingerprint[:16]),
            file=sys.stderr,
        )
    return trace


def _cmd_run(args: argparse.Namespace) -> int:
    trace = _run_experiment(args)
    print(
        "local peer: %d pieces, seed at t=%s, %d messages sent"
        % (
            trace.peer.bitfield.count,
            trace.seed_state_at,
            trace.messages_sent,
        )
    )
    if trace.playback_events:
        from repro.analysis.streaming import playback_summary

        playback = playback_summary(trace)
        print(
            "playback: startup delay %s s, %d rebuffers (%.1f s stalled%s), "
            "finished at t=%s"
            % (
                playback.startup_delay,
                playback.rebuffer_count,
                playback.rebuffer_seconds,
                ", stalled at end" if playback.stalled_at_end else "",
                playback.finished_at,
            )
        )
    if args.save:
        save_trace_summary(trace, args.save)
        print("trace saved to %s" % args.save)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    trace = _run_experiment(args)
    _print_figure(trace, args.name, args)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = load_trace_summary(args.trace)
    _print_figure(trace, args.figure, args)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.list_peers:
        for address in traced_peers(args.trace):
            print(address)
        return 0
    trace = replay_instrumentation(args.trace, peer=args.peer)
    print(
        "replayed %d events for peer %s"
        % (trace.replayed_from_events, trace.peer.address),
        file=sys.stderr,
    )
    _print_figure(trace, args.figure, args)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    harness = _build_harness(args)
    profiler = EngineProfiler()
    harness.swarm.simulator.set_profiler(profiler)
    trace = harness.run()
    print("== instrumentation metrics ==")
    print(trace.metrics.render())
    print()
    print("== engine profile ==")
    print(profiler.report())
    return 0


def _print_figure(trace: Instrumentation, name: str, args) -> None:
    leecher_only = getattr(args, "leecher_only", False)
    if name == "entropy":
        summary = summarize_entropy(trace)
        print(
            ascii_table(
                ["ratio", "p20", "median", "p80", "n"],
                [
                    [
                        "a/b (local in remote)",
                        "%.2f" % summary.p20_local,
                        "%.2f" % summary.median_local,
                        "%.2f" % summary.p80_local,
                        len(summary.local_in_remote),
                    ],
                    [
                        "c/d (remote in local)",
                        "%.2f" % summary.p20_remote,
                        "%.2f" % summary.median_remote,
                        "%.2f" % summary.p80_remote,
                        len(summary.remote_in_local),
                    ],
                ],
            )
        )
    elif name == "replication":
        series = replication_series(trace, leecher_state_only=leecher_only)
        print("min copies:  %s" % sparkline(series.min_copies))
        print("mean copies: %s" % sparkline(series.mean_copies))
        print("max copies:  %s" % sparkline(series.max_copies))
        rows = [
            ["%.0f" % t, low, "%.2f" % mean, high]
            for t, low, mean, high in list(
                zip(
                    series.times,
                    series.min_copies,
                    series.mean_copies,
                    series.max_copies,
                )
            )[:: max(1, len(series.times) // 25)]
        ]
        print(ascii_table(["t", "min", "mean", "max"], rows))
    elif name == "rarest-set":
        times, sizes = rarest_set_series(trace, leecher_state_only=leecher_only)
        print("rarest-set size: %s" % sparkline(sizes))
        rows = [
            ["%.0f" % t, s]
            for t, s in list(zip(times, sizes))[:: max(1, len(times) // 25)]
        ]
        print(ascii_table(["t", "rarest"], rows))
    elif name == "peer-set":
        times, sizes = peer_set_series(trace)
        print("peer-set size: %s" % sparkline(sizes))
        rows = [
            ["%.0f" % t, s]
            for t, s in list(zip(times, sizes))[:: max(1, len(times) // 25)]
        ]
        print(ascii_table(["t", "size"], rows))
    elif name == "interarrival":
        summary = interarrival_summary(trace, kind=args.kind)
        print(
            ascii_table(
                ["population", "median (s)", "slowdown vs all"],
                [
                    ["all", "%.3f" % summary.median_all, "x1.00"],
                    [
                        "first %d" % summary.n,
                        "%.3f" % summary.median_first,
                        "x%.2f" % summary.first_slowdown(),
                    ],
                    [
                        "last %d" % summary.n,
                        "%.3f" % summary.median_last,
                        "x%.2f" % summary.last_slowdown(),
                    ],
                ],
            )
        )
    elif name == "fairness":
        up_shares, down_shares = leecher_contribution(trace)
        seed_shares = seed_contribution(trace)
        rows = [
            ["set %d" % (index + 1),
             "%.2f" % up, "%.2f" % down, "%.2f" % seed]
            for index, (up, down, seed) in enumerate(
                zip(up_shares, down_shares, seed_shares)
            )
        ]
        print(ascii_table(["peers", "upload LS", "download LS", "upload SS"], rows))
        for state in ("leecher", "seed"):
            correlation = unchoke_interest_correlation(trace, state=state)
            if len(correlation) >= 3 and not math.isnan(correlation.correlation):
                print(
                    "%s-state unchoke/interest correlation: %.2f (%d peers)"
                    % (state, correlation.correlation, len(correlation))
                )
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError("unknown figure %r" % name)


def _campaign_spec_from_args(args: argparse.Namespace):
    from repro.campaign import CampaignSpec, parse_torrent_ids

    return CampaignSpec(
        name=args.name,
        torrent_ids=parse_torrent_ids(args.torrents),
        scenarios=tuple(
            name.strip() for name in args.scenario.split(",") if name.strip()
        ),
        replicates=args.replicates,
        campaign_seed=args.campaign_seed,
        duration=args.duration,
        selector=args.selector,
        playback_rate=args.playback_rate,
        tracker_sampler=args.tracker_sampler,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignRunner,
        MANIFEST_NAME,
        render_campaign_table,
        render_manifest_table,
        render_streaming_table,
    )

    if args.campaign_command == "status":
        manifest_path = Path(args.cache_dir) / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError:
            print("no manifest at %s (run a campaign first)" % manifest_path,
                  file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(manifest, indent=2))
        else:
            print(render_manifest_table(manifest), end="")
        return 0

    if args.campaign_command == "worker":
        from repro.campaign import main_worker

        return main_worker(args.connect, verbose=args.verbose)

    if args.campaign_command == "diff":
        from repro.campaign import diff_spec

        report = diff_spec(
            _campaign_spec_from_args(args), args.cache_dir,
            shard_filter=args.filter,
        )
        if args.json:
            payload = {
                "campaign": report.campaign,
                "counts": report.counts(),
                "shards": [
                    {
                        "shard_id": delta.shard_id,
                        "key": delta.key,
                        "state": delta.state,
                        "reason": delta.reason,
                        "changed_fields": [
                            list(change) for change in delta.changed_fields
                        ],
                    }
                    for delta in report.deltas
                ],
                "removed": report.removed,
            }
            print(json.dumps(payload, indent=2))
        else:
            print(report.render(), end="")
        return 1 if report.invalidated else 0

    spec = _campaign_spec_from_args(args)
    if args.incremental:
        from repro.campaign import diff_spec

        report = diff_spec(spec, args.cache_dir, shard_filter=args.filter)
        print(report.render(), end="", file=sys.stderr)
    runner = CampaignRunner(
        spec,
        cache_dir=args.cache_dir,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        backend=args.backend,
        progress=lambda message: print(message, file=sys.stderr),
    )
    result = runner.run(resume=args.resume, shard_filter=args.filter)
    table = render_campaign_table(list(result.records.values()))
    streaming_table = render_streaming_table(list(result.records.values()))
    if streaming_table:
        table += "\n" + streaming_table
    summary_path = Path(args.cache_dir) / ("campaign_%s.txt" % spec.name)
    summary_path.write_text(table)
    if args.results_dir:
        results_dir = Path(args.results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / ("campaign_%s.txt" % spec.name)).write_text(table)
    print(table, end="")
    counts = result.counts
    print(
        "shards=%d ok=%d failed=%d timeout=%d cache_hits=%d executed=%d"
        % (
            counts["shards"], counts["ok"], counts["failed"],
            counts["timeout"], counts["cache_hits"], counts["executed"],
        )
    )
    print("manifest: %s" % (Path(args.cache_dir) / MANIFEST_NAME))
    print("manifest_fingerprint: %s" % result.fingerprint)
    return 1 if result.failed_shards() else 0


def _cmd_net(args: argparse.Namespace) -> int:
    from repro.net.conformance import check_trace
    from repro.net.swarm import LiveSwarm
    from repro.protocol.metainfo import make_metainfo
    from repro.sim.config import KIB, PeerConfig

    metainfo = make_metainfo(
        "net-live",
        num_pieces=args.pieces,
        piece_size=args.piece_size,
        block_size=args.block_size,
    )
    recorder = None
    if args.trace is not None or args.check:
        recorder = TraceRecorder(args.trace)
    config = PeerConfig(
        upload_capacity=args.upload * KIB,
        choke_interval=args.choke_interval,
        rate_window=max(1.0, 2 * args.choke_interval),
        min_peer_set=1,
    )
    swarm = LiveSwarm(
        metainfo, seed=args.seed, config=config, recorder=recorder
    )
    swarm.add_peers(args.seeds, args.leechers)
    result = swarm.run_sync(timeout=args.timeout)

    rows = []
    for address in result.addresses:
        completed = result.completed_at.get(address)
        rows.append(
            [
                address,
                "seed" if completed == 0.0 else "leecher",
                "%.2f" % completed if completed is not None else "-",
                "%.0f" % result.uploaded.get(address, 0.0),
                "%.0f" % result.downloaded.get(address, 0.0),
            ]
        )
    print(ascii_table(["peer", "role", "done at (s)", "up (B)", "down (B)"], rows))
    print(
        "%d/%d peers complete in %.2f s wall clock"
        % (len(result.completed_at), len(result.addresses), result.duration)
    )
    if args.trace is not None:
        print("trace: %s (fingerprint %s)" % (args.trace, result.trace_fingerprint))
    if args.check:
        report = check_trace(recorder, num_pieces=args.pieces)
        print(
            "conformance: %s  %s"
            % (
                "OK" if report.ok else "%d VIOLATIONS" % len(report.violations),
                " ".join(
                    "%s=%d" % item for item in sorted(report.checks.items())
                ),
            )
        )
        for violation in report.violations[:10]:
            print("  " + violation)
        if not report.ok:
            return 1
    return 0 if result.all_complete else 1


def _cmd_model(args: argparse.Namespace) -> int:
    if args.open:
        seed_departure_rate = float("inf")
    else:
        seed_departure_rate = (
            1.0 / args.seed_stay if args.seed_stay > 0 else 0.0
        )
    model = FluidModel(
        arrival_rate=args.arrival_rate,
        upload_rate=args.upload / args.content,
        abort_rate=args.abort_rate,
        seed_departure_rate=seed_departure_rate,
        effectiveness=args.effectiveness,
        seed_capacity=args.seed_capacity,
    )
    states = model.integrate(duration=args.duration, dt=1.0)
    leechers = [s.leechers for s in states]
    seeds = [s.seeds for s in states]
    print("leechers: %s" % sparkline(leechers[:: max(1, len(leechers) // 60)]))
    print("seeds:    %s" % sparkline(seeds[:: max(1, len(seeds) // 60)]))
    equilibrium = model.steady_state()
    if equilibrium is not None:
        print(
            "steady state: x*=%.1f leechers, y*=%.1f seeds"
            % (equilibrium.leechers, equilibrium.seeds)
        )
        mean_dl = model.mean_download_time()
        if mean_dl is not None:
            print("mean download time: %.0f s" % mean_dl)
    else:
        print("no finite steady state (unstable: the backlog grows)")
    print(
        "final populations after %.0f s: %.1f leechers, %.1f seeds"
        % (args.duration, leechers[-1], seeds[-1])
    )
    return 0


def _parse_float_list(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _cmd_stability(args: argparse.Namespace) -> int:
    from repro.analysis.stability import phase_diagram

    policies = tuple(
        part.strip() for part in args.policies.split(",") if part.strip()
    )
    diagram = phase_diagram(
        arrival_rates=_parse_float_list(args.arrival_rates),
        seed_uploads=_parse_float_list(args.seed_uploads),
        policies=policies,
        torrent_id=args.torrent,
        cache_dir=args.cache_dir,
        workers=args.workers,
        campaign_seed=args.campaign_seed,
        duration=args.duration,
        timeout=args.timeout,
        progress=lambda message: print("  " + message),
    )
    rows = []
    for cell in diagram["cells"]:
        rows.append(
            [
                "%.3f" % cell["arrival_rate"],
                "%.0f" % cell["seed_upload"],
                cell["policy"],
                cell["sim"] or "-",
                cell["fluid"],
                "yes" if cell["agree"] else "NO",
            ]
        )
    print(
        ascii_table(
            ["arrival/s", "seed B/s", "policy", "sim", "fluid", "agree"], rows
        )
    )
    agreement = diagram["agreement"]
    print(
        "sim-vs-fluid agreement: %d/%d classified cells (%d total)"
        % (agreement["agreeing"], agreement["classified"], agreement["total"])
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(diagram, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output)
    classified = agreement["classified"]
    return 0 if classified and agreement["agreeing"] == classified else 1


def _cmd_tracker(args: argparse.Namespace) -> int:
    """``repro tracker serve``: the standalone announce server."""
    import asyncio
    import time

    from repro.tracker.service import AnnounceBudget, TrackerService
    from repro.tracker.server import TrackerServer

    budget = None
    if args.announce_budget is not None:
        budget = AnnounceBudget(announces_per_second=args.announce_budget)
    service_kwargs = {
        "seed": args.seed,
        "num_shards": args.shards,
        "budget": budget,
        "expiry_intervals": args.expiry_intervals,
    }
    if args.interval is not None:
        service_kwargs["interval"] = args.interval
    service = TrackerService.from_spec(
        time.monotonic, sampler_spec=args.sampler, **service_kwargs
    )
    udp_port = args.udp_port if args.udp_port is not None else args.port

    async def serve() -> None:
        server = TrackerServer(
            service, host=args.host, http_port=args.port, udp_port=udp_port
        )
        await server.start()
        reap_task = None
        if service.expiry_intervals is not None:
            # Periodic full-store sweep: lazy per-announce expiry only
            # reaps swarms that still see traffic, so the sweep is what
            # bounds registry growth for abandoned swarms.
            window = service.expiry_intervals * service.interval

            async def reap_loop() -> None:
                while True:
                    await asyncio.sleep(window)
                    reaped = service.reap()
                    if reaped:
                        print(
                            "reaped %d dead peers" % reaped, file=sys.stderr
                        )

            reap_task = asyncio.ensure_future(reap_loop())
        print(
            "tracker serving on http://%s:%d/announce and udp://%s:%d "
            "(%d shards, %s sampler%s)"
            % (
                args.host,
                server.http_port,
                args.host,
                server.udp_port,
                args.shards,
                service.sampler.spec(),
                ", budget %.0f ann/s" % args.announce_budget
                if budget is not None
                else "",
            ),
            file=sys.stderr,
        )
        try:
            while True:
                await asyncio.sleep(
                    args.stats_interval if args.stats_interval > 0 else 3600.0
                )
                if args.stats_interval > 0:
                    stats = service.stats()
                    print(
                        "stats: %d announces (%d shed, %d rejected), "
                        "%d swarms, %d peers"
                        % (
                            stats["announces"],
                            stats["shed"],
                            stats["rejected"],
                            stats["swarms"],
                            stats["peers"],
                        ),
                        file=sys.stderr,
                    )
        finally:
            if reap_task is not None:
                reap_task.cancel()
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("tracker stopped", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
