"""Idealised network-coding comparator (paper §IV-A.4)."""

from repro.coding.network_coding import CodingSwarm, CodingSwarmResult

__all__ = ["CodingSwarm", "CodingSwarmResult"]
