"""An idealised network-coding swarm, the upper-bound comparator.

The paper argues (§IV-A.4) that rarest first is already close to what a
network-coding solution would achieve on real torrents.  There is no
coding client to run against, so — exactly like the paper — we compare
against the *theoretical* behaviour of random linear network coding,
idealised in the replicator's favour:

* **interest is ideal by construction**: a peer B is interested in A
  whenever B is incomplete and A holds any information at all, because
  random recoding makes any transmission innovative with high
  probability;
* **piece identity disappears**: a peer's state is its *rank* — the
  number of useful (innovative) bytes received;
* **provenance still binds, globally**: no peer can absorb more
  information than the seeds have *released* into the swarm, so the
  initial seed remains the transient-state bottleneck, as it must (no
  code can reconstruct a k-piece content from fewer than k pieces of
  information — §IV-A.1).  Between leechers the model is maximally
  optimistic: recoding chains are assumed to route any released
  information to anyone, so a transfer is innovative whenever the
  downloader has not yet absorbed everything released.

Peer-set construction and the choke algorithm are identical to the main
simulator's, so the comparison isolates the piece-selection dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional

from repro.core.choke import ChokeCandidate, Choker, LeecherChoker, SeedChoker
from repro.core.rate_estimator import ByteCounter
from repro.sim.bandwidth import Flow, max_min_allocation
from repro.sim.config import PeerConfig, SwarmConfig
from repro.sim.engine import Simulator, Timer


@dataclass
class CodingSwarmResult:
    completions: Dict[str, float] = field(default_factory=dict)
    join_times: Dict[str, float] = field(default_factory=dict)
    duration: float = 0.0

    def download_time(self, name: str) -> Optional[float]:
        if name not in self.completions:
            return None
        return self.completions[name] - self.join_times.get(name, 0.0)

    def mean_download_time(self) -> Optional[float]:
        times = [
            self.download_time(name)
            for name in self.completions
            if self.download_time(name) is not None
        ]
        if not times:
            return None
        return sum(times) / len(times)


class _CodedPeer:
    """Rank-based peer state."""

    __slots__ = (
        "name",
        "config",
        "rank",
        "total_size",
        "neighbors",
        "unchoked",
        "counters_down",
        "counters_up",
        "last_unchoked",
        "choker_leecher",
        "choker_seed",
        "rng",
    )

    def __init__(
        self,
        name: str,
        config: PeerConfig,
        total_size: float,
        rank: float,
        rng: Random,
    ):
        self.name = name
        self.config = config
        self.rank = rank
        self.total_size = total_size
        self.neighbors: List["_CodedPeer"] = []
        self.unchoked: set = set()
        self.counters_down: Dict[str, ByteCounter] = {}
        self.counters_up: Dict[str, ByteCounter] = {}
        self.last_unchoked: Dict[str, float] = {}
        self.choker_leecher: Choker = LeecherChoker()
        self.choker_seed: Choker = SeedChoker()
        self.rng = rng

    @property
    def is_seed(self) -> bool:
        return self.rank >= self.total_size

    def interested_in(self, other: "_CodedPeer") -> bool:
        """Ideal coding interest: an incomplete peer is interested in any
        peer that holds information at all (recoding makes it innovative
        with high probability)."""
        return not self.is_seed and other.rank > 0


class CodingSwarm:
    """Runs the idealised coding protocol over a random peer graph."""

    def __init__(
        self,
        total_size: float,
        config: Optional[SwarmConfig] = None,
    ):
        self.total_size = total_size
        self.config = config or SwarmConfig()
        self.simulator = Simulator()
        self.rng = Random(self.config.seed)
        self.peers: Dict[str, _CodedPeer] = {}
        self.result = CodingSwarmResult()
        self.released = 0.0
        """Information (bytes) the seeds have pushed into the swarm so
        far, capped at the content size: the global provenance bound."""

    def add_peer(
        self,
        name: str,
        config: Optional[PeerConfig] = None,
        is_seed: bool = False,
    ) -> None:
        config = config or PeerConfig()
        peer = _CodedPeer(
            name,
            config,
            self.total_size,
            rank=self.total_size if is_seed else 0.0,
            rng=Random(self.rng.getrandbits(64)),
        )
        self.peers[name] = peer
        self.result.join_times[name] = self.simulator.now

    def _build_graph(self) -> None:
        names = sorted(self.peers)
        for name in names:
            peer = self.peers[name]
            others = [self.peers[n] for n in names if n != name]
            want = min(peer.config.max_peer_set, len(others))
            peer.neighbors = self.rng.sample(others, want)
        # Make adjacency symmetric, as BitTorrent connections are.
        for peer in self.peers.values():
            for neighbor in peer.neighbors:
                if peer not in neighbor.neighbors:
                    neighbor.neighbors.append(peer)

    def _choke_round(self, peer: _CodedPeer) -> None:
        now = self.simulator.now
        candidates = []
        for neighbor in peer.neighbors:
            down = peer.counters_down.get(neighbor.name)
            up = peer.counters_up.get(neighbor.name)
            candidates.append(
                ChokeCandidate(
                    key=neighbor.name,
                    interested=neighbor.interested_in(peer),
                    choked=neighbor.name not in peer.unchoked,
                    download_rate=down.rate(now) if down else 0.0,
                    upload_rate=up.rate(now) if up else 0.0,
                    uploaded_to=up.total if up else 0.0,
                    downloaded_from=down.total if down else 0.0,
                    last_unchoked=peer.last_unchoked.get(neighbor.name),
                )
            )
        choker = peer.choker_seed if peer.is_seed else peer.choker_leecher
        decision = choker.round(candidates, now, peer.rng)
        newly = set(decision.unchoked) - peer.unchoked
        peer.unchoked = set(decision.unchoked)
        for name in newly:
            peer.last_unchoked[name] = now

    def _tick(self) -> None:
        now = self.simulator.now
        dt = self.config.tick_interval
        flows: List[Flow] = []
        pairs: List[tuple] = []
        upload_caps = {}
        download_caps = {}
        for peer in self.peers.values():
            upload_caps[peer.name] = peer.config.upload_capacity
            if peer.config.download_capacity is not None:
                download_caps[peer.name] = peer.config.download_capacity
            for neighbor_name in peer.unchoked:
                neighbor = self.peers.get(neighbor_name)
                if neighbor is None or not neighbor.interested_in(peer):
                    continue
                flows.append(Flow(peer.name, neighbor.name))
                pairs.append((peer, neighbor))
        max_min_allocation(flows, upload_caps, download_caps)
        # Seeds inject fresh information first: the released pool grows by
        # whatever the seeds pushed this tick.
        for flow, (uploader, __) in zip(flows, pairs):
            if uploader.is_seed:
                self.released = min(
                    self.total_size, self.released + flow.rate * dt
                )
        for flow, (uploader, downloader) in zip(flows, pairs):
            transferred = flow.rate * dt
            if transferred <= 0:
                continue
            # Global provenance cap: nobody can absorb more than the
            # seeds have released into the swarm; leecher-to-leecher
            # exchange is otherwise assumed always innovative (recoding).
            transferred = min(
                transferred, max(0.0, self.released - downloader.rank)
            )
            if transferred <= 0:
                continue
            downloader.rank = min(downloader.rank + transferred, self.total_size)
            uploader.counters_up.setdefault(
                downloader.name, ByteCounter()
            ).add(now, transferred)
            downloader.counters_down.setdefault(
                uploader.name, ByteCounter()
            ).add(now, transferred)
            if downloader.is_seed and downloader.name not in self.result.completions:
                self.result.completions[downloader.name] = now

    def run(self, duration: float) -> CodingSwarmResult:
        self._build_graph()
        for peer in self.peers.values():
            phase = peer.rng.uniform(0.0, peer.config.choke_interval)
            Timer(
                self.simulator,
                peer.config.choke_interval,
                lambda p=peer: self._choke_round(p),
                start_at=self.simulator.now + phase,
            )
        Timer(self.simulator, self.config.tick_interval, self._tick)
        self.simulator.run_until(duration)
        self.result.duration = duration
        return self.result
