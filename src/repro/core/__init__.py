"""The paper's primary contribution: BitTorrent's two core algorithms.

* :mod:`repro.core.rarest_first` — the local rarest first piece-selection
  algorithm with its three auxiliary policies (random first, strict
  priority, end game mode) plus random / sequential / global-rarest
  baselines;
* :mod:`repro.core.piece_picker` — availability accounting, partial-piece
  tracking and block scheduling shared by every strategy;
* :mod:`repro.core.choke` — the choke peer-selection algorithm: leecher
  state, the *new* seed state (SKU/SRU round robin of mainline ≥ 4.0.0),
  the old rate-based seed state, and a bit-level tit-for-tat baseline;
* :mod:`repro.core.rate_estimator` — the sliding-window transfer-rate
  estimator feeding the choke algorithm;
* :mod:`repro.core.fairness` — the paper's two fairness criteria (§IV-B.1);
* :mod:`repro.core.free_rider` — free-riding client behaviour.
"""

from repro.core.choke import (
    ChokeDecision,
    Choker,
    LeecherChoker,
    OldSeedChoker,
    SeedChoker,
    TitForTatChoker,
)
from repro.core.fairness import (
    FairnessReport,
    leecher_fairness_violations,
    seed_service_uniformity,
)
from repro.core.piece_picker import PiecePicker
from repro.core.rarest_first import (
    GlobalRarestSelector,
    PieceSelector,
    ProportionalFairSelector,
    RandomSelector,
    RarestFirstSelector,
    SELECTOR_REGISTRY,
    SequentialSelector,
    SequentialWindowSelector,
    make_selector,
)
from repro.core.rate_estimator import RateEstimator

__all__ = [
    "ChokeDecision",
    "Choker",
    "FairnessReport",
    "GlobalRarestSelector",
    "LeecherChoker",
    "OldSeedChoker",
    "PiecePicker",
    "PieceSelector",
    "ProportionalFairSelector",
    "RandomSelector",
    "RarestFirstSelector",
    "RateEstimator",
    "SELECTOR_REGISTRY",
    "SeedChoker",
    "SequentialSelector",
    "SequentialWindowSelector",
    "TitForTatChoker",
    "leecher_fairness_violations",
    "make_selector",
    "seed_service_uniformity",
]
