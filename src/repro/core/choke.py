"""The choke algorithm: BitTorrent's peer-selection strategy.

Four interchangeable peer-selection strategies are provided, all driven by
a 10-second round clock (paper §II-C.2):

* :class:`LeecherChoker` — mainline's leecher-state algorithm: every
  round the interested remote peers are ordered by their download rate to
  the local peer and the 3 fastest are unchoked (*regular unchoke*, RU);
  every 3 rounds one additional interested peer is unchoked at random
  (*optimistic unchoke*, OU).
* :class:`SeedChoker` — the **new** seed-state algorithm of mainline
  ≥ 4.0.0: unchoked-and-interested peers are ordered by the time they
  were last unchoked, most recent first; for two consecutive rounds the
  3 most recent stay unchoked and a 4th choked-and-interested peer is
  unchoked at random (*seed random unchoke*, SRU); on the third round the
  4 most recent stay unchoked (*seed kept unchoked*, SKU).
* :class:`OldSeedChoker` — the pre-4.0.0 seed-state algorithm: identical
  to the leecher algorithm but ordered by upload rate *from* the local
  peer, which lets fast (possibly free-riding) downloaders monopolise a
  seed — the unfairness §IV-B.3 attributes to it.
* :class:`TitForTatChoker` — the bit-level tit-for-tat baseline the paper
  argues against (§IV-B.1): a peer refuses to upload to a remote whose
  byte deficit exceeds a threshold, so excess capacity is stranded.

Chokers are pure decision functions over :class:`ChokeCandidate`
snapshots, which keeps them unit-testable without a simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Hashable, List, Optional, Sequence

PeerKey = Hashable


@dataclass(frozen=True)
class ChokeCandidate:
    """Snapshot of one remote peer as seen at a choke round."""

    key: PeerKey
    interested: bool
    """Whether the remote peer is interested in the local peer."""

    choked: bool
    """Whether the local peer currently chokes the remote peer."""

    download_rate: float = 0.0
    """Short-term rate remote → local (bytes/s), from the rate estimator."""

    upload_rate: float = 0.0
    """Short-term rate local → remote (bytes/s)."""

    uploaded_to: float = 0.0
    """Total bytes the local peer uploaded to this remote."""

    downloaded_from: float = 0.0
    """Total bytes the local peer downloaded from this remote."""

    last_unchoked: Optional[float] = None
    """Time the local peer last unchoked this remote, None if never."""


@dataclass
class ChokeDecision:
    """The outcome of one choke round: who ends up unchoked."""

    unchoked: List[PeerKey] = field(default_factory=list)
    optimistic: Optional[PeerKey] = None
    """The OU/SRU slot holder this round, when the algorithm has one."""

    def __contains__(self, key: PeerKey) -> bool:
        return key in self.unchoked


class Choker(ABC):
    """A peer-selection strategy, invoked once per 10-second round."""

    name = "abstract"

    @abstractmethod
    def round(
        self,
        candidates: Sequence[ChokeCandidate],
        now: float,
        rng: Random,
    ) -> ChokeDecision:
        """Decide the unchoked set for this round."""

    def reset(self) -> None:
        """Forget internal state (used on leecher→seed transitions)."""

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class LeecherChoker(Choker):
    """Mainline leecher-state choke: 3 RU by download rate + 1 OU."""

    name = "leecher"

    def __init__(self, regular_slots: int = 3, optimistic_rounds: int = 3):
        if regular_slots < 1:
            raise ValueError("need at least one regular slot")
        if optimistic_rounds < 1:
            raise ValueError("optimistic_rounds must be >= 1")
        self._regular_slots = regular_slots
        self._optimistic_rounds = optimistic_rounds
        self._round_index = 0
        self._optimistic: Optional[PeerKey] = None

    def reset(self) -> None:
        self._round_index = 0
        self._optimistic = None

    def round(
        self,
        candidates: Sequence[ChokeCandidate],
        now: float,
        rng: Random,
    ) -> ChokeDecision:
        interested = [c for c in candidates if c.interested]
        # Regular unchoke: the fastest peers *to* the local peer.  Ties are
        # broken by key order for determinism.
        ranked = sorted(
            interested, key=lambda c: (-c.download_rate, _sort_key(c.key))
        )
        regular = [c.key for c in ranked[: self._regular_slots]]

        rotate = self._round_index % self._optimistic_rounds == 0
        self._round_index += 1
        present = {c.key for c in interested}
        if self._optimistic not in present:
            self._optimistic = None  # holder left or lost interest
        if self._optimistic in regular:
            # The optimistic peer earned a regular slot; free the OU slot
            # so another peer gets a chance this rotation.
            self._optimistic = None
            rotate = True
        if rotate or self._optimistic is None:
            pool = [c.key for c in interested if c.key not in regular]
            self._optimistic = rng.choice(pool) if pool else None

        unchoked = list(regular)
        if self._optimistic is not None:
            unchoked.append(self._optimistic)
        return ChokeDecision(unchoked=unchoked, optimistic=self._optimistic)


class SeedChoker(Choker):
    """The new (mainline >= 4.0.0) seed-state choke: SKU/SRU round robin.

    Peers are ranked by the time they were last unchoked (most recent
    first), *not* by any transfer rate, so every leecher gets the same
    service time from the seed and a fast free rider cannot monopolise it.
    Each new SRU peer takes an unchoke slot off the oldest SKU peer.
    """

    name = "seed-new"

    def __init__(self, slots: int = 4, random_rounds: Sequence[int] = (0, 1)):
        if slots < 2:
            raise ValueError("seed choke needs at least 2 slots")
        self._slots = slots
        self._random_rounds = frozenset(random_rounds)
        self._round_index = 0
        self._last_unchoked: Dict[PeerKey, float] = {}

    def reset(self) -> None:
        self._round_index = 0
        self._last_unchoked.clear()

    def round(
        self,
        candidates: Sequence[ChokeCandidate],
        now: float,
        rng: Random,
    ) -> ChokeDecision:
        interested = [c for c in candidates if c.interested]
        present = {c.key for c in interested}
        for key in list(self._last_unchoked):
            if key not in present:
                del self._last_unchoked[key]

        # Order the currently unchoked-and-interested peers by last-unchoke
        # time, most recently unchoked first (step 1 of §II-C.2).
        unchoked_now = [c for c in interested if not c.choked]
        ranked = sorted(
            unchoked_now,
            key=lambda c: (
                -(self._last_unchoked.get(c.key, c.last_unchoked or 0.0)),
                _sort_key(c.key),
            ),
        )

        phase = self._round_index % (len(self._random_rounds) + 1)
        self._round_index += 1

        decision = ChokeDecision()
        if phase in self._random_rounds or not ranked:
            # Keep the 3 most recently unchoked, add one random
            # choked-and-interested peer (the SRU peer).
            kept = [c.key for c in ranked[: self._slots - 1]]
            pool = [c.key for c in interested if c.choked and c.key not in kept]
            sru = rng.choice(pool) if pool else None
            if sru is not None:
                decision.unchoked = kept + [sru]
                decision.optimistic = sru
                self._last_unchoked[sru] = now
            else:
                # No choked-and-interested peer to promote: keep the full
                # ``slots`` ranked peers rather than idling one upload
                # slot for the round.
                decision.unchoked = [c.key for c in ranked[: self._slots]]
        else:
            # Third period: keep the 4 most recently unchoked.
            decision.unchoked = [c.key for c in ranked[: self._slots]]
        for key in decision.unchoked:
            self._last_unchoked.setdefault(key, now)
        return decision


class OldSeedChoker(Choker):
    """Pre-4.0.0 seed-state choke: like the leecher algorithm but ordered
    by upload rate from the local peer.

    "With this algorithm, peers with a high download rate are favored
    independently of their contribution to the torrent." (§II-C.2)
    """

    name = "seed-old"

    def __init__(self, regular_slots: int = 3, optimistic_rounds: int = 3):
        self._regular_slots = regular_slots
        self._optimistic_rounds = optimistic_rounds
        self._round_index = 0
        self._optimistic: Optional[PeerKey] = None

    def reset(self) -> None:
        self._round_index = 0
        self._optimistic = None

    def round(
        self,
        candidates: Sequence[ChokeCandidate],
        now: float,
        rng: Random,
    ) -> ChokeDecision:
        interested = [c for c in candidates if c.interested]
        ranked = sorted(
            interested, key=lambda c: (-c.upload_rate, _sort_key(c.key))
        )
        regular = [c.key for c in ranked[: self._regular_slots]]
        rotate = self._round_index % self._optimistic_rounds == 0
        self._round_index += 1
        present = {c.key for c in interested}
        if self._optimistic not in present or self._optimistic in regular:
            self._optimistic = None
            rotate = True
        if rotate or self._optimistic is None:
            pool = [c.key for c in interested if c.key not in regular]
            self._optimistic = rng.choice(pool) if pool else None
        unchoked = list(regular)
        if self._optimistic is not None:
            unchoked.append(self._optimistic)
        return ChokeDecision(unchoked=unchoked, optimistic=self._optimistic)


class TitForTatChoker(Choker):
    """Bit-level tit-for-tat baseline (§IV-B.1).

    A remote peer is eligible for an unchoke slot only while the local
    peer's byte *deficit* toward it — bytes uploaded minus bytes
    downloaded — stays below ``deficit_threshold``.  Eligible peers are
    ranked by download rate.  The threshold acts as a bootstrap
    allowance; once a free rider has consumed it, it is never served
    again, and a leecher with asymmetric (slow-upload) connectivity can
    never download faster than its own upload rate plus the allowance —
    precisely the behaviours the paper's two fairness criteria reject.
    """

    name = "tit-for-tat"

    def __init__(self, deficit_threshold: float, slots: int = 4):
        if deficit_threshold < 0:
            raise ValueError("deficit_threshold must be non-negative")
        self._threshold = deficit_threshold
        self._slots = slots

    def round(
        self,
        candidates: Sequence[ChokeCandidate],
        now: float,
        rng: Random,
    ) -> ChokeDecision:
        eligible = [
            c
            for c in candidates
            if c.interested and (c.uploaded_to - c.downloaded_from) < self._threshold
        ]
        ranked = sorted(
            eligible, key=lambda c: (-c.download_rate, _sort_key(c.key))
        )
        return ChokeDecision(unchoked=[c.key for c in ranked[: self._slots]])


def _sort_key(key: PeerKey):
    """Stable tiebreak for heterogeneous peer keys."""
    return str(key)
