"""The paper's two fairness criteria (§IV-B.1).

The paper rejects bit-level tit-for-tat fairness and proposes instead:

1. **Leecher criterion** — any leecher *i* with upload speed ``U_i``
   should get a *lower* download speed than any other leecher *j* with
   upload speed ``U_j > U_i``: contribution orders service, but excess
   capacity may still flow to slow contributors and even free riders.
2. **Seed criterion** — a seed should give the *same service time* to
   each leecher.

This module turns both into measurable quantities over experiment
outcomes; the analysis layer feeds it per-peer transfer totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Mapping, Sequence, Tuple

PeerKey = Hashable


@dataclass(frozen=True)
class FairnessReport:
    """Summary of both criteria for one experiment."""

    leecher_violations: int
    """Number of leecher pairs (i, j) with U_j > U_i but D_j < D_i."""

    leecher_pairs: int
    """Number of comparable pairs examined."""

    seed_service_jain: float
    """Jain fairness index of per-leecher service received from seeds
    (1.0 = perfectly equal service time)."""

    @property
    def leecher_violation_ratio(self) -> float:
        if self.leecher_pairs == 0:
            return 0.0
        return self.leecher_violations / self.leecher_pairs


def leecher_fairness_violations(
    upload_speed: Mapping[PeerKey, float],
    download_speed: Mapping[PeerKey, float],
    tolerance: float = 0.05,
) -> Tuple[int, int]:
    """Count violations of the leecher criterion.

    A pair (i, j) with ``U_j > U_i`` (beyond *tolerance*, relative) counts
    as a violation when ``D_j < D_i`` (beyond the same tolerance).
    Returns ``(violations, comparable_pairs)``.
    """
    keys = sorted(upload_speed, key=str)
    violations = 0
    pairs = 0
    for index, i in enumerate(keys):
        for j in keys[index + 1 :]:
            u_i, u_j = upload_speed[i], upload_speed[j]
            if u_i == u_j:
                continue
            slow, fast = (i, j) if u_i < u_j else (j, i)
            if upload_speed[fast] <= upload_speed[slow] * (1 + tolerance):
                continue
            pairs += 1
            d_slow = download_speed.get(slow, 0.0)
            d_fast = download_speed.get(fast, 0.0)
            if d_fast < d_slow * (1 - tolerance):
                violations += 1
    return violations, pairs


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]."""
    values = [v for v in values if not math.isnan(v)]
    if not values:
        return 1.0
    total = sum(values)
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    return (total * total) / (len(values) * square_sum)


def seed_service_uniformity(service_bytes: Mapping[PeerKey, float]) -> float:
    """Jain index of the per-leecher bytes served by a seed.

    The new seed-state choke algorithm should push this toward 1; the old
    rate-based one concentrates service on the fastest peers and scores
    much lower.
    """
    return jain_index(list(service_bytes.values()))


def contribution_sets(
    totals: Mapping[PeerKey, float], set_size: int = 5, num_sets: int = 6
) -> List[float]:
    """The paper's figures 9/11 aggregation: rank peers by bytes received
    from the local peer, group them in consecutive sets of ``set_size``,
    and return each set's share of the grand total.

    Peers beyond ``num_sets * set_size`` are ignored, as in the figures
    (sets go "from black for the set containing the 5 best remote
    downloaders, to white for the set containing the 25 to 30 best").
    """
    ranked = sorted(totals.items(), key=lambda item: (-item[1], str(item[0])))
    grand_total = sum(totals.values())
    shares: List[float] = []
    for set_index in range(num_sets):
        chunk = ranked[set_index * set_size : (set_index + 1) * set_size]
        chunk_bytes = sum(value for __, value in chunk)
        shares.append(chunk_bytes / grand_total if grand_total > 0 else 0.0)
    return shares


def reciprocation_shares(
    uploaded_to: Mapping[PeerKey, float],
    downloaded_from: Mapping[PeerKey, float],
    set_size: int = 5,
    num_sets: int = 6,
) -> Tuple[List[float], List[float]]:
    """Figure 9's paired view: group peers by bytes *uploaded to* them,
    then report each group's share of bytes uploaded (top graph) and of
    bytes downloaded from leechers (bottom graph).

    The same grouping is used for both directions, which is what exposes
    reciprocation: if choke reciprocates, the black set dominates both.
    """
    ranked = sorted(uploaded_to.items(), key=lambda item: (-item[1], str(item[0])))
    up_total = sum(uploaded_to.values())
    down_total = sum(downloaded_from.get(key, 0.0) for key in uploaded_to)
    up_shares: List[float] = []
    down_shares: List[float] = []
    for set_index in range(num_sets):
        chunk = ranked[set_index * set_size : (set_index + 1) * set_size]
        chunk_up = sum(value for __, value in chunk)
        chunk_down = sum(downloaded_from.get(key, 0.0) for key, __ in chunk)
        up_shares.append(chunk_up / up_total if up_total > 0 else 0.0)
        down_shares.append(chunk_down / down_total if down_total > 0 else 0.0)
    return up_shares, down_shares


def fairness_report(
    upload_speed: Mapping[PeerKey, float],
    download_speed: Mapping[PeerKey, float],
    seed_service: Mapping[PeerKey, float],
    tolerance: float = 0.05,
) -> FairnessReport:
    """Evaluate both criteria at once."""
    violations, pairs = leecher_fairness_violations(
        upload_speed, download_speed, tolerance
    )
    return FairnessReport(
        leecher_violations=violations,
        leecher_pairs=pairs,
        seed_service_jain=seed_service_uniformity(seed_service),
    )
