"""Free-riding client behaviour.

The paper defines free riders as "peers that never upload" (§I, §IV-B.1)
and evaluates how well the choke algorithm penalises them.  In the
simulator a free rider is a regular client whose *behaviour policy*
refuses every upload: it keeps every remote peer choked regardless of the
configured choker, while downloading wherever it gets unchoked (through
optimistic unchokes and seed random unchokes).
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.core.choke import ChokeCandidate, ChokeDecision, Choker


class FreeRiderChoker(Choker):
    """Never unchokes anyone: the canonical free rider."""

    name = "free-rider"

    def round(
        self,
        candidates: Sequence[ChokeCandidate],
        now: float,
        rng: Random,
    ) -> ChokeDecision:
        return ChokeDecision(unchoked=[])
