"""Piece/block scheduling shared by every piece-selection strategy.

The picker owns four responsibilities (paper §II-C.1):

1. **Availability accounting** — the number of copies of each piece in
   the local peer set, updated on every BITFIELD/HAVE message and on
   every peer departure; it also derives the *rarest pieces set* metric
   plotted in the paper's figures 3 and 6.
2. **Random first policy** — while the local peer holds fewer than
   ``random_first_threshold`` pieces (4 by default), new pieces are
   chosen uniformly at random instead of by the configured strategy, so
   a newcomer gets its first pieces (and something to reciprocate with)
   quickly.
3. **Strict priority** — once a block of a piece is requested, remaining
   blocks of that piece are requested with highest priority, minimising
   the number of partially received (hence unserveable) pieces.
4. **End game mode** — once every missing block is either received or
   requested, outstanding blocks are requested from *every* peer that
   offers them, with CANCELs on receipt.

Scaling note: availability is kept both as a flat count array and as a
:class:`RarityIndex` — pieces bucketed by copy count — so the rarest
pieces set and rarest-first selection cost O(rarest bucket) instead of
O(num_pieces) per call.  A second index restricted to *wanted* pieces
(missing and not yet started) feeds selection directly.  The indexed
path is behaviour-preserving: given the same seed it consumes the RNG
identically and produces the same piece-selection trace as the naive
scan (``use_rarity_index=False``), which tests assert.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from operator import neg
from random import Random
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.rarest_first import PieceSelector, RandomSelector
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import BlockRef, PieceGeometry

try:  # numpy is optional; the matrix backend is gated on it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

HAVE_NUMPY = _np is not None

PeerKey = Hashable

# Sentinel larger than any real copy count, used to mask out ineligible
# pieces in the vectorized rarest-first selection.
_COUNT_SENTINEL = 2**31 - 1


def _unpacked_bits(bitfield: Bitfield):
    """A bitfield's pieces as a 0/1 uint8 vector (numpy only)."""
    return _np.unpackbits(
        _np.frombuffer(bitfield.to_bytes(), dtype=_np.uint8),
        count=bitfield.num_pieces,
    )


class AvailabilityMatrix:
    """Swarm-shared availability counts: one int32 row per online peer.

    Each matrix-backed :class:`PiecePicker` owns one row (its *slot*) and
    reads/writes it through this object — never through a cached view,
    because the backing array is reallocated when the matrix grows.  The
    payoff is at the swarm layer: a completed piece's HAVE flood updates
    every receiver's availability with a single fancy-indexed increment
    (:meth:`increment`) instead of per-receiver python bookkeeping, and
    whole-bitfield accounting on connection open/close is one vector add
    per peer instead of one call per piece.
    """

    def __init__(self, num_pieces: int, capacity: int = 64):
        if _np is None:
            raise RuntimeError("AvailabilityMatrix requires numpy")
        if capacity < 1:
            capacity = 1
        self.num_pieces = num_pieces
        self.data = _np.zeros((capacity, num_pieces), dtype=_np.int32)
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    def acquire(self) -> int:
        """Claim a zeroed row; the matrix doubles when full."""
        if not self._free:
            old = self.data
            grown = _np.zeros((old.shape[0] * 2, self.num_pieces), old.dtype)
            grown[: old.shape[0]] = old
            self.data = grown
            self._free = list(
                range(grown.shape[0] - 1, old.shape[0] - 1, -1)
            )
        slot = self._free.pop()
        self.data[slot].fill(0)
        return slot

    def release(self, slot: int) -> None:
        self.data[slot].fill(0)
        self._free.append(slot)

    def increment(self, slots: List[int], piece: int) -> None:
        """``data[slot, piece] += 1`` for every (unique) slot at once."""
        self.data[slots, piece] += 1


class RarityIndex:
    """Piece indices bucketed by copy count (availability).

    The bucket map only holds non-empty buckets, so the minimum occupied
    count is ``min`` over at most ``distinct counts`` keys — in a swarm
    that is bounded by the peer-set size, not by the piece count.  Every
    mutation is O(1); :meth:`rarest` is O(rarest bucket) for the sort
    that keeps its output identical to the naive ascending scan.
    """

    __slots__ = ("_buckets",)

    def __init__(self, members: Iterable[int] = (), count: int = 0):
        self._buckets: Dict[int, Set[int]] = {}
        initial = set(members)
        if initial:
            self._buckets[count] = initial

    def add(self, piece: int, count: int) -> None:
        self._buckets.setdefault(count, set()).add(piece)

    def remove(self, piece: int, count: int) -> None:
        bucket = self._buckets[count]
        bucket.remove(piece)
        if not bucket:
            del self._buckets[count]

    def move(self, piece: int, old_count: int, new_count: int) -> None:
        # Open-coded remove+add: this runs once (twice with the wanted
        # index) for every HAVE in the swarm, so call overhead matters.
        buckets = self._buckets
        bucket = buckets[old_count]
        bucket.remove(piece)
        if not bucket:
            del buckets[old_count]
        target = buckets.get(new_count)
        if target is None:
            buckets[new_count] = {piece}
        else:
            target.add(piece)

    def is_empty(self) -> bool:
        return not self._buckets

    def min_count(self) -> int:
        """Smallest occupied copy count (ValueError when empty)."""
        return min(self._buckets)

    def rarest(self) -> Tuple[int, List[int]]:
        """(m, sorted pieces with m copies): the rarest occupied bucket."""
        rarest_count = min(self._buckets)
        return rarest_count, sorted(self._buckets[rarest_count])

    def ascending(self) -> Iterator[Tuple[int, Set[int]]]:
        """Iterate (count, bucket) pairs from rarest to most replicated."""
        for count in sorted(self._buckets):
            yield count, self._buckets[count]

    def snapshot(self) -> Dict[int, Set[int]]:
        """Copy of the bucket map (for tests and debugging)."""
        return {count: set(bucket) for count, bucket in self._buckets.items()}


@dataclass
class _PartialPiece:
    """Download state of one in-progress piece.

    Invariant: every block index is in exactly one of ``received``,
    ``requested`` or ``unrequested`` (``requested`` holds in-flight blocks
    with the set of peers asked; during end game a received block may have
    straggler duplicates, which are dropped on receipt).
    """

    blocks: List[BlockRef]
    received: Set[int] = field(default_factory=set)
    requested: Dict[int, Set[PeerKey]] = field(default_factory=dict)
    unrequested: List[int] = field(default_factory=list)
    """Block indices not yet requested, sorted in DESCENDING index order
    so the next block (the lowest offset) pops from the end in O(1)."""

    def __post_init__(self) -> None:
        if not self.received and not self.requested and not self.unrequested:
            self.unrequested = list(range(len(self.blocks) - 1, -1, -1))

    def is_complete(self) -> bool:
        return len(self.received) == len(self.blocks)

    def pop_unrequested(self, peer_key: PeerKey) -> Optional[int]:
        """Move the lowest-offset unrequested block to in-flight."""
        if not self.unrequested:
            return None
        index = self.unrequested.pop()
        self.requested[index] = {peer_key}
        return index

    def release(self, index: int) -> None:
        """Return an in-flight block to the unrequested pool (in order)."""
        del self.requested[index]
        insort(self.unrequested, index, key=neg)


class PiecePicker:
    """Block scheduler for one downloading peer."""

    def __init__(
        self,
        geometry: PieceGeometry,
        bitfield: Bitfield,
        selector: PieceSelector,
        rng: Random,
        random_first_threshold: int = 4,
        strict_priority: bool = True,
        endgame_enabled: bool = True,
        use_rarity_index: bool = True,
        matrix: Optional[AvailabilityMatrix] = None,
        matrix_slot: Optional[int] = None,
    ):
        self._geometry = geometry
        self._bitfield = bitfield
        self._selector = selector
        self._random_selector = RandomSelector()
        self._rng = rng
        self._random_first_threshold = random_first_threshold
        self._strict_priority = strict_priority
        self._endgame_enabled = endgame_enabled
        self._active: Dict[int, _PartialPiece] = {}
        self._endgame = False
        # Availability backend: "matrix" (swarm-shared numpy rows, the
        # mega-swarm fast path), "index" (per-picker rarity buckets) or
        # "naive" (flat list + full scans).  All three consume the RNG
        # identically and yield the same selections.
        if matrix is not None:
            if matrix_slot is None:
                matrix_slot = matrix.acquire()
            self._backend = "matrix"
        elif use_rarity_index:
            self._backend = "index"
        else:
            self._backend = "naive"
        self._matrix = matrix
        self._slot = matrix_slot
        self._availability = (
            [0] * geometry.num_pieces if matrix is None else None
        )
        # Active partials that still hold unrequested blocks; with the
        # active-piece and missing-piece counts this makes the end-game
        # trigger test O(1) instead of O(missing pieces).
        self._open_partials = 0
        # The bitfield's piece set is mutated in place for the picker's
        # whole lifetime, so one membership view can be cached up front.
        self._local_have = bitfield.have_set
        if self._backend == "index":
            self._all_index = RarityIndex(range(geometry.num_pieces))
            self._wanted_index = RarityIndex(bitfield.missing_indices())
        else:
            self._all_index = None
            self._wanted_index = None
        if self._backend == "matrix":
            # Wanted = missing and not yet started; availability plays no
            # part in maintaining it, so it is a plain boolean mask.  The
            # same mask is mirrored as one big integer in the
            # ``Bitfield.as_int`` bit order (piece 0 at the MSB): testing
            # whether a remote offers *anything* wanted is then a single
            # C-speed AND against ``remote_bitfield.as_int()``, which
            # short-circuits the vectorized selection's common miss case.
            self._wanted_mask = _unpacked_bits(bitfield) == 0
            self._wanted_top = len(bitfield.to_bytes()) * 8 - 1
            self._wanted_int = int.from_bytes(
                _np.packbits(self._wanted_mask).tobytes(), "big"
            )
        else:
            self._wanted_mask = None
        # Mode-suppression selectors judge offers against the rarest
        # *wanted* copy count; bind the backend-independent oracle the
        # same way peers bind playback positions into their selectors.
        bind_scarcity = getattr(selector, "bind_scarcity", None)
        if bind_scarcity is not None:
            bind_scarcity(self.wanted_scarcity)

    # ------------------------------------------------------------------
    # availability accounting
    # ------------------------------------------------------------------

    @property
    def availability(self) -> Sequence[int]:
        """Copies of each piece in the local peer set (read-only view)."""
        if self._backend == "matrix":
            return tuple(self._matrix.data[self._slot].tolist())
        return tuple(self._availability)

    @property
    def selector(self) -> PieceSelector:
        return self._selector

    @property
    def uses_rarity_index(self) -> bool:
        return self._backend != "naive"

    @property
    def availability_backend(self) -> str:
        return self._backend

    @property
    def matrix_slot(self) -> Optional[int]:
        """This picker's row in the swarm availability matrix, or None."""
        return self._slot

    def detach_matrix(self) -> None:
        """Release the matrix row (peer cleanly departed).  Idempotent; any
        later availability access fails loudly rather than corrupting the
        slot's next owner.  Only call when the counts are zero (a clean
        leave decrements per closed connection); a *crashed* peer keeps its
        row so a rejoin sees the same stale counts the list backend would.
        """
        if self._matrix is not None and self._slot is not None:
            self._matrix.release(self._slot)
        self._matrix = None
        self._slot = None

    def attach_matrix(self, matrix: "AvailabilityMatrix") -> None:
        """Re-acquire a (zeroed) matrix row after :meth:`detach_matrix`,
        for a peer rejoining the swarm.  No-op while still attached."""
        if self._backend != "matrix":
            raise RuntimeError(
                "attach_matrix on a %r-backend picker" % (self._backend,)
            )
        if self._matrix is not None:
            return
        self._matrix = matrix
        self._slot = matrix.acquire()

    @property
    def in_endgame(self) -> bool:
        return self._endgame

    def _availability_delta(self, piece: int, delta: int) -> None:
        if self._backend == "matrix":
            row = self._matrix.data[self._slot]
            new_count = int(row[piece]) + delta
            if new_count < 0:
                raise RuntimeError("negative availability for piece %d" % piece)
            row[piece] = new_count
            return
        old_count = self._availability[piece]
        new_count = old_count + delta
        if new_count < 0:
            raise RuntimeError("negative availability for piece %d" % piece)
        self._availability[piece] = new_count
        if self._backend == "index":
            self._all_index.move(piece, old_count, new_count)
            if piece not in self._local_have and piece not in self._active:
                self._wanted_index.move(piece, old_count, new_count)

    def peer_joined(self, remote_bitfield: Bitfield) -> None:
        """Account a new peer's full bitfield."""
        if self._backend == "matrix":
            self._matrix.data[self._slot] += _unpacked_bits(remote_bitfield)
            return
        for piece in remote_bitfield.have_indices():
            self._availability_delta(piece, +1)

    def peer_left(self, remote_bitfield: Bitfield) -> None:
        """Remove a departed peer's contribution to the counts."""
        if self._backend == "matrix":
            row = self._matrix.data[self._slot]
            row -= _unpacked_bits(remote_bitfield)
            if row.min() < 0:
                raise RuntimeError("negative availability after peer left")
            return
        for piece in remote_bitfield.have_indices():
            self._availability_delta(piece, -1)

    def remote_has(self, piece: int) -> None:
        """Account one HAVE message."""
        self._availability_delta(piece, +1)

    def wanted_scarcity(self) -> Optional[int]:
        """Copies of the rarest *wanted* piece (missing and not yet
        started), or ``None`` when nothing is wanted.

        This is the scarcity oracle mode-suppression selectors compare
        offers against; all three availability backends compute the
        identical value, so binding it never perturbs trace
        equivalence.
        """
        if self._backend == "index":
            if self._wanted_index.is_empty():
                return None
            return self._wanted_index.min_count()
        if self._backend == "matrix":
            counts = self._matrix.data[self._slot][self._wanted_mask]
            if not counts.size:
                return None
            return int(counts.min())
        best: Optional[int] = None
        for piece in self._bitfield.missing_indices():
            if piece in self._active:
                continue
            count = self._availability[piece]
            if best is None or count < best:
                best = count
        return best

    def rarest_pieces_set(self) -> Tuple[int, List[int]]:
        """(m, pieces-with-m-copies): the paper's rarest pieces set.

        Computed over every piece of the torrent, as in §II-A ("the pieces
        that have the least number of copies in the peer set").
        """
        if self._backend == "matrix":
            counts = self._matrix.data[self._slot]
            rarest_count = int(counts.min())
            return rarest_count, _np.nonzero(counts == rarest_count)[0].tolist()
        if self._backend == "index":
            return self._all_index.rarest()
        rarest_count = min(self._availability)
        pieces = [
            piece
            for piece, count in enumerate(self._availability)
            if count == rarest_count
        ]
        return rarest_count, pieces

    # ------------------------------------------------------------------
    # request scheduling
    # ------------------------------------------------------------------

    def next_request(
        self, remote_bitfield: Bitfield, peer_key: PeerKey
    ) -> Optional[BlockRef]:
        """Choose the next block to request from the peer ``peer_key``.

        Returns ``None`` when the remote offers nothing requestable.  The
        caller is responsible for pipelining (calling repeatedly until the
        pipeline is full or ``None`` is returned).
        """
        if self._open_partials:
            # When no active piece has an unrequested block left the
            # strict-priority scan cannot yield anything; skip it.
            block = self._strict_priority_block(remote_bitfield, peer_key)
            if block is not None:
                return block
        if (
            self._backend == "matrix"
            and self._strict_priority
            and self._bitfield._count >= self._random_first_threshold
        ):
            # Flattened miss path: when nothing wanted intersects the
            # remote's pieces no new piece can start and no selector draws
            # any randomness (the naive scan would build an empty candidate
            # list; _select_from_matrix runs the same exact test three
            # calls deeper), which is the overwhelmingly common outcome on
            # a busy link.  Valid for every strategy, indexed or not.
            if self._wanted_int & remote_bitfield.as_int():
                block = self._start_new_piece(remote_bitfield, peer_key)
                if block is not None:
                    return block
        else:
            block = self._start_new_piece(remote_bitfield, peer_key)
            if block is not None:
                return block
        if self._endgame_enabled and self._all_blocks_requested():
            self._endgame = True
            return self._endgame_block(remote_bitfield, peer_key)
        return None

    def _pop_block(self, partial: _PartialPiece, peer_key: PeerKey) -> int:
        """Pop the next unrequested block, maintaining the open count."""
        index = partial.pop_unrequested(peer_key)
        if not partial.unrequested:
            self._open_partials -= 1
        return index

    def _release_block(self, partial: _PartialPiece, index: int) -> None:
        """Return a block to the unrequested pool, maintaining the count."""
        if not partial.unrequested:
            self._open_partials += 1
        partial.release(index)

    def _strict_priority_block(
        self, remote_bitfield: Bitfield, peer_key: PeerKey
    ) -> Optional[BlockRef]:
        """First unrequested block of an already-started piece the remote has."""
        if not self._strict_priority:
            return None
        remote_bits = remote_bitfield._bits
        for piece, partial in self._active.items():
            if partial.unrequested and remote_bits[piece >> 3] & (
                0x80 >> (piece & 7)
            ):
                block_index = self._pop_block(partial, peer_key)
                return partial.blocks[block_index]
        return None

    def _start_new_piece(
        self, remote_bitfield: Bitfield, peer_key: PeerKey
    ) -> Optional[BlockRef]:
        piece = self._select_new_piece(remote_bitfield)
        if piece is None:
            # Without strict priority, fall back to any startable block of
            # an active piece so progress is still possible.
            if not self._strict_priority:
                return self._any_active_block(remote_bitfield, peer_key)
            return None
        partial = _PartialPiece(blocks=self._geometry.blocks(piece))
        self._active[piece] = partial
        self._open_partials += 1
        if self._backend == "index":
            self._wanted_index.remove(piece, self._availability[piece])
        elif self._backend == "matrix":
            self._wanted_mask[piece] = False
            self._wanted_int &= ~(1 << (self._wanted_top - piece))
        block_index = self._pop_block(partial, peer_key)
        return partial.blocks[block_index]

    def _select_new_piece(self, remote_bitfield: Bitfield) -> Optional[int]:
        """Pick the next piece to start, or None when nothing is startable."""
        random_first = self._bitfield.count < self._random_first_threshold
        if not random_first and self._selector.uses_rarity_index:
            if self._backend == "index":
                return self._selector.select_indexed(
                    self._wanted_index, remote_bitfield, self._rng
                )
            if self._backend == "matrix" and self._selector.matrix_vectorized:
                # Only rarest first may be replaced by the vectorized
                # matrix kernel; any other indexed strategy must keep its
                # own policy and falls through to the candidate scan over
                # the matrix row (the indexed wanted buckets do not exist
                # on this backend).
                return self._select_from_matrix(remote_bitfield)
        candidates = [
            piece
            for piece in self._bitfield.pieces_only_in(remote_bitfield)
            if piece not in self._active
        ]
        if not candidates:
            return None
        selector = self._random_selector if random_first else self._selector
        availability = (
            self._matrix.data[self._slot]
            if self._backend == "matrix"
            else self._availability
        )
        return selector.select(candidates, availability, self._rng)

    def _select_from_matrix(self, remote_bitfield: Bitfield) -> Optional[int]:
        """Vectorized rarest-first over wanted pieces the remote offers.

        RNG-identical to ``RarestFirstSelector.select_indexed``: both draw
        one ``rng.choice`` over the ascending list of eligible pieces in
        the rarest occupied bucket, and neither draws when nothing is
        eligible.
        """
        # Common miss case first, at big-int speed: nothing wanted that
        # the remote offers means no selection and — crucially — no RNG
        # draw, so the short-circuit is trace-exact.
        if not self._wanted_int & remote_bitfield.as_int():
            return None
        eligible = self._wanted_mask & (_unpacked_bits(remote_bitfield) != 0)
        counts = self._matrix.data[self._slot]
        masked = _np.where(eligible, counts, _COUNT_SENTINEL)
        ties = _np.flatnonzero(masked == masked.min()).tolist()
        return self._rng.choice(ties)

    def _any_active_block(
        self, remote_bitfield: Bitfield, peer_key: PeerKey
    ) -> Optional[BlockRef]:
        for piece, partial in self._active.items():
            if not partial.unrequested or not remote_bitfield.has(piece):
                continue
            block_index = self._pop_block(partial, peer_key)
            return partial.blocks[block_index]
        return None

    def _all_blocks_requested(self) -> bool:
        """True when every missing block is either received or in flight."""
        if self._backend != "naive":
            # Active pieces are exactly the started missing pieces; when
            # every missing piece is active and none of them has an
            # unrequested block left, everything is received or in flight.
            return (
                self._open_partials == 0
                and len(self._active) == self._bitfield.missing
            )
        for piece in self._bitfield.missing_indices():
            partial = self._active.get(piece)
            if partial is None or partial.unrequested:
                return False
        return True

    def _endgame_block(
        self, remote_bitfield: Bitfield, peer_key: PeerKey
    ) -> Optional[BlockRef]:
        """An in-flight block the remote offers and has not been asked for."""
        for piece, partial in self._active.items():
            if not remote_bitfield.has(piece):
                continue
            for block_index, askers in partial.requested.items():
                if block_index in partial.received:
                    continue
                if peer_key not in askers:
                    askers.add(peer_key)
                    return partial.blocks[block_index]
        return None

    # ------------------------------------------------------------------
    # completion and failure paths
    # ------------------------------------------------------------------

    def on_block_received(
        self, block: BlockRef, peer_key: PeerKey
    ) -> Tuple[bool, Set[PeerKey]]:
        """Record a received block.

        Returns ``(piece_completed, peers_to_cancel)`` where
        ``peers_to_cancel`` is the set of *other* peers holding a duplicate
        in-flight request for this block (end game mode) that should be
        sent a CANCEL.
        """
        partial = self._active.get(block.piece)
        if partial is None or self._bitfield.has(block.piece):
            return False, set()  # duplicate delivery after completion
        block_index = block.offset // self._geometry.block_size
        if block_index in partial.received:
            return False, set()
        partial.received.add(block_index)
        askers = partial.requested.pop(block_index, set())
        askers.discard(peer_key)
        if partial.is_complete():
            del self._active[block.piece]
            self._bitfield.set(block.piece)
        return partial.is_complete(), askers

    def reset_piece(self, piece: int) -> None:
        """Discard a piece that failed its hash check (re-download it)."""
        partial = self._active.pop(piece, None)
        if partial is not None and partial.unrequested:
            self._open_partials -= 1
        was_wanted = partial is None and not self._bitfield.has(piece)
        self._bitfield.clear(piece)
        if self._backend == "index" and not was_wanted:
            self._wanted_index.add(piece, self._availability[piece])
        elif self._backend == "matrix":
            self._wanted_mask[piece] = True
            self._wanted_int |= 1 << (self._wanted_top - piece)
        # The whole piece is unrequested again, so "every missing block is
        # received or in flight" no longer holds; next_request re-enters
        # end game once that is true again.
        self._endgame = False

    def on_peer_gone(self, peer_key: PeerKey) -> List[BlockRef]:
        """Release in-flight requests held by a departed/choking peer.

        Returns the blocks that became unrequested again so the caller can
        account them; pieces with no progress and no requests are dropped
        from the active set (they can be restarted by any strategy pick).
        """
        released: List[BlockRef] = []
        emptied: List[int] = []
        for piece, partial in self._active.items():
            for block_index in list(partial.requested):
                askers = partial.requested[block_index]
                askers.discard(peer_key)
                if not askers:
                    self._release_block(partial, block_index)
                    released.append(partial.blocks[block_index])
            if not partial.received and not partial.requested:
                emptied.append(piece)
        for piece in emptied:
            partial = self._active.pop(piece)
            if partial.unrequested:
                self._open_partials -= 1
            if self._backend == "index":
                self._wanted_index.add(piece, self._availability[piece])
            elif self._backend == "matrix":
                self._wanted_mask[piece] = True
                self._wanted_int |= 1 << (self._wanted_top - piece)
        if released:
            # Some blocks are unrequested again: end game is over until
            # next_request finds everything in flight once more.
            self._endgame = False
        return released

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def active_pieces(self) -> List[int]:
        """Indices of partially downloaded pieces (insertion order)."""
        return list(self._active)

    def pending_requests_to(self, peer_key: PeerKey) -> List[BlockRef]:
        """Blocks currently requested from ``peer_key``."""
        pending = []
        for partial in self._active.values():
            for block_index, askers in partial.requested.items():
                if peer_key in askers:
                    pending.append(partial.blocks[block_index])
        return pending

    def received_blocks_of(self, piece: int) -> int:
        partial = self._active.get(piece)
        if partial is None:
            return self._geometry.blocks_in_piece(piece) if self._bitfield.has(piece) else 0
        return len(partial.received)
