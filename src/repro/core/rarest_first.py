"""Piece-selection strategies.

The strategy decides which *new* piece to start downloading, given the
candidate pieces a remote peer offers and the local availability counts
(copies of each piece in the local peer set).  Everything else — strict
priority at the block level, the random-first policy, end game mode — is
strategy-independent machinery implemented by
:class:`repro.core.piece_picker.PiecePicker`.

Strategies provided:

* :class:`RarestFirstSelector` — BitTorrent's local rarest first (§II-C.1):
  pick uniformly at random inside the rarest-pieces set;
* :class:`RandomSelector` — uniform over all candidates (the strawman the
  paper cites rarest first as beating [5], [9]);
* :class:`SequentialSelector` — lowest index first (streaming-style; a
  worst case for diversity);
* :class:`GlobalRarestSelector` — an oracle given *true* global
  replication counts, the "global knowledge" upper bound discussed in §I;
* :class:`ModeSuppressionSelector` — rarest first with probabilistic
  mode suppression (RFwPMS, arXiv 2211.00213): refuses over-replicated
  offers so open-system flash crowds stay stable;
* :class:`SequentialWindowSelector` — rarest first restricted to a
  sliding window ahead of a playback position (streaming/VoD);
* :class:`ProportionalFairSelector` — PFS/EPFS-style probabilistic
  weighting between playback urgency and rarity (arXiv 1402.2187).

Selectors are serializable by name via :func:`make_selector` (e.g.
``"seq-window:window=16"``), which is how scenario configs, campaign
shards and the CLI reach them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from random import Random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.piece_picker import RarityIndex
    from repro.protocol.bitfield import Bitfield


class PieceSelector(ABC):
    """Chooses the next piece to start among ``candidates``."""

    name = "abstract"

    uses_rarity_index = False
    """True when :meth:`select_indexed` implements an incremental fast
    path over the picker's :class:`~repro.core.piece_picker.RarityIndex`.
    Strategies that leave this False always get the naive candidate-list
    scan."""

    matrix_vectorized = False
    """True only for strategies whose selection the picker may replace
    with its vectorized availability-matrix rarest-first kernel
    (``PiecePicker._select_from_matrix``).  Any other strategy on the
    matrix backend falls back to the naive candidate scan over the
    matrix row — dispatching every indexed selector to the rarest-first
    kernel would silently change its policy."""

    @abstractmethod
    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> Optional[int]:
        """Return one element of *candidates*, or ``None`` to decline.

        ``availability[piece]`` is the number of copies of ``piece``
        currently present in the local peer set.  *candidates* is never
        empty and contains only pieces the remote peer offers and the
        local peer misses and has not started.  Returning ``None``
        declines the whole offer — a deliberately non-work-conserving
        choice only :class:`ModeSuppressionSelector` makes; every other
        strategy always picks.
        """

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """Indexed fast path over the picker's wanted-piece rarity index.

        ``wanted`` buckets exactly the pieces the local peer misses and
        has not started, keyed by copy count; the selector only has to
        intersect buckets with what the remote offers.  Returns ``None``
        when the remote offers no startable piece.  Implementations must
        be trace-equivalent to :meth:`select` over the same candidates
        (same result, same RNG consumption).
        """
        raise NotImplementedError(
            "%s does not implement the indexed path" % type(self).__name__
        )

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class RarestFirstSelector(PieceSelector):
    """Local rarest first: random choice within the rarest-pieces set.

    "Let m be the number of copies of the rarest piece, then the index of
    each piece with m copies in the peer set is added to the rarest pieces
    set. [...] Each peer selects the next piece to download at random in
    its rarest pieces set." (§II-C.1)
    """

    name = "rarest-first"

    uses_rarity_index = True
    matrix_vectorized = True

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        rarest_count = min(availability[piece] for piece in candidates)
        rarest_set = [
            piece for piece in candidates if availability[piece] == rarest_count
        ]
        return rng.choice(rarest_set)

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """Walk buckets from rarest up; the first non-empty intersection
        with the remote's piece set *is* the rarest eligible set.

        Sorting keeps the set in ascending piece order — the same order
        the naive candidate scan produces — so ``rng.choice`` draws the
        identical piece with the identical RNG consumption.
        """
        remote_have = remote_bitfield.have_set
        for __, bucket in wanted.ascending():
            eligible = bucket & remote_have
            if eligible:
                return rng.choice(sorted(eligible))
        return None


def _unbound_scarcity() -> Optional[int]:
    return None


class ModeSuppressionSelector(PieceSelector):
    """Rarest first with probabilistic mode suppression (RFwPMS).

    Under open Poisson arrivals with departure on completion, plain
    rarest first can be *unstable*: the swarm collapses into a "one
    club" holding every piece except the seed's rare one, young peers
    work-conservingly download the over-replicated mass and join the
    club, and the origin seed ends up the sole server of the missing
    piece — the missing-piece syndrome (Hajek–Zhu; RFwPMS, arXiv
    2211.00213).  RFwPMS breaks the club by *suppressing the mode*:
    when everything a remote offers is strictly more replicated than
    the swarm's rarest wanted tier (in the one-club state, exactly the
    mode set), the peer declines the offer with probability
    ``suppression`` instead of deepening the mode — a deliberately
    non-work-conserving choice.

    When the remote does offer a rarest-tier piece the selection is
    exactly rarest first (identical RNG draws), and with
    ``suppression=0`` the strategy reduces to
    :class:`RarestFirstSelector` bit for bit.  The rarest piece is
    therefore never suppressed: an offer containing it — in particular
    an offer where it is the only candidate — is always served.

    The rarest *wanted* copy count comes from a scarcity oracle bound
    by the owning picker (:meth:`bind_scarcity` — the same binding
    pattern playback-aware selectors use for their position source).
    Unbound, the oracle reports nothing and the strategy degrades to
    plain rarest first.  Like the playback-aware strategies, instances
    carry per-peer state and must never be shared between peers.
    """

    name = "mode-suppression"

    uses_rarity_index = True
    matrix_vectorized = False  # keeps its own policy on the matrix backend

    def __init__(self, suppression: float = 0.9):
        if not 0.0 <= suppression <= 1.0:
            raise ValueError("suppression must be in [0, 1]")
        self.suppression = suppression
        self._scarcity: Callable[[], Optional[int]] = _unbound_scarcity

    def bind_scarcity(self, scarcity: Callable[[], Optional[int]]) -> None:
        """Bind the owning picker's rarest-wanted-copy-count oracle."""
        self._scarcity = scarcity

    def __repr__(self) -> str:
        return "ModeSuppressionSelector(suppression=%g)" % self.suppression

    def _suppresses(self, offered_min: int, rng: Random) -> bool:
        """Decide whether to decline an offer whose rarest candidate has
        ``offered_min`` copies.  Draws exactly one ``rng.random()`` iff
        the offer sits strictly above the rarest wanted tier and
        ``suppression`` is positive; both selection paths route through
        this one decision so their RNG consumption stays identical.
        """
        if self.suppression <= 0.0:
            return False
        rarest_wanted = self._scarcity()
        if rarest_wanted is None or offered_min <= rarest_wanted:
            return False
        return rng.random() < self.suppression

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> Optional[int]:
        offered_min = min(int(availability[piece]) for piece in candidates)
        if self._suppresses(offered_min, rng):
            return None
        ties = [
            piece for piece in candidates if availability[piece] == offered_min
        ]
        return rng.choice(ties)

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """First non-empty bucket∩remote is the offer's rarest tier; its
        count feeds the same suppression decision as :meth:`select`,
        then the sorted tie set reproduces the naive scan's ascending
        candidate order for the ``rng.choice`` draw."""
        remote_have = remote_bitfield.have_set
        for count, bucket in wanted.ascending():
            eligible = bucket & remote_have
            if eligible:
                if self._suppresses(count, rng):
                    return None
                return rng.choice(sorted(eligible))
        return None


class RandomSelector(PieceSelector):
    """Uniformly random piece selection."""

    name = "random"

    uses_rarity_index = True

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        return rng.choice(candidates)

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """One draw over the union of all buckets the remote offers.

        Sorting reproduces the ascending candidate list the naive scan
        builds, so the single ``rng.choice`` lands on the same piece
        with the same RNG consumption.
        """
        remote_have = remote_bitfield.have_set
        candidates: List[int] = []
        for __, bucket in wanted.ascending():
            candidates.extend(bucket & remote_have)
        if not candidates:
            return None
        candidates.sort()
        return rng.choice(candidates)


class SequentialSelector(PieceSelector):
    """Lowest-index-first selection (in-order / streaming)."""

    name = "sequential"

    uses_rarity_index = True

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        return min(candidates)

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """Minimum over every bucket∩remote; draws no randomness, like
        :meth:`select`."""
        remote_have = remote_bitfield.have_set
        best: Optional[int] = None
        for __, bucket in wanted.ascending():
            eligible = bucket & remote_have
            if eligible:
                lowest = min(eligible)
                if best is None or lowest < best:
                    best = lowest
        return best


class GlobalRarestSelector(PieceSelector):
    """Oracle strategy using true global piece-replication counts.

    ``global_counts`` is a zero-argument callable returning the live count
    of copies of each piece over the *whole torrent* — the "global
    knowledge" assumption of the analytical studies the paper discusses
    ([21], [25]).  The swarm provides this oracle; real clients cannot.
    """

    name = "global-rarest"

    def __init__(self, global_counts: Callable[[], Sequence[int]]):
        self._global_counts = global_counts

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        counts = self._global_counts()
        rarest_count = min(counts[piece] for piece in candidates)
        rarest_set = [piece for piece in candidates if counts[piece] == rarest_count]
        return rng.choice(rarest_set)


def _zero_position() -> int:
    return 0


class PlaybackAwareSelector(PieceSelector):
    """Base for strategies that read a playback position.

    The position source is a zero-argument callable returning the index
    of the piece the player needs next.  A peer with playback enabled
    binds its own playback state at construction
    (:meth:`bind_position`); unbound, the position is pinned at 0 — the
    selector then behaves as a pure from-the-start streaming policy.
    """

    def __init__(self) -> None:
        self._position: Callable[[], int] = _zero_position

    def bind_position(self, position: Callable[[], int]) -> None:
        self._position = position


class SequentialWindowSelector(PlaybackAwareSelector):
    """Rarest first inside a sliding window ahead of the playback position.

    Candidates inside ``[position, position + window)`` are preferred —
    among them the rarest is picked (random tie-break), keeping some
    diversity pressure where it matters for the swarm.  When the remote
    offers nothing inside the window, selection degrades to plain
    rarest first over the remaining candidates, so the strategy never
    idles a link the way strict in-order selection does.
    """

    name = "seq-window"

    uses_rarity_index = True

    def __init__(self, window: int = 16):
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def __repr__(self) -> str:
        return "SequentialWindowSelector(window=%d)" % self.window

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        start = self._position()
        end = start + self.window
        pool = [piece for piece in candidates if start <= piece < end] or candidates
        rarest_count = min(int(availability[piece]) for piece in pool)
        ties = [piece for piece in pool if availability[piece] == rarest_count]
        return rng.choice(ties)

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """First ascending bucket with an in-window piece wins; otherwise
        the rarest bucket overall.  Equivalent to :meth:`select`: the
        window pool's minimum availability is exactly the first bucket
        (in ascending count order) intersecting the window, and the
        sorted tie set matches the naive scan's ascending candidates.
        """
        remote_have = remote_bitfield.have_set
        start = self._position()
        end = start + self.window
        fallback: Optional[List[int]] = None
        for __, bucket in wanted.ascending():
            eligible = bucket & remote_have
            if not eligible:
                continue
            windowed = sorted(p for p in eligible if start <= p < end)
            if windowed:
                return rng.choice(windowed)
            if fallback is None:
                fallback = sorted(eligible)
        if fallback is None:
            return None
        return rng.choice(fallback)


class ProportionalFairSelector(PlaybackAwareSelector):
    """PFS/EPFS-style proportional-fair streaming selection.

    Each candidate's probability weight trades playback urgency against
    rarity: ``urgency ** distance / (1 + copies)``, where ``distance``
    is how far the piece lies ahead of the playback position (pieces at
    or behind the position are maximally urgent).  One uniform variate
    picks from the cumulative distribution, so both code paths consume
    exactly one ``rng.random()`` per selection.  This is the
    proportional-fair scheduling family of BitTorrent VoD (arXiv
    1402.2187; BUTorrent's PFS/EPFS choker).
    """

    name = "pfs"

    uses_rarity_index = True

    def __init__(self, urgency: float = 0.95, rarity_bias: float = 1.0):
        super().__init__()
        if not 0.0 < urgency <= 1.0:
            raise ValueError("urgency must be in (0, 1]")
        if rarity_bias < 0.0:
            raise ValueError("rarity_bias must be >= 0")
        self.urgency = urgency
        self.rarity_bias = rarity_bias

    def __repr__(self) -> str:
        return "ProportionalFairSelector(urgency=%g, rarity_bias=%g)" % (
            self.urgency,
            self.rarity_bias,
        )

    def _weight(self, piece: int, copies: int, position: int) -> float:
        distance = piece - position
        if distance < 0:
            distance = 0
        return (self.urgency ** distance) * ((1.0 / (1 + copies)) ** self.rarity_bias)

    def _pick(
        self, candidates: List[int], weights: List[float], rng: Random
    ) -> int:
        total = 0.0
        for weight in weights:
            total += weight
        remaining = rng.random() * total
        for piece, weight in zip(candidates, weights):
            remaining -= weight
            if remaining <= 0.0:
                return piece
        return candidates[-1]

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        position = self._position()
        weights = [
            self._weight(piece, int(availability[piece]), position)
            for piece in candidates
        ]
        return self._pick(candidates, weights, rng)

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """Same cumulative draw over the same ascending candidate list.

        The bucket walk recovers each candidate's copy count without
        touching the flat availability array; sorting by piece restores
        the naive scan's order so the weight accumulation produces
        bit-identical floats and the single variate lands identically.
        """
        remote_have = remote_bitfield.have_set
        pairs: List[tuple] = []
        for count, bucket in wanted.ascending():
            eligible = bucket & remote_have
            if eligible:
                pairs.extend((piece, count) for piece in eligible)
        if not pairs:
            return None
        pairs.sort()
        position = self._position()
        candidates = [piece for piece, __ in pairs]
        weights = [
            self._weight(piece, count, position) for piece, count in pairs
        ]
        return self._pick(candidates, weights, rng)


#: Serializable selector registry: every strategy constructible from a
#: ``name`` plus keyword parameters.  ``GlobalRarestSelector`` is absent
#: on purpose — it needs a live swarm oracle and stays programmatic.
SELECTOR_REGISTRY: Dict[str, Callable[..., PieceSelector]] = {
    RarestFirstSelector.name: RarestFirstSelector,
    ModeSuppressionSelector.name: ModeSuppressionSelector,
    RandomSelector.name: RandomSelector,
    SequentialSelector.name: SequentialSelector,
    SequentialWindowSelector.name: SequentialWindowSelector,
    ProportionalFairSelector.name: ProportionalFairSelector,
}

DEFAULT_SELECTOR_SPEC = RarestFirstSelector.name


def parse_selector_spec(spec: str):
    """Split ``"name"`` / ``"name:key=value,key=value"`` into parts.

    Values parse as int, then float, then bare string.  Raises
    ``ValueError`` for unknown names or malformed parameters — config
    errors should fail at parse time, not mid-campaign.
    """
    name, __, params_text = spec.strip().partition(":")
    name = name.strip()
    if name not in SELECTOR_REGISTRY:
        raise ValueError(
            "unknown selector %r (have: %s)"
            % (name, ", ".join(sorted(SELECTOR_REGISTRY)))
        )
    params = {}
    if params_text:
        for item in params_text.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise ValueError("malformed selector parameter %r in %r" % (item, spec))
            value = value.strip()
            try:
                parsed = int(value)
            except ValueError:
                try:
                    parsed = float(value)
                except ValueError:
                    parsed = value
            params[key.strip()] = parsed
    return name, params


def make_selector(spec: Optional[str]) -> Optional[PieceSelector]:
    """Build a fresh selector instance from its serialized spec.

    ``None``/empty means "the default" and returns ``None`` so callers
    keep their historical rarest-first default untouched.  Each call
    returns a *new* instance: playback-aware selectors carry per-peer
    position bindings and must never be shared.
    """
    if spec is None or not spec.strip():
        return None
    name, params = parse_selector_spec(spec)
    try:
        return SELECTOR_REGISTRY[name](**params)
    except TypeError as error:
        raise ValueError("bad parameters for selector %r: %s" % (name, error))
