"""Piece-selection strategies.

The strategy decides which *new* piece to start downloading, given the
candidate pieces a remote peer offers and the local availability counts
(copies of each piece in the local peer set).  Everything else — strict
priority at the block level, the random-first policy, end game mode — is
strategy-independent machinery implemented by
:class:`repro.core.piece_picker.PiecePicker`.

Strategies provided:

* :class:`RarestFirstSelector` — BitTorrent's local rarest first (§II-C.1):
  pick uniformly at random inside the rarest-pieces set;
* :class:`RandomSelector` — uniform over all candidates (the strawman the
  paper cites rarest first as beating [5], [9]);
* :class:`SequentialSelector` — lowest index first (streaming-style; a
  worst case for diversity);
* :class:`GlobalRarestSelector` — an oracle given *true* global
  replication counts, the "global knowledge" upper bound discussed in §I.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from random import Random
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.piece_picker import RarityIndex
    from repro.protocol.bitfield import Bitfield


class PieceSelector(ABC):
    """Chooses the next piece to start among ``candidates``."""

    name = "abstract"

    uses_rarity_index = False
    """True when :meth:`select_indexed` implements an incremental fast
    path over the picker's :class:`~repro.core.piece_picker.RarityIndex`.
    Strategies that leave this False always get the naive candidate-list
    scan."""

    @abstractmethod
    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        """Return one element of *candidates*.

        ``availability[piece]`` is the number of copies of ``piece``
        currently present in the local peer set.  *candidates* is never
        empty and contains only pieces the remote peer offers and the
        local peer misses and has not started.
        """

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """Indexed fast path over the picker's wanted-piece rarity index.

        ``wanted`` buckets exactly the pieces the local peer misses and
        has not started, keyed by copy count; the selector only has to
        intersect buckets with what the remote offers.  Returns ``None``
        when the remote offers no startable piece.  Implementations must
        be trace-equivalent to :meth:`select` over the same candidates
        (same result, same RNG consumption).
        """
        raise NotImplementedError(
            "%s does not implement the indexed path" % type(self).__name__
        )

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class RarestFirstSelector(PieceSelector):
    """Local rarest first: random choice within the rarest-pieces set.

    "Let m be the number of copies of the rarest piece, then the index of
    each piece with m copies in the peer set is added to the rarest pieces
    set. [...] Each peer selects the next piece to download at random in
    its rarest pieces set." (§II-C.1)
    """

    name = "rarest-first"

    uses_rarity_index = True

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        rarest_count = min(availability[piece] for piece in candidates)
        rarest_set = [
            piece for piece in candidates if availability[piece] == rarest_count
        ]
        return rng.choice(rarest_set)

    def select_indexed(
        self,
        wanted: "RarityIndex",
        remote_bitfield: "Bitfield",
        rng: Random,
    ) -> Optional[int]:
        """Walk buckets from rarest up; the first non-empty intersection
        with the remote's piece set *is* the rarest eligible set.

        Sorting keeps the set in ascending piece order — the same order
        the naive candidate scan produces — so ``rng.choice`` draws the
        identical piece with the identical RNG consumption.
        """
        remote_have = remote_bitfield.have_set
        for __, bucket in wanted.ascending():
            eligible = bucket & remote_have
            if eligible:
                return rng.choice(sorted(eligible))
        return None


class RandomSelector(PieceSelector):
    """Uniformly random piece selection."""

    name = "random"

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        return rng.choice(candidates)


class SequentialSelector(PieceSelector):
    """Lowest-index-first selection (in-order / streaming)."""

    name = "sequential"

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        return min(candidates)


class GlobalRarestSelector(PieceSelector):
    """Oracle strategy using true global piece-replication counts.

    ``global_counts`` is a zero-argument callable returning the live count
    of copies of each piece over the *whole torrent* — the "global
    knowledge" assumption of the analytical studies the paper discusses
    ([21], [25]).  The swarm provides this oracle; real clients cannot.
    """

    name = "global-rarest"

    def __init__(self, global_counts: Callable[[], Sequence[int]]):
        self._global_counts = global_counts

    def select(
        self,
        candidates: List[int],
        availability: Sequence[int],
        rng: Random,
    ) -> int:
        counts = self._global_counts()
        rarest_count = min(counts[piece] for piece in candidates)
        rarest_set = [piece for piece in candidates if counts[piece] == rarest_count]
        return rng.choice(rarest_set)
