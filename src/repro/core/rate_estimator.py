"""Sliding-window transfer-rate estimation.

The choke algorithm ranks peers by "short term download estimations"
(paper §IV-B.1): mainline measures the bytes moved over a recent window
(20 seconds by default) rather than a lifetime average, so a peer that
stops sending drops out of the regular-unchoke set within two choke
rounds.  The estimator below keeps (timestamp, bytes) samples and expires
them lazily.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class RateEstimator:
    """Bytes-per-second estimate over a trailing window.

    >>> estimator = RateEstimator(window=20.0)
    >>> estimator.add(now=0.0, num_bytes=16384)
    >>> estimator.add(now=10.0, num_bytes=16384)
    >>> round(estimator.rate(now=10.0), 1)
    1638.4
    """

    __slots__ = ("_window", "_samples", "_total")

    def __init__(self, window: float = 20.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self._window = window
        self._samples: Deque[Tuple[float, float]] = deque()
        self._total = 0.0

    @property
    def window(self) -> float:
        return self._window

    def add(self, now: float, num_bytes: float) -> None:
        """Record *num_bytes* transferred at time *now*."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if self._samples and now < self._samples[-1][0]:
            raise ValueError("samples must be added in non-decreasing time order")
        self._samples.append((now, num_bytes))
        self._total += num_bytes
        self._expire(now)

    def rate(self, now: float) -> float:
        """Estimated transfer rate in bytes/second at time *now*.

        The divisor is the full window length, matching mainline's
        behaviour: a peer that transferred one burst long ago decays
        toward zero as the samples age out.
        """
        self._expire(now)
        return max(0.0, self._total) / self._window

    def total_in_window(self, now: float) -> float:
        """Bytes currently inside the window (mostly for tests)."""
        self._expire(now)
        return max(0.0, self._total)

    def reset(self) -> None:
        self._samples.clear()
        self._total = 0.0

    def _expire(self, now: float) -> None:
        horizon = now - self._window
        samples = self._samples
        while samples and samples[0][0] <= horizon:
            __, num_bytes = samples.popleft()
            self._total -= num_bytes
        if not samples:
            self._total = 0.0  # clamp float drift


class ByteCounter:
    """Monotonic byte accounting with a paired :class:`RateEstimator`.

    Connections keep one counter per direction; the choke algorithm reads
    ``rate``, the fairness analysis reads ``total``.
    """

    __slots__ = ("total", "_estimator")

    def __init__(self, window: float = 20.0):
        self.total = 0.0
        self._estimator = RateEstimator(window)

    def add(self, now: float, num_bytes: float) -> None:
        self.total += num_bytes
        self._estimator.add(now, num_bytes)

    def rate(self, now: float) -> float:
        return self._estimator.rate(now)
