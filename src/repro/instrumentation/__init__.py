"""Instrumentation of the local peer.

Mirrors the paper's §III-C: "a log of each BitTorrent message sent or
received [...], a log of each state change in the choke algorithm, a log
of the rate estimation used by the choke algorithm, and a log of
important events (end game mode, seed state)."
"""

from repro.instrumentation.logger import (
    Instrumentation,
    RemotePeerRecord,
    Snapshot,
)
from repro.instrumentation.metrics import (
    EngineProfiler,
    MetricsRegistry,
)
from repro.instrumentation.bintrace import (
    BINTRACE_MAGIC,
    BinaryTraceRecorder,
    binary_to_jsonl,
    jsonl_to_binary,
)
from repro.instrumentation.replay import (
    ReplayedInstrumentation,
    iter_trace,
    replay_instrumentation,
    traced_peers,
)
from repro.instrumentation.trace import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    TracingObserver,
)

__all__ = [
    "Instrumentation",
    "RemotePeerRecord",
    "Snapshot",
    "MetricsRegistry",
    "EngineProfiler",
    "TraceRecorder",
    "TracingObserver",
    "TRACE_SCHEMA_VERSION",
    "BINTRACE_MAGIC",
    "BinaryTraceRecorder",
    "binary_to_jsonl",
    "jsonl_to_binary",
    "replay_instrumentation",
    "ReplayedInstrumentation",
    "iter_trace",
    "traced_peers",
]
