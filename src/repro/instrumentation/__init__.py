"""Instrumentation of the local peer.

Mirrors the paper's §III-C: "a log of each BitTorrent message sent or
received [...], a log of each state change in the choke algorithm, a log
of the rate estimation used by the choke algorithm, and a log of
important events (end game mode, seed state)."
"""

from repro.instrumentation.logger import (
    Instrumentation,
    RemotePeerRecord,
    Snapshot,
)

__all__ = ["Instrumentation", "RemotePeerRecord", "Snapshot"]
