"""Compact binary trace container for the JSONL trace format.

JSONL tracing (:mod:`repro.instrumentation.trace`) costs most of its
overhead in string formatting: every message event renders ~100 bytes of
JSON while carrying ~20 bytes of information.  This module defines a
struct-packed binary container for the *same* event stream, plus lossless
converters in both directions — the binary file is a pure re-encoding of
the JSONL trace, and converting back reproduces the JSONL file byte for
byte (fingerprint included).

A :class:`BinaryTraceRecorder` can also sit directly behind a
:class:`~repro.instrumentation.trace.TracingObserver` as a drop-in
recorder: the observer detects the ``emit_message``/``emit_block``
capabilities and hands over raw fields, skipping JSON rendering entirely
on the hot paths.  Converting such a live binary file to JSONL yields the
byte-identical file a :class:`~repro.instrumentation.trace.TraceRecorder`
would have written for the same run.

Wire format (all integers little-endian)::

    file   := magic record* end
    magic  := b"RBT1"
    record := addr | msg | block | json
    addr   := 0x03  u16 id  u8 len  <len utf-8 bytes>     (address interning)
    msg    := 0x01  f64 t  u16 peer  u16 remote  u8 dir  u8 code  payload
              payload: Have -> u32 piece
                       Request/Cancel/Piece -> u32 piece u32 offset u32 length
                       Bitfield -> u16 len <len bytes>
                       otherwise empty
    block  := 0x04  f64 t  u16 peer  u16 remote  u32 piece u32 offset u32 len
    json   := 0x02  u32 len  <len utf-8 bytes>            (verbatim JSONL line)
    end    := 0x05  u32 events  u8 footer_state  <32-byte sha256>

``dir`` is 0 for ``msg_sent``, 1 for ``msg_recv``.  ``footer_state``
records what the source knew about its own footer: 0 — the JSONL source
had no ``trace_end`` footer (reconstruct none); 1 — the stored
fingerprint is authoritative; 2 — written by a live recorder that never
rendered JSON (the decoder computes the fingerprint, normalising the
trace to state 1 on the next round trip).

Any event that cannot be re-rendered byte-identically from packed fields
(foreign float formatting, unknown message, out-of-range index) falls
back to a verbatim ``json`` record, so conversion is lossless by
construction, not by convention.  Truncated or corrupt files raise
:class:`~repro.instrumentation.replay.TraceFormatError`.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from repro.instrumentation.replay import TraceFormatError
from repro.instrumentation.trace import TRACE_SCHEMA_VERSION, TraceRecorder
from repro.protocol.messages import (
    Bitfield as BitfieldMessage,
    Cancel,
    Choke,
    Have,
    Interested,
    KeepAlive,
    Message,
    NotInterested,
    Piece,
    Request,
    Unchoke,
)

BINTRACE_MAGIC = b"RBT1"

_TAG_MSG = 0x01
_TAG_JSON = 0x02
_TAG_ADDR = 0x03
_TAG_BLOCK = 0x04
_TAG_END = 0x05

# Message codes are positional in this tuple: the tuple is part of the
# wire format and must only ever be appended to.
_MSG_NAMES: Tuple[str, ...] = (
    "KeepAlive",
    "Choke",
    "Unchoke",
    "Interested",
    "NotInterested",
    "Have",
    "Bitfield",
    "Request",
    "Piece",
    "Cancel",
)
_MSG_CODES: Dict[str, int] = {name: code for code, name in enumerate(_MSG_NAMES)}
_CODE_BY_CLASS: Dict[type, int] = {
    KeepAlive: _MSG_CODES["KeepAlive"],
    Choke: _MSG_CODES["Choke"],
    Unchoke: _MSG_CODES["Unchoke"],
    Interested: _MSG_CODES["Interested"],
    NotInterested: _MSG_CODES["NotInterested"],
    Have: _MSG_CODES["Have"],
    BitfieldMessage: _MSG_CODES["Bitfield"],
    Request: _MSG_CODES["Request"],
    Piece: _MSG_CODES["Piece"],
    Cancel: _MSG_CODES["Cancel"],
}
_HAVE_CODE = _MSG_CODES["Have"]
_BITFIELD_CODE = _MSG_CODES["Bitfield"]
_TRIPLE_CODES = frozenset(
    (_MSG_CODES["Request"], _MSG_CODES["Piece"], _MSG_CODES["Cancel"])
)

_S_MSG = struct.Struct("<dHHBB")
_S_BLOCK = struct.Struct("<dHHIII")
_PIECE_CODE = _MSG_CODES["Piece"]
# Pre-fused tag+head(+payload) layouts for the live recorder's hot
# path: "<" means no padding, so one pack() emits byte-identical output
# to tag + _S_MSG.pack(...) + payload concatenation.
_S_TAG_MSG = struct.Struct("<BdHHBB")
_S_TAG_MSG_HAVE = struct.Struct("<BdHHBBI")
_S_TAG_MSG_TRIPLE = struct.Struct("<BdHHBBIII")
_S_TAG_BLOCK = struct.Struct("<BdHHIII")
_S_U16 = struct.Struct("<H")
_S_U32 = struct.Struct("<I")
_S_TRIPLE = struct.Struct("<III")
_S_END = struct.Struct("<IB")

_FOOTER_NONE = 0
_FOOTER_STORED = 1
_FOOTER_PENDING = 2

_DIR_NAMES = ("msg_sent", "msg_recv")


def _msg_line(
    t: float, direction: int, peer: str, remote: str, code: int, suffix: str
) -> str:
    """Render one message event exactly as the JSONL observer does."""
    return '{"t":%s,"type":"%s","peer":"%s","remote":"%s","msg":"%s"%s}' % (
        repr(t),
        _DIR_NAMES[direction],
        peer,
        remote,
        _MSG_NAMES[code],
        suffix,
    )


def _block_line(
    t: float, peer: str, remote: str, piece: int, offset: int, length: int
) -> str:
    return (
        '{"t":%s,"type":"block","peer":"%s","remote":"%s",'
        '"piece":%d,"offset":%d,"length":%d}'
        % (repr(t), peer, remote, piece, offset, length)
    )


def _payload_suffix(code: int, payload: tuple) -> str:
    if code == _HAVE_CODE:
        return ',"piece":%d' % payload[0]
    if code in _TRIPLE_CODES:
        return ',"piece":%d,"offset":%d,"length":%d' % payload
    if code == _BITFIELD_CODE:
        return ',"bits":"%s"' % payload[0].hex()
    return ""


class BinaryTraceRecorder:
    """Live binary sink with the recorder surface TracingObserver needs.

    Beyond ``emit``/``emit_raw`` (shared with
    :class:`~repro.instrumentation.trace.TraceRecorder`), it offers the
    ``emit_message``/``emit_block`` fast paths that pack raw fields
    without ever rendering JSON.  Use :func:`binary_to_jsonl` to recover
    the equivalent JSONL trace — including the fingerprint a JSONL
    recorder would have computed.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = str(path) if path is not None else None
        self._file: Optional[IO[bytes]] = (
            open(self.path, "wb") if self.path is not None else None
        )
        self._chunks: List[bytes] = []
        # Bound once: the hot emitters call it directly, skipping the
        # _write indirection on every record.
        self._sink = (
            self._file.write if self._file is not None else self._chunks.append
        )
        self._addr_ids: Dict[str, int] = {}
        self._events = 0
        self.closed = False
        self._write(BINTRACE_MAGIC)
        self._json_record(
            '{"type":"trace_start","v":%d}' % TRACE_SCHEMA_VERSION
        )

    # -- plumbing ----------------------------------------------------------

    def _write(self, data: bytes) -> None:
        self._sink(data)

    def _json_record(self, line: str) -> None:
        encoded = line.encode("utf-8")
        self._write(b"\x02" + _S_U32.pack(len(encoded)) + encoded)

    def _intern(self, address: str) -> int:
        addr_id = self._addr_ids.get(address)
        if addr_id is None:
            addr_id = len(self._addr_ids)
            if addr_id > 0xFFFF:
                raise TraceFormatError(
                    "binary traces support at most 65536 distinct addresses"
                )
            self._addr_ids[address] = addr_id
            encoded = address.encode("utf-8")
            self._write(
                b"\x03" + _S_U16.pack(addr_id) + bytes((len(encoded),)) + encoded
            )
        return addr_id

    # -- recorder surface --------------------------------------------------

    def emit(self, event: dict) -> None:
        """Append one event as a verbatim JSON record (cold paths)."""
        if self.closed:
            raise RuntimeError("binary trace recorder is closed")
        self._json_record(json.dumps(event, separators=(",", ":")))
        self._events += 1

    def emit_raw(self, line: str) -> None:
        """Append one pre-serialised JSONL line verbatim."""
        if self.closed:
            raise RuntimeError("binary trace recorder is closed")
        self._json_record(line)
        self._events += 1

    def emit_message(
        self, now: float, direction: int, peer: str, remote: str, message: Message
    ) -> None:
        """Hot path: pack one message event straight from its fields."""
        code = _CODE_BY_CLASS.get(type(message))
        if code is None:
            # Unknown message class: fall back to the rendered line the
            # JSONL observer would have produced (conversion stays exact).
            from repro.instrumentation.trace import _PAYLOAD_SUFFIXES

            suffix = _PAYLOAD_SUFFIXES.get(type(message))
            self.emit_raw(
                '{"t":%s,"type":"%s","peer":"%s","remote":"%s","msg":"%s"%s}'
                % (
                    repr(now),
                    _DIR_NAMES[direction],
                    peer,
                    remote,
                    type(message).__name__,
                    "" if suffix is None else suffix(message),
                )
            )
            return
        addr_ids = self._addr_ids
        peer_id = addr_ids.get(peer)
        if peer_id is None:
            peer_id = self._intern(peer)
        remote_id = addr_ids.get(remote)
        if remote_id is None:
            remote_id = self._intern(remote)
        if code == _HAVE_CODE:
            record = _S_TAG_MSG_HAVE.pack(
                1, now, peer_id, remote_id, direction, code, message.piece
            )
        elif code in _TRIPLE_CODES:
            record = _S_TAG_MSG_TRIPLE.pack(
                1, now, peer_id, remote_id, direction, code,
                message.piece, message.offset,
                len(message.data) if code == _PIECE_CODE else message.length,
            )
        elif code == _BITFIELD_CODE:
            bits = message.bits
            record = (
                _S_TAG_MSG.pack(1, now, peer_id, remote_id, direction, code)
                + _S_U16.pack(len(bits))
                + bits
            )
        else:
            record = _S_TAG_MSG.pack(1, now, peer_id, remote_id, direction, code)
        self._sink(record)
        self._events += 1

    def emit_have_pair(
        self, now: float, sender: str, receiver: str, piece: int
    ) -> None:
        """Hottest path: one call for a HAVE's sent+received record pair.

        The fused fan-out loop delivers synchronously, so every HAVE a
        traced sender emits to a traced receiver sharing this recorder
        produces two adjacent records with mirrored addresses.  Packing
        both in one call halves the per-event Python call overhead of
        the single largest record population in a mega-swarm trace.
        Byte-identical to ``emit_message`` called for the sent then the
        received side.
        """
        addr_ids = self._addr_ids
        sender_id = addr_ids.get(sender)
        if sender_id is None:
            sender_id = self._intern(sender)
        receiver_id = addr_ids.get(receiver)
        if receiver_id is None:
            receiver_id = self._intern(receiver)
        pack = _S_TAG_MSG_HAVE.pack
        self._sink(
            pack(1, now, sender_id, receiver_id, 0, _HAVE_CODE, piece)
            + pack(1, now, receiver_id, sender_id, 1, _HAVE_CODE, piece)
        )
        self._events += 2

    def emit_block(
        self, now: float, peer: str, remote: str, piece: int, offset: int, length: int
    ) -> None:
        """Hot path: pack one block-received event."""
        addr_ids = self._addr_ids
        peer_id = addr_ids.get(peer)
        if peer_id is None:
            peer_id = self._intern(peer)
        remote_id = addr_ids.get(remote)
        if remote_id is None:
            remote_id = self._intern(remote)
        self._sink(
            _S_TAG_BLOCK.pack(4, now, peer_id, remote_id, piece, offset, length)
        )
        self._events += 1

    @property
    def events_emitted(self) -> int:
        return self._events

    def close(self) -> None:
        """Write the end record (footer pending — the decoder computes
        the JSONL fingerprint).  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self._write(
            b"\x05" + _S_END.pack(self._events, _FOOTER_PENDING) + b"\x00" * 32
        )
        if self._file is not None:
            self._file.close()
            self._file = None

    def getvalue(self) -> bytes:
        """The binary trace (in-memory recorders only)."""
        if self.path is not None:
            with open(self.path, "rb") as handle:
                return handle.read()
        return b"".join(self._chunks)

    def __enter__(self) -> "BinaryTraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# JSONL -> binary
# ---------------------------------------------------------------------------

JsonlSource = Union[str, TraceRecorder, Iterable[str]]


def _jsonl_lines(source: JsonlSource) -> List[str]:
    if isinstance(source, TraceRecorder):
        lines = source.lines()
    elif isinstance(source, str):
        with open(source) as handle:
            lines = [line.rstrip("\n") for line in handle]
    else:
        lines = [line.rstrip("\n") for line in source]
    return [line for line in lines if line]


def jsonl_to_binary(
    source: JsonlSource, path: Optional[str] = None
) -> Optional[bytes]:
    """Re-encode a JSONL trace as a binary trace.

    Every message/block event whose packed form re-renders to the exact
    original line is stored packed; anything else is stored verbatim, so
    :func:`binary_to_jsonl` always reproduces the input byte for byte.
    Returns the bytes, or writes them to *path* and returns ``None``.
    """
    lines = _jsonl_lines(source)
    if not lines:
        raise TraceFormatError("empty trace")
    out = bytearray(BINTRACE_MAGIC)
    addr_ids: Dict[str, int] = {}

    def intern(address: str) -> int:
        addr_id = addr_ids.get(address)
        if addr_id is None:
            addr_id = len(addr_ids)
            if addr_id > 0xFFFF:
                raise struct.error("address table overflow")
            addr_ids[address] = addr_id
            encoded = address.encode("utf-8")
            if len(encoded) > 0xFF:
                raise struct.error("address too long")
            out.extend(b"\x03" + _S_U16.pack(addr_id) + bytes((len(encoded),)))
            out.extend(encoded)
        return addr_id

    def json_record(line: str) -> None:
        encoded = line.encode("utf-8")
        out.extend(b"\x02" + _S_U32.pack(len(encoded)))
        out.extend(encoded)

    events = 0
    footer: Optional[dict] = None
    for index, line in enumerate(lines):
        try:
            event = json.loads(line)
        except ValueError:
            raise TraceFormatError("line %d is not valid JSON" % (index + 1))
        kind = event.get("type")
        if kind == "trace_end":
            if index != len(lines) - 1:
                raise TraceFormatError("data after trace_end footer")
            footer = event
            break
        if not (index == 0 and kind == "trace_start"):
            events += 1
        packed = _try_pack_event(event, kind, line, intern, len(addr_ids))
        if packed is not None:
            out.extend(packed)
        else:
            json_record(line)
    if footer is not None:
        try:
            count = int(footer["events"])
            fingerprint = bytes.fromhex(footer["fingerprint"])
            if len(fingerprint) != 32:
                raise ValueError
        except (KeyError, TypeError, ValueError):
            raise TraceFormatError("malformed trace_end footer")
        if count != events:
            raise TraceFormatError(
                "footer says %d events, found %d" % (count, events)
            )
        out.extend(b"\x05" + _S_END.pack(events, _FOOTER_STORED) + fingerprint)
    else:
        out.extend(b"\x05" + _S_END.pack(events, _FOOTER_NONE) + b"\x00" * 32)
    data = bytes(out)
    if path is not None:
        with open(path, "wb") as handle:
            handle.write(data)
        return None
    return data


def _try_pack_event(event, kind, line, intern, table_size):
    """Packed record for a message/block event — or None to store the
    line verbatim.  The packed form is accepted only if re-rendering it
    reproduces *line* exactly (interning is rolled back on rejection by
    the caller never seeing new ids: we pre-render before interning)."""
    try:
        if kind in ("msg_sent", "msg_recv"):
            code = _MSG_CODES.get(event["msg"])
            if code is None:
                return None
            t = event["t"]
            peer, remote = event["peer"], event["remote"]
            direction = 0 if kind == "msg_sent" else 1
            if code == _HAVE_CODE:
                payload_fields = (event["piece"],)
                payload = _S_U32.pack(event["piece"])
            elif code in _TRIPLE_CODES:
                payload_fields = (
                    event["piece"],
                    event["offset"],
                    event["length"],
                )
                payload = _S_TRIPLE.pack(*payload_fields)
            elif code == _BITFIELD_CODE:
                bits = bytes.fromhex(event["bits"])
                if len(bits) > 0xFFFF:
                    return None
                payload_fields = (bits,)
                payload = _S_U16.pack(len(bits)) + bits
            else:
                payload_fields = ()
                payload = b""
            rendered = _msg_line(
                t, direction, peer, remote, code, _payload_suffix(code, payload_fields)
            )
            if rendered != line:
                return None
            head = _S_MSG.pack(t, intern(peer), intern(remote), direction, code)
            return b"\x01" + head + payload
        if kind == "block":
            t = event["t"]
            peer, remote = event["peer"], event["remote"]
            piece, offset, length = (
                event["piece"],
                event["offset"],
                event["length"],
            )
            if _block_line(t, peer, remote, piece, offset, length) != line:
                return None
            return b"\x04" + _S_BLOCK.pack(
                t, intern(peer), intern(remote), piece, offset, length
            )
    except (KeyError, TypeError, ValueError, struct.error):
        return None
    return None


# ---------------------------------------------------------------------------
# binary -> JSONL
# ---------------------------------------------------------------------------

BinarySource = Union[str, bytes, BinaryTraceRecorder]


def binary_to_jsonl(
    source: BinarySource, path: Optional[str] = None
) -> List[str]:
    """Decode a binary trace back to its JSONL lines.

    *source* is a file path, raw bytes, or a closed
    :class:`BinaryTraceRecorder`.  Truncated or corrupt input raises
    :class:`~repro.instrumentation.replay.TraceFormatError`.  When the
    binary end record is fingerprint-pending (a live binary recorder),
    the JSONL fingerprint is computed here, yielding the byte-identical
    footer a JSONL recorder would have written.  With *path* the lines
    are also written out as a JSONL file.
    """
    if isinstance(source, BinaryTraceRecorder):
        data = source.getvalue()
    elif isinstance(source, str):
        with open(source, "rb") as handle:
            data = handle.read()
    else:
        data = source
    if data[:4] != BINTRACE_MAGIC:
        raise TraceFormatError("not a binary trace (bad magic)")
    size = len(data)
    pos = 4
    addresses: Dict[int, str] = {}
    lines: List[str] = []
    end: Optional[Tuple[int, int, bytes]] = None

    def need(count: int) -> int:
        if pos + count > size:
            raise TraceFormatError("truncated binary trace")
        return pos + count

    while pos < size:
        tag = data[pos]
        pos += 1
        if tag == _TAG_MSG:
            next_pos = need(_S_MSG.size)
            t, peer_id, remote_id, direction, code = _S_MSG.unpack_from(
                data, pos
            )
            pos = next_pos
            if direction > 1 or code >= len(_MSG_NAMES):
                raise TraceFormatError("corrupt message record")
            if code == _HAVE_CODE:
                next_pos = need(_S_U32.size)
                payload_fields = _S_U32.unpack_from(data, pos)
                pos = next_pos
            elif code in _TRIPLE_CODES:
                next_pos = need(_S_TRIPLE.size)
                payload_fields = _S_TRIPLE.unpack_from(data, pos)
                pos = next_pos
            elif code == _BITFIELD_CODE:
                next_pos = need(_S_U16.size)
                (bits_len,) = _S_U16.unpack_from(data, pos)
                pos = next_pos
                next_pos = need(bits_len)
                payload_fields = (data[pos:next_pos],)
                pos = next_pos
            else:
                payload_fields = ()
            try:
                peer = addresses[peer_id]
                remote = addresses[remote_id]
            except KeyError:
                raise TraceFormatError("message references unknown address id")
            lines.append(
                _msg_line(
                    t,
                    direction,
                    peer,
                    remote,
                    code,
                    _payload_suffix(code, payload_fields),
                )
            )
        elif tag == _TAG_JSON:
            next_pos = need(_S_U32.size)
            (length,) = _S_U32.unpack_from(data, pos)
            pos = next_pos
            next_pos = need(length)
            try:
                lines.append(data[pos:next_pos].decode("utf-8"))
            except UnicodeDecodeError:
                raise TraceFormatError("corrupt JSON record")
            pos = next_pos
        elif tag == _TAG_ADDR:
            next_pos = need(_S_U16.size + 1)
            (addr_id,) = _S_U16.unpack_from(data, pos)
            length = data[pos + 2]
            pos = next_pos
            next_pos = need(length)
            if addr_id in addresses:
                raise TraceFormatError("duplicate address id %d" % addr_id)
            try:
                addresses[addr_id] = data[pos:next_pos].decode("utf-8")
            except UnicodeDecodeError:
                raise TraceFormatError("corrupt address record")
            pos = next_pos
        elif tag == _TAG_BLOCK:
            next_pos = need(_S_BLOCK.size)
            t, peer_id, remote_id, piece, offset, length = _S_BLOCK.unpack_from(
                data, pos
            )
            pos = next_pos
            try:
                peer = addresses[peer_id]
                remote = addresses[remote_id]
            except KeyError:
                raise TraceFormatError("block references unknown address id")
            lines.append(_block_line(t, peer, remote, piece, offset, length))
        elif tag == _TAG_END:
            next_pos = need(_S_END.size + 32)
            count, footer_state = _S_END.unpack_from(data, pos)
            fingerprint = data[pos + _S_END.size : next_pos]
            pos = next_pos
            if pos != size:
                raise TraceFormatError("data after end record")
            end = (count, footer_state, fingerprint)
        else:
            raise TraceFormatError("unknown record tag 0x%02x" % tag)
    if end is None:
        raise TraceFormatError("missing end record (truncated trace?)")
    count, footer_state, fingerprint = end
    events = len(lines)
    if lines:
        try:
            if json.loads(lines[0]).get("type") == "trace_start":
                events -= 1
        except ValueError:
            pass
    if events != count:
        raise TraceFormatError(
            "end record says %d events, found %d" % (count, events)
        )
    if footer_state == _FOOTER_STORED:
        lines.append(
            '{"type":"trace_end","events":%d,"fingerprint":"%s"}'
            % (count, fingerprint.hex())
        )
    elif footer_state == _FOOTER_PENDING:
        hasher = hashlib.sha256()
        for line in lines:
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
        lines.append(
            '{"type":"trace_end","events":%d,"fingerprint":"%s"}'
            % (count, hasher.hexdigest())
        )
    elif footer_state != _FOOTER_NONE:
        raise TraceFormatError("unknown footer state %d" % footer_state)
    if path is not None:
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
    return lines
