"""The instrumented local peer's trace recorder.

:class:`Instrumentation` is a :class:`~repro.sim.observer.PeerObserver`
that reconstructs, for the peer it is attached to, everything the paper's
analysis needs:

* per-remote-peer presence intervals in the peer set, interest intervals
  in both directions, unchoke timestamps, and byte totals split between
  the local peer's leecher and seed states;
* block arrival and piece completion timestamps (figures 7/8);
* periodic snapshots of the peer-set size and of the piece-replication
  state of the peer set (figures 2–6);
* protocol events: end game entry, seed-state transition, hash failures,
  choke rounds, optional rate-estimator samples.

Wall-clock conventions: an interval still open when the experiment stops
is closed at :meth:`finalize` time; analysis code therefore always sees
closed ``(start, end)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.choke import ChokeDecision
from repro.instrumentation.metrics import MetricsRegistry
from repro.protocol.messages import (
    Bitfield as BitfieldMessage,
    Have,
    Interested,
    Message,
    NotInterested,
)
from repro.sim.connection import Connection
from repro.sim.observer import FanoutObserver, PeerObserver

Interval = Tuple[float, float]


@dataclass
class Snapshot:
    """One periodic sample of the local peer's view."""

    time: float
    peer_set_size: int
    min_copies: int
    mean_copies: float
    max_copies: int
    rarest_count: int
    """Copies of the rarest piece in the peer set (m in §II-A)."""

    rarest_set_size: int
    """Number of pieces with exactly m copies (figures 3 and 6)."""

    local_pieces: int
    is_seed: bool
    in_endgame: bool
    active_partial_pieces: int = 0
    """Pieces started but incomplete at the local peer: strict priority
    keeps this small (partially received pieces cannot be served)."""

    offline: bool = False
    """Explicit gap marker: the sampling timer fired while the peer was
    offline (churn window).  Peer-set/replication figures must skip these
    rather than interpolate a phantom zero-sized peer set across the
    outage; only ``time`` and ``local_pieces`` carry information."""


@dataclass
class _IntervalTracker:
    """Open/closed interval bookkeeping for one boolean signal."""

    intervals: List[Interval] = field(default_factory=list)
    open_since: Optional[float] = None

    def set_on(self, now: float) -> None:
        if self.open_since is None:
            self.open_since = now

    def set_off(self, now: float) -> None:
        if self.open_since is not None:
            self.intervals.append((self.open_since, now))
            self.open_since = None

    def close(self, now: float) -> None:
        self.set_off(now)

    def total(self) -> float:
        return sum(end - start for start, end in self.intervals)

    def total_clipped(self, clip_start: float, clip_end: float) -> float:
        """Total time inside [clip_start, clip_end]."""
        total = 0.0
        for start, end in self.intervals:
            lo = max(start, clip_start)
            hi = min(end, clip_end)
            if hi > lo:
                total += hi - lo
        return total


@dataclass
class RemotePeerRecord:
    """Everything observed about one remote peer (keyed by address)."""

    address: str
    client_id: Optional[str] = None
    presence: _IntervalTracker = field(default_factory=_IntervalTracker)
    local_interested_in_remote: _IntervalTracker = field(
        default_factory=_IntervalTracker
    )
    remote_interested_in_local: _IntervalTracker = field(
        default_factory=_IntervalTracker
    )
    unchoke_times: List[float] = field(default_factory=list)
    """Times the local peer unchoked this remote (choked -> unchoked)."""

    unchoked_rounds_leecher: int = 0
    """Choke rounds (local in leecher state) this remote ended unchoked."""

    unchoked_rounds_seed: int = 0
    """Choke rounds (local in seed state) this remote ended unchoked.
    Multiplied by the round period this is the *service time* the seed
    granted the peer — the quantity the paper's seed criterion equalises."""

    uploaded_leecher_state: float = 0.0
    uploaded_seed_state: float = 0.0
    downloaded_leecher_state: float = 0.0
    downloaded_seed_state: float = 0.0
    remote_seed_since: Optional[float] = None
    """First time the remote's bitfield was observed complete, if ever."""

    def total_presence(self) -> float:
        return self.presence.total()

    def was_ever_seed(self) -> bool:
        return self.remote_seed_since is not None

    def was_seed_on_arrival(self) -> bool:
        """True when the remote already had every piece when it entered
        the peer set — a *seed peer* in the paper's sense, as opposed to
        a leecher that completed during the observation."""
        if self.remote_seed_since is None:
            return False
        if not self.presence.intervals and self.presence.open_since is None:
            return False
        first_seen = (
            self.presence.intervals[0][0]
            if self.presence.intervals
            else self.presence.open_since
        )
        return self.remote_seed_since <= first_seen + 1e-9


@dataclass
class _ConnectionState:
    """Per-connection accounting helpers."""

    record: RemotePeerRecord
    opened_at: float
    opened_in_seed_state: bool
    marker_uploaded: Optional[float] = None
    marker_downloaded: Optional[float] = None


class Instrumentation(PeerObserver):
    """Record the full local-peer trace of one experiment."""

    def __init__(self, record_rates: bool = False, snapshot_interval: Optional[float] = None):
        self.peer = None
        self.records: Dict[str, RemotePeerRecord] = {}
        self.block_arrivals: List[Tuple[float, int, int, int]] = []
        self.piece_completions: List[Tuple[float, int]] = []
        self.snapshots: List[Snapshot] = []
        self.choke_rounds: List[Tuple[float, int]] = []
        self.rate_samples: List[Tuple[float, str, float, float]] = []
        self.seed_state_at: Optional[float] = None
        self.endgame_at: Optional[float] = None
        self.hash_failures: List[Tuple[float, int]] = []
        # Streaming playback series (empty unless the observed peer has
        # PeerConfig.playback_rate set): every on_playback transition,
        # plus the derived series analysis reads.
        self.playback_events: List[Tuple[float, str, dict]] = []
        self.playback_started_at: Optional[float] = None
        self.playback_startup_delay: Optional[float] = None
        self.playback_finished_at: Optional[float] = None
        self.rebuffer_intervals: List[List[Optional[float]]] = []
        """Closed ``[start, end]`` stall windows; the last entry's end is
        None while a stall is still open when the run stops."""

        self.in_order_history: List[Tuple[float, int, int]] = []
        """(time, contiguous pieces, contiguous bytes) at every in-order
        delivery advance — the in-order delivery-rate series."""
        self.stability_events: List[Tuple[float, str, dict]] = []
        """Swarm-level stability samples (empty unless a
        :class:`~repro.workloads.open_system.StabilityDetector` is
        attached): every on_stability event, feeding the open-system
        stable/unstable classifier in :mod:`repro.analysis.stability`."""
        self.announce_events: List[Tuple[float, str, dict]] = []
        """Tracker-announce events (empty unless
        ``SwarmConfig.trace_announces`` is set): one entry per
        successful announce, plus ``announce.<kind>`` counters in
        :attr:`metrics`."""
        self.metrics = MetricsRegistry()
        """Counter/gauge/histogram registry fed by the hooks; the
        compatibility views :attr:`messages_sent`,
        :attr:`messages_received` and :attr:`fault_counters` read
        through it, so every counter has exactly one implementation."""
        self._sent_counter = self.metrics.counter("messages.sent")
        self._received_counter = self.metrics.counter("messages.received")
        self._record_rates = record_rates
        self._snapshot_interval = snapshot_interval
        self._connection_states: Dict[int, _ConnectionState] = {}
        self._currently_unchoked: set = set()
        self._finalized_at: Optional[float] = None

    # ------------------------------------------------------------------
    # attachment & sampling
    # ------------------------------------------------------------------

    def on_attached(self, peer) -> None:
        self.peer = peer

    def start_sampling(self) -> None:
        """Begin periodic snapshots; call after the peer has joined."""
        from repro.sim.engine import Timer  # local import avoids a cycle

        interval = self._snapshot_interval or peer_snapshot_interval(self.peer)
        Timer(self.peer.simulator, interval, self.take_snapshot)
        self.take_snapshot()

    def take_snapshot(self) -> None:
        peer = self.peer
        if peer is None:
            return
        now = peer.simulator.now
        if not peer.online:
            # Churn window: the sampling timer outlives a departed or
            # crashed peer.  Silently dropping the sample used to leave a
            # hole downstream code interpolated across; record an
            # explicit offline marker instead.
            snapshot = Snapshot(
                time=now,
                peer_set_size=0,
                min_copies=0,
                mean_copies=0.0,
                max_copies=0,
                rarest_count=0,
                rarest_set_size=0,
                local_pieces=peer.bitfield.count,
                is_seed=peer.is_seed,
                in_endgame=False,
                active_partial_pieces=0,
                offline=True,
            )
        else:
            availability = peer.picker.availability
            rarest_count, rarest_pieces = peer.picker.rarest_pieces_set()
            num_pieces = len(availability) or 1
            snapshot = Snapshot(
                time=now,
                peer_set_size=peer.peer_set_size,
                min_copies=min(availability) if availability else 0,
                mean_copies=sum(availability) / num_pieces,
                max_copies=max(availability) if availability else 0,
                rarest_count=rarest_count,
                rarest_set_size=len(rarest_pieces),
                local_pieces=peer.bitfield.count,
                is_seed=peer.is_seed,
                in_endgame=peer.picker.in_endgame,
                active_partial_pieces=len(peer.picker.active_pieces),
            )
        # Route through the peer's observer chain when this recorder is
        # fanned out with others (e.g. a TracingObserver): there is ONE
        # sampler, so every observer sees the same snapshot object
        # rather than re-computing a possibly divergent one.
        observer = peer.observer
        if isinstance(observer, FanoutObserver) and self in observer:
            observer.on_snapshot(now, snapshot)
        else:
            self.on_snapshot(now, snapshot)

    def on_snapshot(self, now: float, snapshot: Snapshot) -> None:
        self.snapshots.append(snapshot)

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------

    def _record_for(self, connection: Connection) -> RemotePeerRecord:
        address = connection.remote.address
        record = self.records.get(address)
        if record is None:
            record = RemotePeerRecord(address=address)
            self.records[address] = record
        if record.client_id is None:
            record.client_id = connection.remote.peer_id.client_id
        return record

    def on_connection_open(self, now: float, connection: Connection) -> None:
        record = self._record_for(connection)
        record.presence.set_on(now)
        self._connection_states[id(connection)] = _ConnectionState(
            record=record,
            opened_at=now,
            opened_in_seed_state=self.peer.is_seed if self.peer else False,
        )
        if connection.remote.bitfield.is_complete() and record.remote_seed_since is None:
            record.remote_seed_since = now

    def on_connection_close(self, now: float, connection: Connection) -> None:
        state = self._connection_states.pop(id(connection), None)
        if state is None:
            return
        record = state.record
        record.presence.set_off(now)
        record.local_interested_in_remote.set_off(now)
        record.remote_interested_in_local.set_off(now)
        self._currently_unchoked.discard(connection.remote.address)
        self._flush_bytes(state, connection)

    def _flush_bytes(self, state: _ConnectionState, connection: Connection) -> None:
        uploaded = connection.uploaded.total
        downloaded = connection.downloaded.total
        record = state.record
        if state.marker_uploaded is not None:
            record.uploaded_leecher_state += state.marker_uploaded
            record.uploaded_seed_state += uploaded - state.marker_uploaded
            record.downloaded_leecher_state += state.marker_downloaded or 0.0
            record.downloaded_seed_state += downloaded - (state.marker_downloaded or 0.0)
        elif state.opened_in_seed_state:
            record.uploaded_seed_state += uploaded
            record.downloaded_seed_state += downloaded
        else:
            record.uploaded_leecher_state += uploaded
            record.downloaded_leecher_state += downloaded

    # ------------------------------------------------------------------
    # messages
    # ------------------------------------------------------------------

    def on_message_sent(self, now: float, connection: Connection, message: Message) -> None:
        self._sent_counter.inc()
        record = self._record_for(connection)
        if isinstance(message, Interested):
            record.local_interested_in_remote.set_on(now)
        elif isinstance(message, NotInterested):
            record.local_interested_in_remote.set_off(now)

    def on_message_received(
        self, now: float, connection: Connection, message: Message
    ) -> None:
        self._received_counter.inc()
        record = self._record_for(connection)
        if isinstance(message, Interested):
            record.remote_interested_in_local.set_on(now)
        elif isinstance(message, NotInterested):
            record.remote_interested_in_local.set_off(now)
        elif isinstance(message, (Have, BitfieldMessage)):
            if (
                record.remote_seed_since is None
                and connection.remote_bitfield is not None
            ):
                # remote_bitfield is updated by the peer after this hook,
                # so check completeness including the incoming message.
                if isinstance(message, Have):
                    missing = connection.remote_bitfield.missing
                    if missing == 1 and not connection.remote_bitfield.has(message.piece):
                        record.remote_seed_since = now
                else:
                    num_pieces = connection.remote_bitfield.num_pieces
                    ones = sum(bin(byte).count("1") for byte in message.bits)
                    # Spare padding bits of the final byte must not count
                    # toward seed detection: a leecher advertising a
                    # sloppily padded bitfield is still a leecher.
                    spare = len(message.bits) * 8 - num_pieces
                    if spare > 0 and message.bits:
                        ones -= bin(
                            message.bits[-1] & ((1 << spare) - 1)
                        ).count("1")
                    if ones >= num_pieces:
                        record.remote_seed_since = now

    # ------------------------------------------------------------------
    # choke algorithm
    # ------------------------------------------------------------------

    def on_choke_round(self, now: float, decision: ChokeDecision) -> None:
        self.choke_rounds.append((now, len(decision.unchoked)))
        newly_unchoked = set(decision.unchoked) - self._currently_unchoked
        for address in newly_unchoked:
            record = self.records.get(address)
            if record is not None:
                record.unchoke_times.append(now)
        local_is_seed = self.peer.is_seed if self.peer else False
        for address in decision.unchoked:
            record = self.records.get(address)
            if record is None:
                continue
            if local_is_seed:
                record.unchoked_rounds_seed += 1
            else:
                record.unchoked_rounds_leecher += 1
        self._currently_unchoked = set(decision.unchoked)

    def on_rate_sample(
        self, now: float, connection: Connection, download_rate: float, upload_rate: float
    ) -> None:
        if self._record_rates:
            self.rate_samples.append(
                (now, connection.remote.address, download_rate, upload_rate)
            )

    # ------------------------------------------------------------------
    # transfers & events
    # ------------------------------------------------------------------

    def on_block_received(
        self, now: float, connection: Connection, piece: int, offset: int, length: int
    ) -> None:
        self.block_arrivals.append((now, piece, offset, length))

    def on_piece_completed(self, now: float, piece: int) -> None:
        self.piece_completions.append((now, piece))

    def on_endgame_entered(self, now: float) -> None:
        if self.endgame_at is None:
            self.endgame_at = now

    def on_seed_state(self, now: float) -> None:
        self.seed_state_at = now
        # Mark byte totals on every open connection so leecher-state and
        # seed-state transfers can be separated (figures 9 and 11).
        for state in self._connection_states.values():
            connection = self._find_connection(state)
            if connection is not None:
                state.marker_uploaded = connection.uploaded.total
                state.marker_downloaded = connection.downloaded.total

    def _find_connection(self, state: _ConnectionState) -> Optional[Connection]:
        if self.peer is None:
            return None
        return self.peer.connections.get(state.record.address)

    def on_hash_failure(self, now: float, piece: int) -> None:
        self.hash_failures.append((now, piece))

    def on_fault(self, now: float, kind: str) -> None:
        self.metrics.inc("fault." + kind)

    def on_stability(self, now: float, kind: str, data: dict) -> None:
        self.stability_events.append((now, kind, dict(data)))

    def on_announce(self, now: float, kind: str, data: dict) -> None:
        self.announce_events.append((now, kind, dict(data)))
        self.metrics.inc("announce." + kind)

    def on_playback(self, now: float, kind: str, data: dict) -> None:
        self.playback_events.append((now, kind, dict(data)))
        if kind == "progress":
            self.in_order_history.append((now, data["pieces"], data["bytes"]))
        elif kind == "start":
            self.playback_started_at = now
            self.playback_startup_delay = data["delay"]
        elif kind == "stall":
            self.rebuffer_intervals.append([now, None])
            self.metrics.inc("playback.rebuffers")
        elif kind == "resume":
            if self.rebuffer_intervals and self.rebuffer_intervals[-1][1] is None:
                self.rebuffer_intervals[-1][1] = now
        elif kind == "finish":
            self.playback_finished_at = now

    @property
    def rebuffer_count(self) -> int:
        return len(self.rebuffer_intervals)

    @property
    def rebuffer_seconds(self) -> float:
        """Total closed stall time (an open final stall contributes 0 —
        callers wanting it clipped pass an end time to analysis)."""
        return sum(
            end - start for start, end in self.rebuffer_intervals if end is not None
        )

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------

    def finalize(self, now: Optional[float] = None) -> None:
        """Close every open interval and flush open-connection byte totals.

        Idempotent; analysis helpers call it defensively.
        """
        if self.peer is None:
            return
        if now is None:
            now = self.peer.simulator.now
        if self._finalized_at == now:
            return
        self._finalized_at = now
        for state in list(self._connection_states.values()):
            record = state.record
            record.presence.set_off(now)
            record.local_interested_in_remote.set_off(now)
            record.remote_interested_in_local.set_off(now)
            connection = self._find_connection(state)
            if connection is not None:
                self._flush_bytes(state, connection)
        self._connection_states.clear()

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    @property
    def messages_sent(self) -> int:
        """Compatibility view over the ``messages.sent`` counter."""
        return int(self._sent_counter.value)

    @messages_sent.setter
    def messages_sent(self, value: int) -> None:
        self._sent_counter.reset_to(value)

    @property
    def messages_received(self) -> int:
        """Compatibility view over the ``messages.received`` counter."""
        return int(self._received_counter.value)

    @messages_received.setter
    def messages_received(self, value: int) -> None:
        self._received_counter.reset_to(value)

    @property
    def fault_counters(self) -> Dict[str, int]:
        """Injected-fault events observed at the local peer, keyed by
        kind (``announce_failure``, ``announce_retry``,
        ``connection_reaped``, ``stale_requests_reset``,
        ``hash_failure_injected``); empty when fault injection is off.
        Compatibility view over the registry's ``fault.*`` counters."""
        return {
            kind: int(count)
            for kind, count in self.metrics.with_prefix("fault.").items()
        }

    @fault_counters.setter
    def fault_counters(self, counters: Dict[str, int]) -> None:
        for kind in self.metrics.with_prefix("fault."):
            if kind not in counters:
                self.metrics.counter("fault." + kind).reset_to(0)
        for kind, count in counters.items():
            self.metrics.counter("fault." + kind).reset_to(count)

    @property
    def _seed_since(self) -> Optional[float]:
        """When the local peer entered seed state: the observed event, or
        its join time when it was created as a seed."""
        if self.seed_state_at is not None:
            return self.seed_state_at
        if self.peer is not None and self.peer.became_seed_at is not None:
            return max(self.peer.became_seed_at, self.peer.joined_at or 0.0)
        return None

    @property
    def leecher_interval(self) -> Interval:
        """The local peer's [join, became-seed-or-end] interval."""
        start = self.peer.joined_at if self.peer else 0.0
        end = self._seed_since
        if end is None:
            end = self._finalized_at or (self.peer.simulator.now if self.peer else 0.0)
        return (start or 0.0, end)

    @property
    def seed_interval(self) -> Optional[Interval]:
        start = self._seed_since
        if start is None:
            return None
        end = self._finalized_at or (self.peer.simulator.now if self.peer else 0.0)
        return (start, end)


def peer_snapshot_interval(peer) -> float:
    """Default snapshot interval, taken from the swarm configuration."""
    return peer.swarm.config.snapshot_interval
