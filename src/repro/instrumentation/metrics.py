"""Swarm-observability metrics: counters, gauges, histograms, rates.

The paper's methodology is log-then-analyse; a production-scale swarm
additionally needs *cheap, always-on* aggregates that can be read while
the system runs.  This module provides them as a tiny, dependency-free
registry shared by the instrumentation layer, the CLI's ``metrics``
command and the engine profiler:

* :class:`Counter` — monotonically increasing totals (messages, faults);
* :class:`Gauge` — last-write-wins values (peer-set size, queue depth);
* :class:`Histogram` — fixed-bucket distributions (per-event wall time);
* :class:`WindowedRate` — events per second over a sliding window.

Everything is deterministic: observing a value never draws randomness
and never touches the wall clock (callers pass ``now`` explicitly), so a
metrics-instrumented simulation is byte-identical to a bare one.

>>> registry = MetricsRegistry()
>>> registry.inc("messages.sent")
>>> registry.inc("messages.sent", 2)
>>> registry.counter("messages.sent").value
3.0
>>> h = registry.histogram("latency", buckets=(0.1, 1.0))
>>> for sample in (0.05, 0.5, 5.0):
...     h.observe(sample)
>>> h.counts  # <=0.1, <=1.0, overflow
[1, 1, 1]
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedRate",
    "MetricsRegistry",
    "EngineProfiler",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount

    def reset_to(self, value: float) -> None:
        """Overwrite the total (trace-loading/compatibility path only)."""
        self.value = float(value)

    def __repr__(self) -> str:
        return "Counter(%s=%g)" % (self.name, self.value)


class Gauge:
    """A last-write-wins value with a running maximum."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def __repr__(self) -> str:
        return "Gauge(%s=%g, max=%g)" % (self.name, self.value, self.max_value)


class Histogram:
    """Fixed upper-bound buckets plus one overflow bucket.

    ``counts[i]`` tallies observations ``<= buckets[i]`` (exclusive of
    lower buckets); the final entry counts overflows above the last
    bound.  Bounds are fixed at construction so merging/rendering never
    re-bins.
    """

    __slots__ = ("name", "buckets", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float]):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.buckets: Tuple[float, ...] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket containing quantile *q* (None when
        empty or when the quantile lands in the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return None
        rank = q * self.total
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            if running >= rank:
                return bound
        return None  # lands in the overflow bucket

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%g)" % (self.name, self.total, self.mean())


class WindowedRate:
    """Events per second over a sliding time window.

    Timestamps come from the caller (simulated or wall time); the class
    itself never reads a clock.
    """

    __slots__ = ("name", "window", "_times", "count")

    def __init__(self, name: str, window: float = 20.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        self._times: deque = deque()
        self.count = 0  # lifetime total, survives window eviction

    def record(self, now: float, occurrences: int = 1) -> None:
        for __ in range(occurrences):
            self._times.append(now)
        self.count += occurrences
        self._evict(now)

    def rate(self, now: float) -> float:
        self._evict(now)
        return len(self._times) / self.window

    def _evict(self, now: float) -> None:
        horizon = now - self.window
        times = self._times
        while times and times[0] <= horizon:
            times.popleft()

    def __repr__(self) -> str:
        return "WindowedRate(%s, window=%gs, total=%d)" % (
            self.name, self.window, self.count
        )


DEFAULT_TIME_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 1e-1,
)


class MetricsRegistry:
    """Name-keyed store of metrics, one flat namespace per registry.

    Dots namespace the flat keys by convention (``messages.sent``,
    ``fault.announce_retry``); :meth:`with_prefix` slices a namespace
    back out as a plain mapping.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._rates: Dict[str, WindowedRate] = {}

    # -- get-or-create accessors -------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, buckets)
        return histogram

    def rate(self, name: str, window: float = 20.0) -> WindowedRate:
        rate = self._rates.get(name)
        if rate is None:
            rate = self._rates[name] = WindowedRate(name, window)
        return rate

    # -- convenience -------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def value(self, name: str) -> float:
        """Current value of counter *name* (0 when never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """Counters under *prefix*, keys stripped of it, as a plain dict."""
        return {
            name[len(prefix):]: counter.value
            for name, counter in self._counters.items()
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, dict]:
        """All metrics as one JSON-serialisable document."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "max": gauge.max_value}
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "sum": histogram.sum,
                    "min": histogram.min,
                    "max": histogram.max,
                }
                for name, histogram in sorted(self._histograms.items())
            },
            "rates": {
                name: {"window": rate.window, "total": rate.count}
                for name, rate in sorted(self._rates.items())
            },
        }

    def render(self) -> str:
        """Human-readable multi-section dump for the CLI."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name, counter in sorted(self._counters.items()):
                lines.append("  %-40s %12g" % (name, counter.value))
        if self._gauges:
            lines.append("gauges:")
            for name, gauge in sorted(self._gauges.items()):
                lines.append(
                    "  %-40s %12g  (max %g)" % (name, gauge.value, gauge.max_value)
                )
        if self._histograms:
            lines.append("histograms:")
            for name, histogram in sorted(self._histograms.items()):
                lines.append(
                    "  %-40s n=%-8d mean=%-12.6g min=%-12.6g max=%-12.6g"
                    % (
                        name,
                        histogram.total,
                        histogram.mean(),
                        histogram.min if histogram.min is not None else 0.0,
                        histogram.max if histogram.max is not None else 0.0,
                    )
                )
        if self._rates:
            lines.append("rates:")
            for name, rate in sorted(self._rates.items()):
                lines.append(
                    "  %-40s total=%-10d window=%gs" % (name, rate.count, rate.window)
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


class EngineProfiler:
    """Per-event-type timing and queue-depth profile of a simulator run.

    Install with :meth:`repro.sim.engine.Simulator.set_profiler`; the
    engine then wraps every executed callback with a wall-clock sample
    and reports ``(label, elapsed_seconds, queue_depth)`` here.  Labels
    are callback qualnames (``Peer._choke_round``,
    ``Swarm._tick``, ``Timer._fire``, ...), giving a per-event-type cost
    breakdown of the hot loop.

    Profiling only affects wall-clock observation — never simulated
    time, event order or RNG draws — so a profiled run's trace is
    byte-identical to an unprofiled one.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        from time import perf_counter  # wall clock, profiling only

        self.clock = perf_counter

    def observe(self, label: str, elapsed: float, queue_depth: int) -> None:
        registry = self.registry
        registry.inc("events." + label)
        registry.histogram("seconds." + label).observe(elapsed)
        registry.gauge("queue.depth").set(queue_depth)

    def report(self, limit: int = 12) -> str:
        """Top event types by cumulative wall time, one line each."""
        histograms = [
            histogram
            for name, histogram in self.registry._histograms.items()
            if name.startswith("seconds.")
        ]
        histograms.sort(key=lambda h: h.sum, reverse=True)
        depth = self.registry.gauge("queue.depth")
        lines = [
            "engine profile (top %d event types by cumulative wall time):"
            % min(limit, len(histograms)),
            "  %-44s %10s %12s %12s" % ("event type", "count", "total s", "mean us"),
        ]
        for histogram in histograms[:limit]:
            lines.append(
                "  %-44s %10d %12.4f %12.2f"
                % (
                    histogram.name[len("seconds."):],
                    histogram.total,
                    histogram.sum,
                    histogram.mean() * 1e6,
                )
            )
        lines.append(
            "  queue depth: last=%d max=%d" % (depth.value, depth.max_value)
        )
        return "\n".join(lines)
