"""Offline reconstruction of instrumentation state from a trace file.

:func:`replay_instrumentation` reads a JSONL trace written by
:class:`~repro.instrumentation.trace.TracingObserver` and rebuilds an
:class:`~repro.instrumentation.logger.Instrumentation` **without running
the simulator**: it instantiates the real observer class, points it at a
lightweight stub peer, and drives the exact same hook methods the live
simulation would have called, in the same order, with the same
arguments.  Because the live and replayed objects execute identical
code on identical inputs, every derived quantity — presence intervals,
byte splits, unchoke counts, snapshot series, and hence every figure —
is reproduced with exact field-level equality (floats included: JSON
round-trips IEEE doubles exactly).

This is the audit path the paper's methodology implies but never had:
any claim made from the live instrumentation can be re-derived from the
portable trace file alone.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Union

from repro.core.choke import ChokeDecision
from repro.instrumentation.logger import Instrumentation, Snapshot
from repro.instrumentation.trace import TRACE_SCHEMA_VERSION, TraceRecorder
from repro.protocol.bitfield import Bitfield
from repro.protocol.messages import (
    Bitfield as BitfieldMessage,
    Cancel,
    Choke,
    Have,
    Interested,
    KeepAlive,
    NotInterested,
    Piece,
    Request,
    Unchoke,
)

TraceSource = Union[str, TraceRecorder, Iterable[str]]


class TraceFormatError(ValueError):
    """The trace file is missing, truncated, or from another schema."""


def iter_trace(source: TraceSource, verify: bool = True) -> List[dict]:
    """Parse a trace into its event list (header/footer stripped).

    *source* is a file path, an in-memory :class:`TraceRecorder`, or any
    iterable of JSONL lines.  With ``verify`` (the default) the header's
    schema version is checked and, when a ``trace_end`` footer is
    present, the recomputed content fingerprint and event count must
    match it — so silent truncation or editing fails loudly.
    """
    if isinstance(source, TraceRecorder):
        lines = source.lines()
    elif isinstance(source, str):
        with open(source, "rb") as handle:
            head = handle.read(4)
        if head == b"RBT1":
            # A binary trace: decode it to the equivalent JSONL lines
            # (imported lazily — bintrace imports this module's error).
            from repro.instrumentation.bintrace import binary_to_jsonl

            lines = binary_to_jsonl(source)
        else:
            with open(source) as handle:
                lines = [line.rstrip("\n") for line in handle]
    else:
        lines = [line.rstrip("\n") for line in source]
    lines = [line for line in lines if line]
    if not lines:
        raise TraceFormatError("empty trace")

    import hashlib

    hasher = hashlib.sha256()
    events: List[dict] = []
    footer: Optional[dict] = None
    for index, line in enumerate(lines):
        try:
            event = json.loads(line)
        except ValueError:
            raise TraceFormatError("line %d is not valid JSON" % (index + 1))
        kind = event.get("type")
        if index == 0:
            if kind != "trace_start":
                raise TraceFormatError("missing trace_start header")
            if verify and event.get("v") != TRACE_SCHEMA_VERSION:
                raise TraceFormatError(
                    "trace schema v%s, reader supports v%d"
                    % (event.get("v"), TRACE_SCHEMA_VERSION)
                )
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
            continue
        if kind == "trace_end":
            footer = event
            break
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
        events.append(event)
    if verify and footer is not None:
        if footer.get("events") != len(events):
            raise TraceFormatError(
                "footer says %s events, found %d" % (footer.get("events"), len(events))
            )
        digest = hasher.hexdigest()
        if footer.get("fingerprint") != digest:
            raise TraceFormatError("trace fingerprint mismatch (file edited?)")
    return events


def traced_peers(source: TraceSource) -> List[str]:
    """Addresses of every peer with an ``attach`` event, in trace order."""
    seen: List[str] = []
    for event in iter_trace(source):
        if event.get("type") == "attach" and event["peer"] not in seen:
            seen.append(event["peer"])
    return seen


# ---------------------------------------------------------------------------
# Stub simulator objects: just enough surface for Instrumentation's hooks.
# ---------------------------------------------------------------------------


class _StubSimulator:
    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


class _StubCounter:
    """Stands in for a ByteCounter: only ``.total`` is read."""

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0.0


class _StubPeerId:
    __slots__ = ("client_id",)

    def __init__(self, client_id: Optional[str]):
        self.client_id = client_id


class _StubCompleteness:
    """Stands in for the remote peer's bitfield at connection open; the
    live observer only asks :meth:`is_complete`."""

    __slots__ = ("_complete",)

    def __init__(self, complete: bool):
        self._complete = complete

    def is_complete(self) -> bool:
        return self._complete


class _StubRemote:
    __slots__ = ("address", "peer_id", "bitfield")

    def __init__(self, address: str, client_id: Optional[str], complete: bool):
        self.address = address
        self.peer_id = _StubPeerId(client_id)
        self.bitfield = _StubCompleteness(complete)


class _ReplayConnection:
    """One replayed link: identity, byte totals and the remote bitfield
    as known *before* each incoming message (the live hook's view)."""

    __slots__ = ("remote", "remote_bitfield", "uploaded", "downloaded")

    def __init__(
        self,
        address: str,
        client_id: Optional[str],
        remote_complete: bool,
        num_pieces: int,
    ):
        self.remote = _StubRemote(address, client_id, remote_complete)
        self.remote_bitfield = Bitfield(num_pieces)
        self.uploaded = _StubCounter()
        self.downloaded = _StubCounter()


class _ReplayPeer:
    """The observed peer, reduced to the attributes the observer reads."""

    __slots__ = (
        "address",
        "is_seed",
        "online",
        "joined_at",
        "became_seed_at",
        "simulator",
        "connections",
    )

    def __init__(self, address: str):
        self.address = address
        self.is_seed = False
        self.online = True
        self.joined_at: Optional[float] = None
        self.became_seed_at: Optional[float] = None
        self.simulator = _StubSimulator()
        self.connections: Dict[str, _ReplayConnection] = {}


_SIMPLE_MESSAGES = {
    "Interested": Interested,
    "NotInterested": NotInterested,
    "Choke": Choke,
    "Unchoke": Unchoke,
    "KeepAlive": KeepAlive,
}


class _OpaqueMessage:
    """Fallback for message types the observer treats generically."""

    __slots__ = ()


def _build_message(event: dict):
    name = event["msg"]
    simple = _SIMPLE_MESSAGES.get(name)
    if simple is not None:
        return simple()
    if name == "Have":
        return Have(piece=event["piece"])
    if name == "Bitfield":
        return BitfieldMessage(bits=bytes.fromhex(event["bits"]))
    if name == "Request":
        return Request(
            piece=event["piece"], offset=event["offset"], length=event["length"]
        )
    if name == "Cancel":
        return Cancel(
            piece=event["piece"], offset=event["offset"], length=event["length"]
        )
    if name == "Piece":
        return Piece(
            piece=event["piece"], offset=event["offset"], data=b"\0" * event["length"]
        )
    return _OpaqueMessage()


class ReplayedInstrumentation(Instrumentation):
    """An :class:`Instrumentation` rebuilt from a trace file.

    Identical API to the live object; ``replayed_from_events`` counts
    the trace events consumed.
    """

    def __init__(self) -> None:
        super().__init__(record_rates=True)
        self.replayed_from_events = 0


def _apply_open_entries(
    entries: List[dict],
    peer: _ReplayPeer,
    open_connections: Dict[str, _ReplayConnection],
) -> None:
    """Sync stub connection totals with a ``seed_state``/``finalize``
    event's snapshot of the live connection table.  Entries without
    totals mean the live peer had already dropped the link (a crash)
    without a close notification: the stub table drops it too, so the
    replayed flush skips it exactly like the live one did."""
    for entry in entries:
        address = entry["remote"]
        connection = open_connections.get(address)
        if "up" in entry and connection is not None:
            connection.uploaded.total = entry["up"]
            connection.downloaded.total = entry["down"]
        else:
            peer.connections.pop(address, None)


def replay_instrumentation(
    source: TraceSource, peer: Optional[str] = None, verify: bool = True
) -> ReplayedInstrumentation:
    """Rebuild the instrumentation of one traced peer from *source*.

    ``peer`` selects which traced peer to reconstruct when the trace
    covers several (swarm-wide tracing); it defaults to the first peer
    with an ``attach`` event.
    """
    events = iter_trace(source, verify=verify)
    if peer is None:
        for event in events:
            if event.get("type") == "attach":
                peer = event["peer"]
                break
        if peer is None:
            raise TraceFormatError("trace contains no attach event")

    instrumentation = ReplayedInstrumentation()
    stub = _ReplayPeer(peer)
    instrumentation.on_attached(stub)
    num_pieces = 0
    open_connections: Dict[str, _ReplayConnection] = {}

    for event in events:
        if event.get("peer") != peer:
            continue
        instrumentation.replayed_from_events += 1
        kind = event["type"]
        now = event["t"]
        stub.simulator.now = now

        if kind == "attach":
            num_pieces = event["pieces"]
            stub.is_seed = event["seed"]
            stub.joined_at = now
            if event["seed"]:
                # Peer.__init__ stamps initial seeds with became_seed_at=0.
                stub.became_seed_at = 0.0
        elif kind == "conn_open":
            connection = _ReplayConnection(
                event["remote"], event["client"], event["remote_complete"], num_pieces
            )
            stub.is_seed = event["local_seed"]
            open_connections[event["remote"]] = connection
            stub.connections[event["remote"]] = connection
            instrumentation.on_connection_open(now, connection)
        elif kind == "conn_close":
            connection = open_connections.pop(event["remote"], None)
            if connection is None:
                # Open event predates the trace: the live observer had no
                # state for this link either, so the hook is a no-op.
                connection = _ReplayConnection(event["remote"], None, False, num_pieces)
            connection.uploaded.total = event["up"]
            connection.downloaded.total = event["down"]
            stub.connections.pop(event["remote"], None)
            instrumentation.on_connection_close(now, connection)
        elif kind in ("msg_sent", "msg_recv"):
            connection = open_connections.get(event["remote"])
            if connection is None:
                connection = _ReplayConnection(event["remote"], None, False, num_pieces)
            message = _build_message(event)
            if kind == "msg_sent":
                instrumentation.on_message_sent(now, connection, message)
            else:
                instrumentation.on_message_received(now, connection, message)
                # The live peer applies the message to its view of the
                # remote bitfield *after* the hook; mirror that here so
                # the next hook sees the same pre-message state.
                if isinstance(message, BitfieldMessage):
                    connection.remote_bitfield = Bitfield.from_bytes(
                        message.bits, num_pieces
                    )
                elif isinstance(message, Have):
                    connection.remote_bitfield.set(message.piece)
        elif kind == "choke":
            stub.is_seed = event["local_seed"]
            instrumentation.on_choke_round(
                now, ChokeDecision(unchoked=list(event["unchoked"]))
            )
        elif kind == "rate":
            connection = open_connections.get(event["remote"])
            if connection is None:
                connection = _ReplayConnection(event["remote"], None, False, num_pieces)
            instrumentation.on_rate_sample(
                now, connection, event["down"], event["up"]
            )
        elif kind == "block":
            connection = open_connections.get(event["remote"])
            if connection is None:
                connection = _ReplayConnection(event["remote"], None, False, num_pieces)
            instrumentation.on_block_received(
                now, connection, event["piece"], event["offset"], event["length"]
            )
        elif kind == "piece":
            instrumentation.on_piece_completed(now, event["piece"])
        elif kind == "endgame":
            instrumentation.on_endgame_entered(now)
        elif kind == "seed_state":
            _apply_open_entries(event["open"], stub, open_connections)
            stub.is_seed = True
            stub.became_seed_at = now
            instrumentation.on_seed_state(now)
        elif kind == "hash_fail":
            instrumentation.on_hash_failure(now, event["piece"])
        elif kind == "fault":
            instrumentation.on_fault(now, event["kind"])
        elif kind == "snapshot":
            instrumentation.on_snapshot(now, Snapshot(**event["data"]))
        elif kind == "playback":
            instrumentation.on_playback(now, event["kind"], event["data"])
        elif kind == "stability":
            instrumentation.on_stability(now, event["kind"], event["data"])
        elif kind == "announce":
            instrumentation.on_announce(now, event["kind"], event["data"])
        elif kind == "finalize":
            _apply_open_entries(event["open"], stub, open_connections)
            stub.joined_at = event["joined_at"]
            stub.became_seed_at = event["became_seed_at"]
            instrumentation.finalize(now=now)
        # Unknown event types are skipped: newer minor revisions may add
        # informational events without breaking old readers.

    return instrumentation
