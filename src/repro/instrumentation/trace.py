"""Swarm-wide structured tracing.

The paper's methodology is a log of "each BitTorrent message sent or
received [...], each state change in the choke algorithm, [...] and
important events" (§III-C) — for the one instrumented client.  This
module generalises that log to *any* peer: a :class:`TracingObserver`
can be attached (alone or fanned out next to the classic
:class:`~repro.instrumentation.logger.Instrumentation`) to every peer in
the swarm, and appends one typed, schema-versioned JSON object per event
to a shared :class:`TraceRecorder`.

The trace is designed to be **replayable**: it carries exactly the
information the live :class:`~repro.instrumentation.logger.Instrumentation`
reads from the simulator at each hook, so
:func:`repro.instrumentation.replay.replay_instrumentation` can rebuild
byte-equal ``RemotePeerRecord``/``Snapshot`` series offline.  It is also
**deterministic**: events are serialised with a fixed key order and no
timestamps other than simulated time, so the same seed yields a
byte-identical JSONL file and content fingerprint.

>>> recorder = TraceRecorder()
>>> recorder.emit({"t": 0.0, "type": "piece", "peer": "10.0.0.1", "piece": 3})
>>> fingerprint = recorder.close()
>>> [event["type"] for event in recorder.events()]
['piece']
>>> len(fingerprint)
64

Event catalogue (schema v1) — every event carries ``t`` (simulated
seconds), ``type`` and ``peer`` (the observed peer's address):

=============  ==============================================================
``attach``     ``pieces`` (torrent piece count), ``seed`` (started complete)
``conn_open``  ``remote``, ``client``, ``remote_complete``, ``local_seed``,
               ``initiated``
``conn_close`` ``remote``, ``up``/``down`` (connection byte totals)
``msg_sent``   ``remote``, ``msg`` (class name) + message payload fields
``msg_recv``   (``piece``; ``bits`` hex; ``piece``/``offset``/``length``)
``choke``      ``unchoked`` (addresses), ``local_seed``
``rate``       ``remote``, ``down``, ``up`` (rate-estimator samples)
``block``      ``remote``, ``piece``, ``offset``, ``length``
``piece``      ``piece``
``endgame``    —
``seed_state`` ``open``: per open connection ``remote`` (+ ``up``/``down``
               when the link is still in the peer's connection table)
``hash_fail``  ``piece``
``fault``      ``kind`` (injected-fault counter key)
``playback``   ``kind`` (``progress``/``start``/``stall``/``resume``/
               ``finish``), ``data`` (in-order prefix + position, see
               :meth:`~repro.sim.observer.PeerObserver.on_playback`) —
               gated: never emitted unless the peer has
               ``PeerConfig.playback_rate`` set, so non-streaming traces
               are byte-identical to schema v1 files that predate it
``stability``  ``kind`` (``sample``/``finalize``), ``data`` (swarm-size
               and chunk-distribution sample, see
               :meth:`~repro.sim.observer.PeerObserver.on_stability`) —
               gated: never emitted unless a
               :class:`~repro.workloads.open_system.StabilityDetector`
               is attached, so closed-system traces are byte-identical
``snapshot``   ``data``: every field of one
               :class:`~repro.instrumentation.logger.Snapshot`
``finalize``   ``joined_at``, ``became_seed_at``, ``open`` (as above)
=============  ==============================================================
"""

from __future__ import annotations

import hashlib
import json
from typing import IO, Dict, List, Optional

from repro.protocol.messages import (
    Bitfield as BitfieldMessage,
    Cancel,
    Have,
    Message,
    Piece,
    Request,
)
from repro.sim.observer import PeerObserver

TRACE_SCHEMA_VERSION = 1


class TraceRecorder:
    """Append-only JSONL sink with a running content fingerprint.

    With a ``path`` the recorder streams to that file; without one it
    accumulates lines in memory (tests, small runs).  Multiple
    :class:`TracingObserver` instances — one per traced peer — may share
    one recorder; events interleave in emission order, which is
    deterministic for a seeded run.

    The fingerprint is the SHA-256 of every emitted line (header
    included, newline-terminated, UTF-8) and is written into the
    ``trace_end`` footer by :meth:`close`, so a truncated or edited file
    is detectable offline.
    """

    # Lines whose fingerprint hash is still pending are batched and fed
    # to SHA-256 in one update: two tiny hasher calls per event cost more
    # in call overhead than the hashing itself.  The digest is identical
    # to hashing each newline-terminated line on its own.
    _HASH_BATCH = 1024

    def __init__(self, path: Optional[str] = None):
        self.path = str(path) if path is not None else None
        self._file: Optional[IO[str]] = (
            open(self.path, "w") if self.path is not None else None
        )
        self._lines: List[str] = []
        self._hasher = hashlib.sha256()
        self._pending: List[str] = []
        self._events = 0
        self.fingerprint: Optional[str] = None
        # repr(now) cache shared by the hot-path observers: one engine
        # event fans out to many trace events at the same timestamp.
        self._last_t: Optional[float] = None
        self._last_ts = ""
        self._write({"type": "trace_start", "v": TRACE_SCHEMA_VERSION})

    def _flush_hash(self) -> None:
        if self._pending:
            self._hasher.update(
                ("\n".join(self._pending) + "\n").encode("utf-8")
            )
            del self._pending[:]

    def _write(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"))
        self._pending.append(line)
        if len(self._pending) >= self._HASH_BATCH:
            self._flush_hash()
        if self._file is not None:
            self._file.write(line)
            self._file.write("\n")
        else:
            self._lines.append(line)

    def emit(self, event: dict) -> None:
        """Append one event object (caller keeps key order deterministic)."""
        if self.fingerprint is not None:
            raise RuntimeError("trace recorder is closed")
        self._write(event)
        self._events += 1

    def emit_raw(self, line: str) -> None:
        """Hot-path variant of :meth:`emit` taking a pre-serialised line.

        *line* must be one JSON object without a trailing newline and
        byte-identical to what ``json.dumps(event, separators=(",", ":"))``
        would produce — message events are frequent enough that skipping
        the generic encoder is worth the duplication.
        """
        if self.fingerprint is not None:
            raise RuntimeError("trace recorder is closed")
        pending = self._pending
        pending.append(line)
        if len(pending) >= self._HASH_BATCH:
            self._flush_hash()
        file = self._file
        if file is not None:
            file.write(line)
            file.write("\n")
        else:
            self._lines.append(line)
        self._events += 1

    @property
    def events_emitted(self) -> int:
        return self._events

    def close(self) -> str:
        """Write the ``trace_end`` footer; returns the fingerprint.

        Idempotent: a second close returns the same fingerprint.
        """
        if self.fingerprint is not None:
            return self.fingerprint
        self._flush_hash()
        self.fingerprint = self._hasher.hexdigest()
        footer = {
            "type": "trace_end",
            "events": self._events,
            "fingerprint": self.fingerprint,
        }
        line = json.dumps(footer, separators=(",", ":"))
        if self._file is not None:
            self._file.write(line)
            self._file.write("\n")
            self._file.close()
            self._file = None
        else:
            self._lines.append(line)
        return self.fingerprint

    # -- reading back ------------------------------------------------------

    def lines(self) -> List[str]:
        """The raw JSONL lines (in-memory recorders only)."""
        if self.path is not None:
            with open(self.path) as handle:
                return [line.rstrip("\n") for line in handle]
        return list(self._lines)

    def events(self) -> List[dict]:
        """Parsed events, header/footer excluded."""
        return [
            event
            for event in (json.loads(line) for line in self.lines())
            if event.get("type") not in ("trace_start", "trace_end")
        ]

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# Have floods dominate message traffic (every completed piece is
# announced to every neighbour), and the payload depends only on the
# piece index, so the serialised suffix is memoised per index.
_HAVE_CACHE: Dict[int, str] = {}


def _have_suffix(message: Have) -> str:
    piece = message.piece
    suffix = _HAVE_CACHE.get(piece)
    if suffix is None:
        suffix = _HAVE_CACHE[piece] = ',"piece":%d' % piece
    return suffix


def _bitfield_suffix(message: BitfieldMessage) -> str:
    return ',"bits":"%s"' % message.bits.hex()


def _request_suffix(message: Request) -> str:
    return ',"piece":%d,"offset":%d,"length":%d' % (
        message.piece,
        message.offset,
        message.length,
    )


def _piece_suffix(message: Piece) -> str:
    return ',"piece":%d,"offset":%d,"length":%d' % (
        message.piece,
        message.offset,
        len(message.data),
    )


# The replay-relevant payload fields per message class, pre-serialised as
# a JSON key/value suffix.  Types not listed here (Choke, Interested,
# KeepAlive, ...) carry no payload beyond their name.
_PAYLOAD_SUFFIXES = {
    Have: _have_suffix,
    BitfieldMessage: _bitfield_suffix,
    Request: _request_suffix,
    Cancel: _request_suffix,
    Piece: _piece_suffix,
}


class TracingObserver(PeerObserver):
    """Emit one structured event per observer hook into a recorder.

    One instance traces one peer; attach it directly, or next to an
    :class:`~repro.instrumentation.logger.Instrumentation` through a
    :class:`~repro.sim.observer.FanoutObserver`.  Tracing draws no
    randomness and schedules no events, so a traced seeded run's
    *simulation* outcome is identical to an untraced one.

    ``record_rates`` mirrors the same flag on ``Instrumentation``: rate
    events are voluminous (one per connection per choke round) and only
    needed for figure-10-style analyses.
    """

    def __init__(self, recorder: TraceRecorder, record_rates: bool = False):
        self.recorder = recorder
        self.record_rates = record_rates
        # Capability dispatch: a recorder that understands raw message /
        # block fields (the binary recorder) skips JSON rendering on the
        # two hottest event kinds entirely.
        self._emit_message = getattr(recorder, "emit_message", None)
        self._emit_block = getattr(recorder, "emit_block", None)
        self.peer = None
        self._addr: Optional[str] = None
        self._sent_mid = ""
        self._recv_mid = ""
        self._open: Dict[str, object] = {}  # remote address -> Connection
        self._finalized = False

    # -- lifecycle ---------------------------------------------------------

    def on_attached(self, peer) -> None:
        self.peer = peer
        self._addr = peer.address
        # Constant middles of the two hot-path message lines, precomputed
        # so each event is a short f-string concatenation.
        self._sent_mid = ',"type":"msg_sent","peer":"%s","remote":"' % peer.address
        self._recv_mid = ',"type":"msg_recv","peer":"%s","remote":"' % peer.address
        self.recorder.emit(
            {
                "t": peer.simulator.now,
                "type": "attach",
                "peer": peer.address,
                "pieces": peer.bitfield.num_pieces,
                "seed": peer.is_seed,
            }
        )

    def on_connection_open(self, now: float, connection) -> None:
        remote = connection.remote
        self._open[remote.address] = connection
        self.recorder.emit(
            {
                "t": now,
                "type": "conn_open",
                "peer": self._addr,
                "remote": remote.address,
                "client": remote.peer_id.client_id,
                "remote_complete": remote.bitfield.is_complete(),
                "local_seed": self.peer.is_seed if self.peer else False,
                "initiated": connection.initiated_by_local,
            }
        )

    def on_connection_close(self, now: float, connection) -> None:
        address = connection.remote.address
        if self._open.get(address) is connection:
            del self._open[address]
        self.recorder.emit(
            {
                "t": now,
                "type": "conn_close",
                "peer": self._addr,
                "remote": address,
                "up": connection.uploaded.total,
                "down": connection.downloaded.total,
            }
        )

    # -- messages (hot path) -----------------------------------------------

    def on_message_sent(self, now: float, connection, message: Message) -> None:
        emit_message = self._emit_message
        if emit_message is not None:
            emit_message(now, 0, self._addr, connection.remote.address, message)
            return
        recorder = self.recorder
        if now == recorder._last_t:
            ts = recorder._last_ts
        else:
            ts = repr(now)
            recorder._last_t = now
            recorder._last_ts = ts
        message_type = type(message)
        suffix = _PAYLOAD_SUFFIXES.get(message_type)
        recorder.emit_raw(
            f'{{"t":{ts}{self._sent_mid}{connection.remote.address}'
            f'","msg":"{message_type.__name__}"'
            f'{"" if suffix is None else suffix(message)}}}'
        )

    def on_message_received(self, now: float, connection, message: Message) -> None:
        emit_message = self._emit_message
        if emit_message is not None:
            emit_message(now, 1, self._addr, connection.remote.address, message)
            return
        recorder = self.recorder
        if now == recorder._last_t:
            ts = recorder._last_ts
        else:
            ts = repr(now)
            recorder._last_t = now
            recorder._last_ts = ts
        message_type = type(message)
        suffix = _PAYLOAD_SUFFIXES.get(message_type)
        recorder.emit_raw(
            f'{{"t":{ts}{self._recv_mid}{connection.remote.address}'
            f'","msg":"{message_type.__name__}"'
            f'{"" if suffix is None else suffix(message)}}}'
        )

    # -- choke algorithm ---------------------------------------------------

    def on_choke_round(self, now: float, decision) -> None:
        self.recorder.emit(
            {
                "t": now,
                "type": "choke",
                "peer": self._addr,
                "unchoked": list(decision.unchoked),
                "local_seed": self.peer.is_seed if self.peer else False,
            }
        )

    def on_rate_sample(
        self, now: float, connection, download_rate: float, upload_rate: float
    ) -> None:
        if self.record_rates:
            self.recorder.emit(
                {
                    "t": now,
                    "type": "rate",
                    "peer": self._addr,
                    "remote": connection.remote.address,
                    "down": download_rate,
                    "up": upload_rate,
                }
            )

    # -- transfers & events ------------------------------------------------

    def on_block_received(
        self, now: float, connection, piece: int, offset: int, length: int
    ) -> None:
        emit_block = self._emit_block
        if emit_block is not None:
            emit_block(
                now, self._addr, connection.remote.address, piece, offset, length
            )
            return
        self.recorder.emit(
            {
                "t": now,
                "type": "block",
                "peer": self._addr,
                "remote": connection.remote.address,
                "piece": piece,
                "offset": offset,
                "length": length,
            }
        )

    def on_piece_completed(self, now: float, piece: int) -> None:
        self.recorder.emit(
            {"t": now, "type": "piece", "peer": self._addr, "piece": piece}
        )

    def on_endgame_entered(self, now: float) -> None:
        self.recorder.emit({"t": now, "type": "endgame", "peer": self._addr})

    def on_seed_state(self, now: float) -> None:
        self.recorder.emit(
            {
                "t": now,
                "type": "seed_state",
                "peer": self._addr,
                "open": self._open_connection_entries(),
            }
        )

    def on_hash_failure(self, now: float, piece: int) -> None:
        self.recorder.emit(
            {"t": now, "type": "hash_fail", "peer": self._addr, "piece": piece}
        )

    def on_fault(self, now: float, kind: str) -> None:
        self.recorder.emit(
            {"t": now, "type": "fault", "peer": self._addr, "kind": kind}
        )

    def on_playback(self, now: float, kind: str, data: dict) -> None:
        self.recorder.emit(
            {
                "t": now,
                "type": "playback",
                "peer": self._addr,
                "kind": kind,
                "data": dict(data),
            }
        )

    def on_stability(self, now: float, kind: str, data: dict) -> None:
        self.recorder.emit(
            {
                "t": now,
                "type": "stability",
                "peer": self._addr,
                "kind": kind,
                "data": dict(data),
            }
        )

    def on_announce(self, now: float, kind: str, data: dict) -> None:
        self.recorder.emit(
            {
                "t": now,
                "type": "announce",
                "peer": self._addr,
                "kind": kind,
                "data": dict(data),
            }
        )

    def on_snapshot(self, now: float, snapshot) -> None:
        self.recorder.emit(
            {
                "t": now,
                "type": "snapshot",
                "peer": self._addr,
                "data": dict(vars(snapshot)),
            }
        )

    # -- finalisation ------------------------------------------------------

    def _open_connection_entries(self) -> List[dict]:
        """One entry per link opened but never closed, with the byte
        totals the live instrumentation would read from the peer's
        connection table — totals are omitted for links the peer dropped
        without a close notification (a crash), which the live
        :meth:`Instrumentation.finalize` cannot flush either."""
        entries: List[dict] = []
        table = self.peer.connections if self.peer is not None else {}
        for address in self._open:
            connection = table.get(address)
            if connection is None:
                entries.append({"remote": address})
            else:
                entries.append(
                    {
                        "remote": address,
                        "up": connection.uploaded.total,
                        "down": connection.downloaded.total,
                    }
                )
        return entries

    def finalize(self, now: Optional[float] = None) -> None:
        """Emit the closing ``finalize`` event (idempotent)."""
        if self._finalized or self.peer is None:
            return
        self._finalized = True
        if now is None:
            now = self.peer.simulator.now
        self.recorder.emit(
            {
                "t": now,
                "type": "finalize",
                "peer": self._addr,
                "joined_at": self.peer.joined_at,
                "became_seed_at": self.peer.became_seed_at,
                "open": self._open_connection_entries(),
            }
        )
