"""Analytical models of BitTorrent-like replication (paper §V).

The paper positions its measurements against two analytical studies that
assume global knowledge:

* Yang & de Veciana [25] — branching-process view of the *service
  capacity*: in a flash crowd the number of peers able to serve the
  content grows exponentially with time
  (:mod:`repro.models.service_capacity`);
* Qiu & Srikant [21] — a deterministic fluid model of the leecher/seed
  populations with closed-form steady state
  (:mod:`repro.models.fluid`).

The paper's point — and the reason these live in this repository — is
that "the efficiency on real torrents is close to the one predicted by
the models" even though real peers only have local knowledge.  The
model-vs-simulation comparison is exercised by
``examples/model_vs_simulation.py`` and the model tests.
"""

from repro.models.fluid import FluidModel, FluidState
from repro.models.service_capacity import (
    exponential_growth_time,
    flash_crowd_capacity,
    minimum_distribution_time,
)

__all__ = [
    "FluidModel",
    "FluidState",
    "exponential_growth_time",
    "flash_crowd_capacity",
    "minimum_distribution_time",
]
