"""The Qiu–Srikant deterministic fluid model of BitTorrent [21].

State variables: ``x(t)`` leechers, ``y(t)`` seeds.  Parameters:

* ``lam``    — leecher arrival rate (peers/s);
* ``mu``     — upload capacity of a peer (contents/s, i.e. bytes/s
  divided by the content size);
* ``c``      — download capacity in the same unit;
* ``theta``  — rate at which leechers abort;
* ``gamma``  — rate at which seeds depart;
* ``eta``    — *effectiveness* of file sharing, the probability a
  leecher holds something another peer wants (the quantity the rarest
  first algorithm drives to ~1; the paper's entropy measurements are an
  empirical estimate of it).
* ``c0``     — *seed capacity*: completions/s injected by a permanent
  initial seed that never counts in ``y`` (open-system extension).

Dynamics (equations (1) of [21], plus the fixed-seed term)::

    dx/dt = lam - theta*x - min(c*x, mu*(eta*x + y) + c0)
    dy/dt =      min(c*x, mu*(eta*x + y) + c0) - gamma*y

The download-completion flow is the min of total download and total
upload capacity.  In steady state with a download-unconstrained swarm,
the mean download time is ``T = x* / (lam - theta*x*)`` by Little's law,
with the closed form ``1/T = eta*mu + ... `` discussed in [21].

The *open system* of the missing-piece-syndrome literature (departure
on completion, a lone persistent seed) is the limit
``seed_departure_rate = inf`` (volunteer seeds leave instantly, ``y``
pinned at 0) with ``seed_capacity > 0``.  There the model has a hard
stability boundary: with per-policy effectiveness ``eta`` the swarm is
stable iff ``lam <= c0 + eta*mu*x`` can balance arrivals — for the
one-club regime of plain rarest first (``eta ~ 0``) that degenerates to
``lam <= c0``, while mode suppression keeps ``eta ~ 1`` and the swarm
self-scales.  :meth:`FluidModel.steady_state` returns ``None`` exactly
on the unstable side; :mod:`repro.analysis.stability` builds the
sim-vs-fluid phase diagrams on top of that predicate.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class FluidState:
    """One sample of the fluid trajectory."""

    time: float
    leechers: float
    seeds: float

    @property
    def total(self) -> float:
        return self.leechers + self.seeds


class FluidModel:
    """Integrate the Qiu–Srikant ODEs with a simple RK4 stepper."""

    def __init__(
        self,
        arrival_rate: float,
        upload_rate: float,
        download_rate: float = float("inf"),
        abort_rate: float = 0.0,
        seed_departure_rate: float = 0.0,
        effectiveness: float = 1.0,
        seed_capacity: float = 0.0,
    ):
        if arrival_rate < 0 or upload_rate <= 0:
            raise ValueError("arrival_rate must be >= 0, upload_rate > 0")
        if not 0.0 <= effectiveness <= 1.0:
            raise ValueError("effectiveness must be in [0, 1]")
        if download_rate <= 0:
            raise ValueError("download_rate must be positive")
        if seed_capacity < 0:
            raise ValueError("seed_capacity must be >= 0")
        self.lam = arrival_rate
        self.mu = upload_rate
        self.c = download_rate
        self.theta = abort_rate
        self.gamma = seed_departure_rate
        self.eta = effectiveness
        self.c0 = seed_capacity

    # -- dynamics -----------------------------------------------------------

    def completion_flow(self, leechers: float, seeds: float) -> float:
        """Content completions per second at the given populations."""
        if math.isinf(self.c):
            download = math.inf if leechers > 0 else 0.0
        else:
            download = self.c * leechers
        upload = self.mu * (self.eta * leechers + seeds) + self.c0
        return min(download, upload)

    def derivatives(self, leechers: float, seeds: float) -> Tuple[float, float]:
        flow = self.completion_flow(leechers, seeds)
        dx = self.lam - self.theta * leechers - flow
        if math.isinf(self.gamma):
            # Open system: completed peers vanish instantly, the seed
            # population is identically zero.
            dy = 0.0
        else:
            dy = flow - self.gamma * seeds
        return dx, dy

    def integrate(
        self,
        duration: float,
        dt: float = 0.5,
        initial_leechers: float = 0.0,
        initial_seeds: float = 1.0,
        observer: Optional[Callable[[FluidState], None]] = None,
    ) -> List[FluidState]:
        """RK4 trajectory from the given initial populations."""
        if duration <= 0 or dt <= 0:
            raise ValueError("duration and dt must be positive")
        x, y = float(initial_leechers), float(initial_seeds)
        if math.isinf(self.gamma):
            y = 0.0
        states = [FluidState(0.0, x, y)]
        steps = int(round(duration / dt))
        time = 0.0
        for __ in range(steps):
            k1x, k1y = self.derivatives(x, y)
            k2x, k2y = self.derivatives(x + dt * k1x / 2, y + dt * k1y / 2)
            k3x, k3y = self.derivatives(x + dt * k2x / 2, y + dt * k2y / 2)
            k4x, k4y = self.derivatives(x + dt * k3x, y + dt * k3y)
            x += dt / 6 * (k1x + 2 * k2x + 2 * k3x + k4x)
            y += dt / 6 * (k1y + 2 * k2y + 2 * k3y + k4y)
            x = max(x, 0.0)
            y = max(y, 0.0)
            time += dt
            state = FluidState(time, x, y)
            states.append(state)
            if observer is not None:
                observer(state)
        return states

    # -- steady state ---------------------------------------------------------

    def steady_state(self) -> Optional[FluidState]:
        """The closed-form equilibrium of [21], when one exists.

        With ``gamma > 0`` and upload-constrained service (the regime of
        the paper's torrents) the equilibrium download time is::

            1/T = eta*mu*(1 + eta*mu/gamma') with the [21] normalisation

        here computed directly by solving the flow-balance equations:
        ``lam = theta*x* + flow`` and ``flow = gamma*y*``.
        """
        if self.lam == 0:
            return FluidState(float("inf"), 0.0, 0.0)
        if self.gamma <= 0:
            return None  # seeds accumulate forever, no finite equilibrium
        # Try the upload-constrained branch first.  With the fixed-seed
        # term c0 and y = flow/gamma (y = 0 when gamma is infinite):
        # flow = mu*eta*x + c0 + mu*flow/gamma
        #   =>  flow*(1 - mu/gamma) = mu*eta*x + c0
        denominator = (
            1.0 if math.isinf(self.gamma) else 1.0 - self.mu / self.gamma
        )
        if denominator > 0:
            # flow = (mu*eta*x + c0)/denominator; combined with
            # lam = theta*x + flow:
            #   lam - c0/denominator = x*(theta + mu*eta/denominator)
            drain = self.theta + self.mu * self.eta / denominator
            surplus = self.lam - self.c0 / denominator
            if drain <= 0:
                # No leecher-driven service at all (eta = 0, no aborts):
                # the fixed seed is the only sink.  Stable iff it keeps
                # up with arrivals — the missing-piece-syndrome boundary.
                if surplus > 0:
                    return None
                x_star = 0.0
                flow = self.lam
            elif surplus <= 0:
                # The fixed seed alone absorbs the arrival flow.
                x_star = 0.0
                flow = self.lam
            else:
                x_star = surplus / drain
                flow = (self.mu * self.eta * x_star + self.c0) / denominator
        else:
            # Upload capacity outgrows demand: service becomes
            # download-constrained; flow = c*x.
            if self.c == float("inf"):
                # Downloads complete instantly in the limit; equilibrium
                # has x* -> 0 with flow = lam - theta*x* -> lam.
                flow = self.lam
                x_star = 0.0
            else:
                x_star = self.lam / (self.theta + self.c)
                flow = self.c * x_star
        y_star = 0.0 if math.isinf(self.gamma) else flow / self.gamma
        return FluidState(float("inf"), x_star, y_star)

    def mean_download_time(self) -> Optional[float]:
        """Little's-law mean download time at equilibrium."""
        equilibrium = self.steady_state()
        if equilibrium is None:
            return None
        throughput = self.lam - self.theta * equilibrium.leechers
        if throughput <= 0:
            return None
        return equilibrium.leechers / throughput
