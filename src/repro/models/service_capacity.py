"""Yang & de Veciana's service-capacity results [25] (paper §I, §IV-A).

Two facts from that paper drive the reproduction's transient-state
analysis:

* in a flash crowd the capacity of service grows **exponentially**: each
  served copy can itself serve, so after the source pushes a piece it is
  replicated with doubling behaviour — the reason "available pieces are
  replicated with an exponential capacity of service but rare pieces are
  served by the initial seed at a constant rate" (§IV-A.1);
* the **minimum distribution time** for one content of size ``s`` from a
  source of upload capacity ``u`` to ``n`` identical peers of capacity
  ``b`` is ``(s/u) + log2(n) * (s/b)``-shaped: one source copy plus a
  binary relay tree.
"""

from __future__ import annotations

import math
from typing import List, Tuple


def flash_crowd_capacity(
    initial_servers: int,
    time: float,
    service_time: float,
) -> float:
    """Number of peers able to serve after *time*, starting from
    ``initial_servers``, when one service takes ``service_time``.

    Pure branching growth: every completed service creates one more
    server, so capacity doubles every ``service_time``.
    """
    if initial_servers < 0:
        raise ValueError("initial_servers must be non-negative")
    if service_time <= 0:
        raise ValueError("service_time must be positive")
    return initial_servers * 2.0 ** (time / service_time)


def exponential_growth_time(
    initial_servers: int,
    target_servers: float,
    service_time: float,
) -> float:
    """Time for the service capacity to reach ``target_servers``."""
    if initial_servers <= 0:
        raise ValueError("need at least one initial server")
    if target_servers <= initial_servers:
        return 0.0
    return service_time * math.log2(target_servers / initial_servers)


def minimum_distribution_time(
    content_size: float,
    source_upload: float,
    peer_upload: float,
    num_peers: int,
    num_pieces: int = 1,
) -> float:
    """Lower bound on distributing the content to ``num_peers`` peers.

    With the content split in ``num_pieces`` pieces and pipelined relay
    (the benefit [25] and [6] attribute to splitting), the bound is::

        content/source_upload            (the source pushes one copy)
      + ceil(log2(n)) * piece/peer_upload  (the last piece's relay depth)

    With one piece (no splitting) the whole content pays the relay
    depth, which is why splitting is "a key improvement" (§I).
    """
    if content_size <= 0 or source_upload <= 0 or peer_upload <= 0:
        raise ValueError("sizes and capacities must be positive")
    if num_peers < 1 or num_pieces < 1:
        raise ValueError("num_peers and num_pieces must be >= 1")
    source_time = content_size / source_upload
    piece_size = content_size / num_pieces
    relay_depth = math.ceil(math.log2(num_peers)) if num_peers > 1 else 0
    return source_time + relay_depth * piece_size / peer_upload


def capacity_trajectory(
    initial_servers: int,
    duration: float,
    service_time: float,
    step: float = 1.0,
) -> List[Tuple[float, float]]:
    """(time, capacity) samples of the branching growth."""
    if step <= 0:
        raise ValueError("step must be positive")
    samples = []
    time = 0.0
    while time <= duration:
        samples.append(
            (time, flash_crowd_capacity(initial_servers, time, service_time))
        )
        time += step
    return samples
