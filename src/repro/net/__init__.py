"""Live asyncio peer-wire swarms over localhost TCP.

The simulator exercises the paper's algorithms under a fluid transfer
model; this package drives the *same* cores — the rarity-indexed
:class:`~repro.core.piece_picker.PiecePicker`, the leecher and SKU/SRU
seed chokers, the sliding-window rate estimator — over real sockets,
reusing :class:`~repro.protocol.stream.MessageStream` for framing,
:class:`~repro.protocol.metainfo.Metainfo` for real SHA-1-verified
content and the in-memory :class:`~repro.tracker.tracker.Tracker` for
peer discovery.  A :class:`LiveSwarm` runs N in-process peers (one
asyncio task group per peer) to completion and emits the same
schema-versioned JSONL traces as the sim through
:class:`~repro.instrumentation.trace.TracingObserver`, so the analysis
and replay pipelines work unchanged on live runs.

:mod:`repro.net.conformance` checks the protocol invariants both
engines must agree on (the differential sim-vs-net test layer).
"""

from repro.net.connection import NetConnection, RemotePeerHandle, WallClock
from repro.net.conformance import (
    ConformanceReport,
    check_byte_conservation,
    check_message_grammar,
    check_rarest_first,
    check_trace,
    check_unchoke_cardinality,
)
from repro.net.peer import NetPeer, TokenBucket
from repro.net.swarm import LiveSwarm, LiveSwarmResult

__all__ = [
    "ConformanceReport",
    "LiveSwarm",
    "LiveSwarmResult",
    "NetConnection",
    "NetPeer",
    "RemotePeerHandle",
    "TokenBucket",
    "WallClock",
    "check_byte_conservation",
    "check_message_grammar",
    "check_rarest_first",
    "check_trace",
    "check_unchoke_cardinality",
]
