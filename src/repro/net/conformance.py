"""Protocol-invariant checks over schema-v1 traces.

The differential sim-vs-net test layer runs the same (torrent,
scenario) through the discrete-event engine and through a
:class:`~repro.net.swarm.LiveSwarm`, then holds both traces to the same
invariants.  The checks are deliberately insensitive to scheduling
nondeterminism — they constrain *what the protocol allows*, not the
particular interleaving a run took:

``message grammar``
    No message before the link's ``conn_open`` (the handshake), the
    first message in each direction is BITFIELD, and no REQUEST is sent
    while the remote chokes us.

``unchoke cardinality``
    Every choke round unchokes a duplicate-free set of at most
    ``unchoke_slots`` peers (3 regular + 1 optimistic by default).

``byte conservation``
    Summed over the swarm, uploaded bytes equal downloaded bytes
    (requires a clean run with every peer traced, and per directed link
    when both endpoints reported totals).

``rarest first``
    Replaying each peer's own trace reconstructs exactly the
    availability its picker saw; the first REQUEST for a piece must then
    target a rarest piece among the candidates that remote offers
    (outside the random-first warm-up and end game).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.protocol.bitfield import Bitfield

TRACE_META_TYPES = ("trace_start", "trace_end")


def load_events(source) -> List[dict]:
    """Parsed trace events from a recorder, a path, or a parsed list."""
    if hasattr(source, "events"):
        return source.events()
    if isinstance(source, str):
        with open(source) as handle:
            parsed = [json.loads(line) for line in handle if line.strip()]
        return [e for e in parsed if e.get("type") not in TRACE_META_TYPES]
    return [e for e in source if e.get("type") not in TRACE_META_TYPES]


@dataclass
class ConformanceReport:
    """Outcome of a conformance pass: violations + evaluated-check tally."""

    violations: List[str] = field(default_factory=list)
    checks: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "ConformanceReport") -> "ConformanceReport":
        self.violations.extend(other.violations)
        for key, count in other.checks.items():
            self.checks[key] = self.checks.get(key, 0) + count
        return self

    def assert_ok(self) -> None:
        if self.violations:
            raise AssertionError(
                "%d conformance violations:\n%s"
                % (len(self.violations), "\n".join(self.violations[:20]))
            )


class _LinkState:
    __slots__ = ("open", "sent_any", "recv_any", "peer_choking")

    def __init__(self) -> None:
        self.open = False
        self.sent_any = False
        self.recv_any = False
        self.peer_choking = True


def check_message_grammar(source) -> ConformanceReport:
    """Handshake-before-anything, BITFIELD-first, no request-while-choked."""
    events = load_events(source)
    report = ConformanceReport(checks={"grammar": 0})
    links: Dict[tuple, _LinkState] = {}
    for index, event in enumerate(events):
        etype = event.get("type")
        if etype not in ("conn_open", "conn_close", "msg_sent", "msg_recv"):
            continue
        key = (event["peer"], event["remote"])
        state = links.get(key)
        if etype == "conn_open":
            links[key] = _LinkState()
            links[key].open = True
            continue
        if etype == "conn_close":
            if state is not None:
                state.open = False
            continue
        report.checks["grammar"] += 1
        where = "event %d (%s %s %s->%s)" % (
            index, etype, event.get("msg"), event["peer"], event["remote"]
        )
        if state is None or not state.open:
            report.violations.append("message before handshake/open: " + where)
            continue
        msg = event.get("msg")
        if etype == "msg_sent":
            if not state.sent_any and msg != "Bitfield":
                report.violations.append("first sent message not BITFIELD: " + where)
            state.sent_any = True
            if msg == "Request" and state.peer_choking:
                report.violations.append("REQUEST while choked: " + where)
        else:
            if not state.recv_any and msg != "Bitfield":
                report.violations.append("first received message not BITFIELD: " + where)
            state.recv_any = True
            if msg == "Choke":
                state.peer_choking = True
            elif msg == "Unchoke":
                state.peer_choking = False
    return report


def check_unchoke_cardinality(source, unchoke_slots: int = 4) -> ConformanceReport:
    """Each round unchokes a duplicate-free set of <= ``unchoke_slots``."""
    events = load_events(source)
    report = ConformanceReport(checks={"unchoke": 0})
    for index, event in enumerate(events):
        if event.get("type") != "choke":
            continue
        report.checks["unchoke"] += 1
        unchoked = event.get("unchoked", [])
        if len(unchoked) > unchoke_slots:
            report.violations.append(
                "event %d: %s unchoked %d peers (> %d slots)"
                % (index, event["peer"], len(unchoked), unchoke_slots)
            )
        if len(set(unchoked)) != len(unchoked):
            report.violations.append(
                "event %d: %s unchoked set has duplicates: %r"
                % (index, event["peer"], unchoked)
            )
    return report


def check_byte_conservation(source, tolerance: float = 1e-6) -> ConformanceReport:
    """uploaded == downloaded, swarm-wide and per directed link.

    Requires every peer traced (``trace_all``) and a clean run: a
    crashed peer's in-flight bytes are counted by the sender only, which
    is exactly the asymmetry this check exists to detect.
    """
    events = load_events(source)
    report = ConformanceReport(checks={"conservation": 0})
    up: Dict[tuple, float] = {}
    down: Dict[tuple, float] = {}

    def account(peer: str, entry: dict) -> None:
        remote = entry["remote"]
        if "up" in entry:
            up[(peer, remote)] = up.get((peer, remote), 0.0) + entry["up"]
        if "down" in entry:
            down[(peer, remote)] = down.get((peer, remote), 0.0) + entry["down"]

    for event in events:
        etype = event.get("type")
        if etype == "conn_close":
            account(event["peer"], event)
        elif etype == "finalize":
            for entry in event.get("open", []):
                account(event["peer"], entry)

    total_up = sum(up.values())
    total_down = sum(down.values())
    report.checks["conservation"] += 1
    if abs(total_up - total_down) > tolerance + 1e-9 * max(total_up, total_down):
        report.violations.append(
            "swarm bytes not conserved: uploaded %.1f != downloaded %.1f"
            % (total_up, total_down)
        )
    # Directed-link check: what A says it sent B, B must say it received.
    for (peer, remote), sent in sorted(up.items()):
        received = down.get((remote, peer))
        if received is None:
            continue  # remote endpoint not traced / crashed mid-link
        report.checks["conservation"] += 1
        if abs(sent - received) > tolerance + 1e-9 * max(sent, received):
            report.violations.append(
                "link %s->%s: sender counted %.1f, receiver %.1f"
                % (peer, remote, sent, received)
            )
    return report


class _PickerReplay:
    """Availability as one peer's picker saw it, rebuilt from its trace."""

    def __init__(self, num_pieces: int, initially_seed: bool):
        self.num_pieces = num_pieces
        self.avail = [0] * num_pieces
        self.offered: Dict[str, Set[int]] = {}
        self.complete: Set[int] = (
            set(range(num_pieces)) if initially_seed else set()
        )
        self.requested: Set[int] = set()
        self.endgame = False


def check_rarest_first(
    source,
    random_first_threshold: int = 4,
    num_pieces: Optional[int] = None,
) -> ConformanceReport:
    """First request per piece targets a rarest candidate that remote offers.

    The availability each peer's picker consulted is reproducible from
    the peer's own event stream: the opening BITFIELD sets a link's
    contribution, each HAVE adds one, ``conn_close`` removes it.  At the
    first-ever REQUEST for piece ``p`` to remote ``r``, ``p`` must
    minimise availability over the candidate set (pieces ``r`` offers
    that are neither complete nor already requested) — exact even though
    it is a subset of the picker's full wanted set, because ``p`` being
    a member forces the subset minimum to equal the global minimum.
    Skipped during the random-first warm-up (fewer than
    ``random_first_threshold`` local pieces) and after end game entry.
    """
    events = load_events(source)
    report = ConformanceReport(checks={"rarest_first": 0})
    replays: Dict[str, _PickerReplay] = {}

    def replay_for(event: dict) -> Optional[_PickerReplay]:
        return replays.get(event["peer"])

    for index, event in enumerate(events):
        etype = event.get("type")
        peer = event.get("peer")
        if etype == "attach":
            replays[peer] = _PickerReplay(
                num_pieces if num_pieces is not None else event["pieces"],
                bool(event.get("seed")),
            )
            continue
        state = replay_for(event)
        if state is None:
            continue
        if etype == "conn_open":
            state.offered[event["remote"]] = set()
        elif etype == "conn_close":
            for piece in state.offered.pop(event["remote"], ()):
                state.avail[piece] -= 1
        elif etype == "piece":
            state.complete.add(event["piece"])
        elif etype == "endgame":
            state.endgame = True
        elif etype == "msg_recv":
            msg = event.get("msg")
            remote = event["remote"]
            if msg == "Bitfield":
                incoming = Bitfield.from_bytes(
                    bytes.fromhex(event["bits"]), state.num_pieces
                ).have_set
                for piece in state.offered.get(remote, ()):
                    state.avail[piece] -= 1
                state.offered[remote] = set(incoming)
                for piece in incoming:
                    state.avail[piece] += 1
            elif msg == "Have":
                link = state.offered.get(remote)
                if link is not None and event["piece"] not in link:
                    link.add(event["piece"])
                    state.avail[event["piece"]] += 1
        elif etype == "msg_sent" and event.get("msg") == "Request":
            piece = event["piece"]
            if piece in state.requested:
                continue
            state.requested.add(piece)
            if state.endgame or len(state.complete) < random_first_threshold:
                continue
            remote = event["remote"]
            candidates = (
                state.offered.get(remote, set()) - state.complete - state.requested
            ) | {piece}
            rarest = min(state.avail[q] for q in candidates)
            report.checks["rarest_first"] += 1
            if state.avail[piece] != rarest:
                report.violations.append(
                    "event %d: %s requested piece %d (availability %d) from %s "
                    "but a candidate with availability %d was offered"
                    % (index, peer, piece, state.avail[piece], remote, rarest)
                )
    return report


def check_trace(
    source,
    unchoke_slots: int = 4,
    random_first_threshold: int = 4,
    check_conservation: bool = True,
    num_pieces: Optional[int] = None,
) -> ConformanceReport:
    """Run every conformance check over one trace; merged report."""
    events = load_events(source)
    report = ConformanceReport()
    report.merge(check_message_grammar(events))
    report.merge(check_unchoke_cardinality(events, unchoke_slots))
    if check_conservation:
        report.merge(check_byte_conservation(events))
    report.merge(
        check_rarest_first(
            events,
            random_first_threshold=random_first_threshold,
            num_pieces=num_pieces,
        )
    )
    return report


def completion_counts(source) -> Dict[str, int]:
    """Per-peer count of completed pieces (``piece`` events)."""
    counts: Dict[str, int] = {}
    for event in load_events(source):
        if event.get("type") == "piece":
            counts[event["peer"]] = counts.get(event["peer"], 0) + 1
    return counts


def traced_addresses(source) -> Sequence[str]:
    return [e["peer"] for e in load_events(source) if e.get("type") == "attach"]
