"""One endpoint's view of a live TCP link.

A :class:`NetConnection` mirrors the protocol state of the simulator's
:class:`repro.sim.connection.Connection` — the four choke/interest
booleans, the remote bitfield, the upload queue and the per-direction
:class:`~repro.core.rate_estimator.ByteCounter` pair — but rides an
asyncio stream pair instead of a twin object.  It exposes the exact
attribute surface the instrumentation layer reads
(``remote.address`` / ``remote.peer_id.client_id`` /
``remote.bitfield`` / ``initiated_by_local`` / ``uploaded`` /
``downloaded``), so a :class:`~repro.instrumentation.trace.TracingObserver`
or :class:`~repro.instrumentation.logger.Instrumentation` attached to a
live peer emits the same schema-v1 events as in the sim.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import time
from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.core.rate_estimator import ByteCounter
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import BlockRef
from repro.protocol.peer_id import PeerId, parse_client_id
from repro.protocol.stream import MessageStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.peer import NetPeer


class WallClock:
    """Monotonic seconds since the swarm started.

    Shared by every peer of a :class:`~repro.net.swarm.LiveSwarm` so all
    trace timestamps live on one axis.  Duck-types the one attribute the
    observers read from the simulator (``peer.simulator.now``), which is
    what lets the sim's instrumentation attach to live peers unchanged.
    """

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0


class RemotePeerHandle:
    """The instrumentation-facing identity of the peer behind a link.

    In the simulator ``connection.remote`` is the remote peer object
    itself; over a socket only the handshake identity and the advertised
    bitfield are known.  This handle carries exactly the fields the
    observers dereference.
    """

    __slots__ = ("address", "peer_id", "_connection")

    def __init__(self, address: str, peer_id: PeerId, connection: "NetConnection"):
        self.address = address
        self.peer_id = peer_id
        self._connection = connection

    @property
    def bitfield(self) -> Bitfield:
        return self._connection.remote_bitfield

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "RemotePeerHandle(%s, %s)" % (self.address, self.peer_id.client_id)


def make_remote_handle(
    address: str, raw_peer_id: bytes, connection: "NetConnection"
) -> RemotePeerHandle:
    client_id = parse_client_id(raw_peer_id)
    peer_id = PeerId(raw=raw_peer_id, client_id=client_id or "unknown")
    return RemotePeerHandle(address, peer_id, connection)


class NetConnection:
    """Protocol + transfer state of one live link endpoint."""

    __slots__ = (
        "local",
        "remote",
        "reader",
        "writer",
        "stream",
        "remote_bitfield",
        "am_choking",
        "peer_choking",
        "am_interested",
        "peer_interested",
        "initiated_by_local",
        "established_at",
        "closed",
        "upload_queue",
        "upload_ready",
        "uploaded",
        "downloaded",
        "outstanding",
        "last_unchoked_local",
        "reader_task",
        "uploader_task",
    )

    def __init__(
        self,
        local: "NetPeer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        initiated_by_local: bool,
        now: float,
        rate_window: float = 20.0,
    ):
        self.local = local
        self.remote: Optional[RemotePeerHandle] = None  # set after handshake
        self.reader = reader
        self.writer = writer
        # The handshake is consumed separately (fixed 68-byte read), so
        # the frame decoder starts directly on length-prefixed messages.
        self.stream = MessageStream(expect_handshake=False)
        self.remote_bitfield = Bitfield(local.metainfo.geometry.num_pieces)
        self.am_choking = True
        self.peer_choking = True
        self.am_interested = False
        self.peer_interested = False
        self.initiated_by_local = initiated_by_local
        self.established_at = now
        self.closed = False
        # Upload direction (local serves remote).
        self.upload_queue: Deque[BlockRef] = deque()
        self.upload_ready = asyncio.Event()
        self.uploaded = ByteCounter(rate_window)
        self.downloaded = ByteCounter(rate_window)
        # Download direction (local requests from remote).
        self.outstanding: set = set()  # BlockRefs requested, not yet received
        self.last_unchoked_local: Optional[float] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.uploader_task: Optional[asyncio.Task] = None

    # -- identity ----------------------------------------------------------

    @property
    def remote_key(self) -> str:
        """Picker/choker key for this link: the remote's canonical address."""
        assert self.remote is not None
        return self.remote.address

    # -- upload queue ------------------------------------------------------

    def enqueue_upload(self, block: BlockRef) -> None:
        if block in self.upload_queue:
            return
        self.upload_queue.append(block)
        self.upload_ready.set()

    def pop_upload(self) -> Optional[BlockRef]:
        if self.upload_queue:
            return self.upload_queue.popleft()
        self.upload_ready.clear()
        return None

    def clear_upload_queue(self) -> None:
        self.upload_queue.clear()
        self.upload_ready.clear()

    def cancel_queued_block(self, block: BlockRef) -> bool:
        try:
            self.upload_queue.remove(block)
        except ValueError:
            return False
        return True

    # -- transport ---------------------------------------------------------

    def write_raw(self, data: bytes) -> None:
        """Best-effort write; transport errors surface on the reader."""
        if self.closed or self.writer.is_closing():
            return
        try:
            self.writer.write(data)
        except (OSError, RuntimeError):
            # Write after EOF/close during teardown races: the reader
            # loop is the single place link death is handled.
            pass

    def abort(self) -> None:
        """RST the link (crash semantics: no FIN, remotes see a reset)."""
        transport = self.writer.transport
        if transport is not None:
            # transport.abort() alone only guarantees an RST when send
            # data is pending; with an empty buffer the kernel sends a
            # polite FIN and the remote sees a clean EOF instead of a
            # crash.  SO_LINGER(on, 0) forces the RST either way.
            sock = transport.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:  # pragma: no cover - already dead
                    pass
            transport.abort()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        remote = self.remote.address if self.remote is not None else "?"
        return "NetConnection(%s -> %s%s)" % (
            self.local.address,
            remote,
            ", closed" if self.closed else "",
        )
