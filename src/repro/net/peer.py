"""A live BitTorrent client: the sim peer's algorithms over real TCP.

:class:`NetPeer` is a message-for-message port of
:class:`repro.sim.peer.Peer` onto asyncio streams.  The decision-making
cores are *shared objects*, not reimplementations: piece selection goes
through :class:`~repro.core.piece_picker.PiecePicker` (rarity index,
random-first, strict priority, end game), choking through
:class:`~repro.core.choke.LeecherChoker` /
:class:`~repro.core.choke.SeedChoker` on 10-second rounds, and rate
estimation through the same sliding-window counters.  What the sim's
fluid model approximates — transfer capacity — is here enforced by a
:class:`TokenBucket` on the upload path serving real
:meth:`~repro.protocol.metainfo.Metainfo.piece_payload` bytes, verified
by SHA-1 on completion.

Concurrency model: one asyncio server task, one reader task and one
uploader task per connection, plus one choke-round task.  Message
handlers are synchronous (no awaits), so each inbound message is
processed atomically with respect to every other task of the peer —
the same single-threaded semantics the discrete-event engine gives the
sim peer, which is what makes the two traces comparable.
"""

from __future__ import annotations

import asyncio
import struct
from random import Random
from typing import Dict, List, Optional

from repro.core.choke import ChokeCandidate, Choker, LeecherChoker, SeedChoker
from repro.core.piece_picker import PiecePicker
from repro.core.rarest_first import RarestFirstSelector
from repro.net.connection import NetConnection, WallClock, make_remote_handle
from repro.protocol.bitfield import Bitfield
from repro.protocol.messages import (
    HANDSHAKE_LENGTH,
    Bitfield as BitfieldMessage,
    Cancel,
    Choke,
    Handshake,
    Have,
    Interested,
    Message,
    MessageError,
    NotInterested,
    Piece,
    Request,
    Unchoke,
)
from repro.protocol.metainfo import BlockRef, Metainfo
from repro.protocol.peer_id import make_peer_id
from repro.sim.config import PeerConfig
from repro.sim.observer import PeerObserver
from repro.tracker.tracker import Tracker

#: Handshake reserved-byte extension: bytes 6:8 carry the sender's
#: listening port (big-endian), so an *inbound* connection can be mapped
#: to the remote's canonical tracker address instead of the ephemeral
#: source port.  Real clients use reserved bits the same way (DHT, fast
#: extension); zero means "not advertised".
def pack_listen_port(port: int) -> bytes:
    return b"\x00" * 6 + struct.pack(">H", port)


def unpack_listen_port(reserved: bytes) -> int:
    return struct.unpack(">H", reserved[6:8])[0]


class TokenBucket:
    """Byte-rate limiter for the upload path.

    ``rate`` bytes/second refill, ``burst`` bytes of depth (at least one
    block, so a single block request can always be served).  ``take``
    blocks until the requested tokens are available; with ``rate=None``
    the bucket is unlimited.
    """

    def __init__(self, rate: Optional[float], burst: Optional[float] = None):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive or None")
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate else 0.0)
        self._tokens = self.burst
        self._last = None  # type: Optional[float]
        self._lock = asyncio.Lock()

    async def take(self, num_bytes: float) -> None:
        if self.rate is None:
            return
        async with self._lock:
            loop = asyncio.get_running_loop()
            now = loop.time()
            if self._last is None:
                self._last = now
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if num_bytes > self._tokens:
                wait = (num_bytes - self._tokens) / self.rate
                await asyncio.sleep(wait)
                self._last = loop.time()
                self._tokens = 0.0
            else:
                self._tokens -= num_bytes


class NetPeer:
    """One live peer: TCP server + client, driven by the shared cores."""

    def __init__(
        self,
        metainfo: Metainfo,
        config: PeerConfig,
        tracker: Tracker,
        clock: WallClock,
        rng: Random,
        is_seed: bool = False,
        observer: Optional[PeerObserver] = None,
        metrics=None,
        host: str = "127.0.0.1",
    ):
        self.metainfo = metainfo
        self.config = config
        self.tracker = tracker
        # ``simulator`` duck-types the sim peer for the observers, which
        # read exactly ``peer.simulator.now``.
        self.simulator = clock
        self.rng = rng
        self.metrics = metrics
        self.host = host
        self.peer_id = make_peer_id(config.client_id, rng)
        num_pieces = metainfo.geometry.num_pieces
        self.bitfield = Bitfield.full(num_pieces) if is_seed else Bitfield(num_pieces)
        self.selector = RarestFirstSelector()
        self.picker = PiecePicker(
            metainfo.geometry,
            self.bitfield,
            self.selector,
            rng,
            random_first_threshold=config.random_first_threshold,
            strict_priority=config.strict_priority,
            endgame_enabled=config.endgame_enabled,
            use_rarity_index=config.use_rarity_index,
        )
        self.leecher_choker: Choker = LeecherChoker(
            optimistic_rounds=config.optimistic_rounds
        )
        self.seed_choker: Choker = SeedChoker(slots=config.unchoke_slots)
        self._seed = is_seed
        self.observer = observer

        self.connections: Dict[str, NetConnection] = {}
        self.address: Optional[str] = None  # known once the server is bound
        self.port: Optional[int] = None
        self.online = False
        self.joined_at: Optional[float] = None
        self.became_seed_at: Optional[float] = 0.0 if is_seed else None
        self.total_uploaded = 0.0
        self.total_downloaded = 0.0
        self.completed = asyncio.Event()
        if is_seed:
            self.completed.set()

        self._server: Optional[asyncio.AbstractServer] = None
        self._choke_task: Optional[asyncio.Task] = None
        self._bucket = TokenBucket(
            config.upload_capacity if config.upload_capacity else None,
            burst=max(
                float(metainfo.geometry.block_size),
                (config.upload_capacity or 0.0) * 0.25,
            ),
        )
        self._piece_buffers: Dict[int, bytearray] = {}
        self._store: Dict[int, bytes] = {}  # verified piece payloads
        self._was_in_endgame = False
        self._stopping = False

    # ------------------------------------------------------------------
    # identity & state
    # ------------------------------------------------------------------

    @property
    def is_seed(self) -> bool:
        return self._seed

    @property
    def choker(self) -> Choker:
        return self.seed_choker if self._seed else self.leecher_choker

    @property
    def peer_set_size(self) -> int:
        return len(self.connections)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NetPeer(%s, %s, %d/%d pieces)" % (
            self.address,
            "seed" if self._seed else "leecher",
            self.bitfield.count,
            self.bitfield.num_pieces,
        )

    def piece_payload(self, piece: int) -> bytes:
        """Serve a piece from the verified store (seeds generate lazily)."""
        data = self._store.get(piece)
        if data is None:
            data = self.metainfo.piece_payload(piece)
            self._store[piece] = data
        return data

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> str:
        """Bind the TCP server; returns the canonical address."""
        self._server = await asyncio.start_server(
            self._on_inbound, self.host, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.address = "%s:%d" % (self.host, self.port)
        if self.observer is not None:
            self.observer.on_attached(self)
        return self.address

    async def join(self, num_want: Optional[int] = None) -> None:
        """Announce to the tracker and dial the returned peers."""
        assert self.address is not None, "start() must run before join()"
        self.online = True
        self.joined_at = self.simulator.now
        # Sample through this peer's own seeded RNG: live peers announce
        # in wall-clock order, and a shared tracker stream would let that
        # ordering perturb every subsequent peer's sample.
        addresses = self.tracker.announce(
            self.address,
            event="started",
            num_want=num_want if num_want is not None else self.config.max_peer_set,
            is_seed=self._seed,
            rng=self.rng,
        )
        dialed = 0
        for remote_address in addresses:
            if dialed >= self.config.max_initiated:
                break
            if remote_address == self.address or remote_address in self.connections:
                continue
            if await self._dial(remote_address):
                dialed += 1
        self._choke_task = asyncio.ensure_future(self._choke_loop())

    async def stop(self) -> None:
        """Graceful leave: half-close every link, drain inbound bytes to
        EOF (so in-flight PIECE frames are still counted on both ends),
        then announce ``stopped`` and finalize the observer."""
        if self._stopping:
            return
        self._stopping = True
        self.online = False
        if self._choke_task is not None:
            self._choke_task.cancel()
        if self._server is not None:
            self._server.close()
        for connection in list(self.connections.values()):
            if connection.uploader_task is not None:
                connection.uploader_task.cancel()
            try:
                if connection.writer.can_write_eof():
                    connection.writer.write_eof()
            except (OSError, RuntimeError):
                pass
        # Readers exit on EOF once every endpoint half-closes; bound the
        # drain so a wedged link cannot hang shutdown.
        readers = [
            c.reader_task
            for c in list(self.connections.values())
            if c.reader_task is not None and not c.reader_task.done()
        ]
        if readers:
            await asyncio.wait(readers, timeout=5.0)
        for connection in list(self.connections.values()):
            self._close_connection(connection)
        if self.joined_at is not None:
            try:
                self.tracker.announce(
                    self.address,
                    event="stopped",
                    num_want=0,
                    is_seed=self._seed,
                    rng=self.rng,
                )
            except Exception:
                pass
        if self.observer is not None and hasattr(self.observer, "finalize"):
            self.observer.finalize(now=self.simulator.now)

    def crash(self) -> None:
        """Abrupt death: cancel every task and RST every link (no FIN,
        no stopped announce) — remotes observe a connection reset."""
        self.online = False
        self._stopping = True
        if self._choke_task is not None:
            self._choke_task.cancel()
        if self._server is not None:
            self._server.close()
        for connection in list(self.connections.values()):
            if connection.reader_task is not None:
                connection.reader_task.cancel()
            if connection.uploader_task is not None:
                connection.uploader_task.cancel()
            connection.abort()
            connection.closed = True
        self.connections.clear()
        if self.metrics is not None:
            self.metrics.inc("fault.peer_crashed")

    # ------------------------------------------------------------------
    # connection establishment
    # ------------------------------------------------------------------

    async def _dial(self, remote_address: str) -> bool:
        host, _, port = remote_address.rpartition(":")
        try:
            reader, writer = await asyncio.open_connection(host, int(port))
        except OSError:
            return False
        return await self._handshake(
            reader, writer, initiated_by_local=True, dialed_address=remote_address
        )

    async def _on_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # The reader/uploader tasks are spawned by _handshake; the stream
        # stays open after this callback returns.
        await self._handshake(reader, writer, initiated_by_local=False)

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        initiated_by_local: bool,
        dialed_address: Optional[str] = None,
    ) -> bool:
        """Exchange handshakes and the opening bitfields.

        Per BEP 3 both endpoints send their handshake eagerly; the
        connection enters the peer set (``conn_open``) only after the
        remote's handshake *and* opening BITFIELD arrived, which is when
        the remote's identity and completeness are actually known.
        """
        connection = NetConnection(
            self,
            reader,
            writer,
            initiated_by_local,
            self.simulator.now,
            self.config.rate_window,
        )
        try:
            writer.write(
                Handshake(
                    info_hash=self.metainfo.info_hash,
                    peer_id=self.peer_id.raw,
                    reserved=pack_listen_port(self.port or 0),
                ).encode()
            )
            writer.write(BitfieldMessage(bits=self.bitfield.to_bytes()).encode())
            await writer.drain()
            raw = await reader.readexactly(HANDSHAKE_LENGTH)
            shake = Handshake.decode(raw)
            if shake.info_hash != self.metainfo.info_hash:
                raise MessageError("info_hash mismatch")
            if dialed_address is not None:
                remote_address = dialed_address
            else:
                advertised = unpack_listen_port(shake.reserved)
                peer_host = writer.get_extra_info("peername")[0]
                remote_address = "%s:%d" % (peer_host, advertised)
            # First frame must be the opening bitfield (bitfield-first
            # grammar; the sim sends it unconditionally, empty included).
            messages: List[Message] = []
            while not messages:
                chunk = await reader.read(65536)
                if not chunk:
                    raise MessageError("EOF before opening bitfield")
                messages = connection.stream.feed(chunk)
            if not isinstance(messages[0], BitfieldMessage):
                raise MessageError(
                    "expected opening BITFIELD, got %s" % type(messages[0]).__name__
                )
        except (OSError, MessageError, asyncio.IncompleteReadError):
            writer.close()
            return False
        if remote_address in self.connections or remote_address == self.address:
            writer.close()  # duplicate link (simultaneous dial); keep the first
            return False
        if self.peer_set_size >= self.config.max_peer_set:
            writer.close()
            return False

        connection.remote = make_remote_handle(remote_address, shake.peer_id, connection)
        opening = messages[0]
        assert isinstance(opening, BitfieldMessage)
        connection.remote_bitfield = Bitfield.from_bytes(
            opening.bits, self.bitfield.num_pieces
        )
        self.connections[remote_address] = connection
        now = self.simulator.now
        if self.observer is not None:
            self.observer.on_connection_open(now, connection)
            # Our bitfield went out with the handshake; log it first so
            # the per-link trace reads conn_open, sent BITFIELD,
            # received BITFIELD — the same shape the sim emits.
            self.observer.on_message_sent(
                now, connection, BitfieldMessage(bits=self.bitfield.to_bytes())
            )
            self.observer.on_message_received(now, connection, opening)
        self.picker.peer_joined(connection.remote_bitfield)
        self._update_interest(connection)
        for message in messages[1:]:
            self._dispatch(connection, message)
        connection.reader_task = asyncio.ensure_future(self._reader_loop(connection))
        connection.uploader_task = asyncio.ensure_future(self._upload_loop(connection))
        return True

    # ------------------------------------------------------------------
    # reader / dispatcher
    # ------------------------------------------------------------------

    async def _reader_loop(self, connection: NetConnection) -> None:
        reaped = False
        try:
            while not connection.closed:
                chunk = await connection.reader.read(65536)
                if not chunk:
                    break  # clean FIN from the remote
                for message in connection.stream.feed(chunk):
                    if connection.closed:
                        return
                    self._dispatch(connection, message)
        except asyncio.CancelledError:
            return
        except (OSError, MessageError):
            # Reset or garbage on the wire: reap the link, mirroring the
            # sim's fault-sweep semantics for half-open connections.
            reaped = True
        if connection.closed:
            return
        if reaped:
            now = self.simulator.now
            if self.observer is not None:
                self.observer.on_fault(now, "connection_reaped")
            if self.metrics is not None:
                self.metrics.inc("fault.connection_reaped")
        self._close_connection(connection)
        # Blocks in flight on the dead link were released back to the
        # picker; offer them to the surviving links right away.
        for other in list(self.connections.values()):
            if not other.peer_choking and other.am_interested:
                self._fill_pipeline(other)

    def _dispatch(self, connection: NetConnection, message: Message) -> None:
        if self.observer is not None:
            self.observer.on_message_received(self.simulator.now, connection, message)
        if isinstance(message, BitfieldMessage):
            self._handle_bitfield(connection, message)
        elif isinstance(message, Have):
            self._handle_have(connection, message)
        elif isinstance(message, Interested):
            connection.peer_interested = True
        elif isinstance(message, NotInterested):
            connection.peer_interested = False
        elif isinstance(message, Choke):
            self._handle_choke(connection)
        elif isinstance(message, Unchoke):
            self._handle_unchoke(connection)
        elif isinstance(message, Request):
            self._handle_request(connection, message)
        elif isinstance(message, Cancel):
            self._handle_cancel(connection, message)
        elif isinstance(message, Piece):
            self._handle_piece(connection, message)

    def _send(self, connection: NetConnection, message: Message) -> None:
        if connection.closed or self._stopping:
            return
        if self.observer is not None:
            self.observer.on_message_sent(self.simulator.now, connection, message)
        connection.write_raw(message.encode())

    # ------------------------------------------------------------------
    # message handlers (sim-peer semantics, verbatim)
    # ------------------------------------------------------------------

    def _handle_bitfield(self, connection: NetConnection, message: BitfieldMessage) -> None:
        incoming = Bitfield.from_bytes(message.bits, self.bitfield.num_pieces)
        self.picker.peer_left(connection.remote_bitfield)
        connection.remote_bitfield = incoming
        self.picker.peer_joined(incoming)
        self._update_interest(connection)

    def _handle_have(self, connection: NetConnection, message: Have) -> None:
        if connection.remote_bitfield.set(message.piece):
            self.picker.remote_has(message.piece)
        if not connection.am_interested:
            if not self._seed and not self.bitfield.has(message.piece):
                connection.am_interested = True
                self._send(connection, Interested())
        if not connection.peer_choking and connection.am_interested:
            self._fill_pipeline(connection)

    def _handle_choke(self, connection: NetConnection) -> None:
        connection.peer_choking = True
        self.picker.on_peer_gone(connection.remote_key)
        connection.outstanding.clear()

    def _handle_unchoke(self, connection: NetConnection) -> None:
        connection.peer_choking = False
        if connection.am_interested:
            self._fill_pipeline(connection)

    def _handle_request(self, connection: NetConnection, message: Request) -> None:
        if connection.am_choking:
            return  # requests received while choking are dropped
        if not self.bitfield.has(message.piece):
            return
        connection.enqueue_upload(
            BlockRef(message.piece, message.offset, message.length)
        )

    def _handle_cancel(self, connection: NetConnection, message: Cancel) -> None:
        connection.cancel_queued_block(
            BlockRef(message.piece, message.offset, message.length)
        )

    def _handle_piece(self, connection: NetConnection, message: Piece) -> None:
        geometry = self.metainfo.geometry
        block_index = message.offset // geometry.block_size
        try:
            block = geometry.block_ref(message.piece, block_index)
        except IndexError:
            return
        now = self.simulator.now
        connection.downloaded.add(now, len(message.data))
        self.total_downloaded += len(message.data)
        connection.outstanding.discard(block)
        if self.bitfield.has(block.piece):
            return  # late duplicate (end game)
        buffer = self._piece_buffers.setdefault(
            block.piece, bytearray(geometry.piece_length(block.piece))
        )
        buffer[block.offset : block.offset + block.length] = message.data
        completed, cancel_keys = self.picker.on_block_received(
            block, connection.remote_key
        )
        if self.observer is not None:
            self.observer.on_block_received(
                now, connection, block.piece, block.offset, block.length
            )
        for key in sorted(cancel_keys):
            other = self.connections.get(key)
            if other is not None:
                other.outstanding.discard(block)
                self._send(
                    other,
                    Cancel(piece=block.piece, offset=block.offset, length=block.length),
                )
        if completed:
            self._on_piece_completed(block.piece)
        if self.picker.in_endgame and not self._was_in_endgame:
            self._was_in_endgame = True
            if self.observer is not None:
                self.observer.on_endgame_entered(self.simulator.now)
        if not connection.peer_choking and connection.am_interested:
            self._fill_pipeline(connection)

    def _on_piece_completed(self, piece: int) -> None:
        now = self.simulator.now
        data = bytes(self._piece_buffers.pop(piece, b""))
        if not self.metainfo.verify_piece(piece, data):
            if self.observer is not None:
                self.observer.on_hash_failure(now, piece)
            if self.metrics is not None:
                self.metrics.inc("fault.hash_failure")
            self.picker.reset_piece(piece)
            return
        self._store[piece] = data
        if self.observer is not None:
            self.observer.on_piece_completed(now, piece)
        have = Have(piece=piece)
        for connection in list(self.connections.values()):
            self._send(connection, have)
            if connection.am_interested:
                self._update_interest(connection)
        if self.bitfield.is_complete():
            self._become_seed()

    def _update_interest(self, connection: NetConnection) -> None:
        should_be_interested = not self._seed and self.bitfield.interesting_in(
            connection.remote_bitfield
        )
        if should_be_interested and not connection.am_interested:
            connection.am_interested = True
            self._send(connection, Interested())
            if not connection.peer_choking:
                self._fill_pipeline(connection)
        elif not should_be_interested and connection.am_interested:
            connection.am_interested = False
            self._send(connection, NotInterested())

    def _fill_pipeline(self, connection: NetConnection) -> None:
        while (
            not connection.closed
            and connection.am_interested
            and not connection.peer_choking
            and len(connection.outstanding) < self.config.request_pipeline_depth
        ):
            block = self.picker.next_request(
                connection.remote_bitfield, connection.remote_key
            )
            if block is None:
                break
            connection.outstanding.add(block)
            self._send(
                connection,
                Request(piece=block.piece, offset=block.offset, length=block.length),
            )

    # ------------------------------------------------------------------
    # uploads (token-bucket paced)
    # ------------------------------------------------------------------

    async def _upload_loop(self, connection: NetConnection) -> None:
        try:
            while not connection.closed:
                await connection.upload_ready.wait()
                block = connection.pop_upload()
                if block is None:
                    continue
                await self._bucket.take(block.length)
                # The link may have choked or died while waiting for
                # tokens; the queue was cleared then, so drop the block.
                # (No await between this check and the send, so the
                # byte counting and the write stay atomic.)
                if connection.closed or connection.am_choking or self._stopping:
                    continue
                payload = self.piece_payload(block.piece)
                data = payload[block.offset : block.offset + block.length]
                now = self.simulator.now
                connection.uploaded.add(now, len(data))
                self.total_uploaded += len(data)
                self._send(
                    connection,
                    Piece(piece=block.piece, offset=block.offset, data=data),
                )
                await connection.writer.drain()
        except asyncio.CancelledError:
            return
        except (OSError, RuntimeError):
            return  # transport died; the reader loop reaps the link

    # ------------------------------------------------------------------
    # the choke round
    # ------------------------------------------------------------------

    async def _choke_loop(self) -> None:
        try:
            while self.online:
                await asyncio.sleep(self.config.choke_interval)
                if self.online:
                    self._choke_round()
        except asyncio.CancelledError:
            return

    def _choke_round(self) -> None:
        now = self.simulator.now
        candidates: List[ChokeCandidate] = []
        for connection in self.connections.values():
            download_rate = connection.downloaded.rate(now)
            upload_rate = connection.uploaded.rate(now)
            if self.observer is not None:
                self.observer.on_rate_sample(
                    now, connection, download_rate, upload_rate
                )
            candidates.append(
                ChokeCandidate(
                    key=connection.remote_key,
                    interested=connection.peer_interested,
                    choked=connection.am_choking,
                    download_rate=download_rate,
                    upload_rate=upload_rate,
                    uploaded_to=connection.uploaded.total,
                    downloaded_from=connection.downloaded.total,
                    last_unchoked=connection.last_unchoked_local,
                )
            )
        decision = self.choker.round(candidates, now, self.rng)
        if self.observer is not None:
            self.observer.on_choke_round(now, decision)
        unchoke_set = set(decision.unchoked)
        for connection in list(self.connections.values()):
            if connection.remote_key in unchoke_set:
                if connection.am_choking:
                    connection.am_choking = False
                    connection.last_unchoked_local = now
                    self._send(connection, Unchoke())
            else:
                if not connection.am_choking:
                    connection.am_choking = True
                    connection.clear_upload_queue()
                    self._send(connection, Choke())

    # ------------------------------------------------------------------
    # seed transition & teardown
    # ------------------------------------------------------------------

    def _become_seed(self) -> None:
        if self._seed:
            return
        self._seed = True
        now = self.simulator.now
        self.became_seed_at = now
        self.seed_choker.reset()
        if self.observer is not None:
            self.observer.on_seed_state(now)
        try:
            self.tracker.announce(
                self.address,
                event="completed",
                num_want=0,
                is_seed=True,
                rng=self.rng,
            )
        except Exception:
            pass
        # "When a leecher becomes a seed, it closes its connections to
        # all the seeds." (§IV-A.2.b)  Half-close (FIN) rather than
        # hard-close: PIECE frames still in the socket buffer must be
        # drained and counted on this side before the link dies, or the
        # swarm's byte conservation breaks.
        for connection in list(self.connections.values()):
            if connection.remote_bitfield.is_complete():
                self._half_close(connection)
            elif connection.am_interested:
                connection.am_interested = False
                self._send(connection, NotInterested())
        self.completed.set()

    def _half_close(self, connection: NetConnection) -> None:
        """Send FIN but keep reading; the reader loop closes on EOF."""
        connection.clear_upload_queue()
        if connection.uploader_task is not None:
            connection.uploader_task.cancel()
        try:
            if connection.writer.can_write_eof():
                connection.writer.write_eof()
        except (OSError, RuntimeError):
            pass

    def _close_connection(self, connection: NetConnection) -> None:
        """Tear down our endpoint (FIN); the remote sees a clean EOF."""
        if connection.closed:
            return
        connection.closed = True
        self.connections.pop(connection.remote_key, None)
        self.picker.peer_left(connection.remote_bitfield)
        self.picker.on_peer_gone(connection.remote_key)
        connection.clear_upload_queue()
        connection.outstanding.clear()
        if connection.uploader_task is not None:
            connection.uploader_task.cancel()
        if self.observer is not None:
            self.observer.on_connection_close(self.simulator.now, connection)
        try:
            connection.writer.close()
        except (OSError, RuntimeError):  # pragma: no cover - already dead
            pass
