"""In-process live swarms: N asyncio peers over localhost TCP.

A :class:`LiveSwarm` is the live counterpart of
:class:`repro.sim.swarm.Swarm`: it owns the shared wall clock, the
in-memory tracker, the metrics registry and (optionally) a
:class:`~repro.instrumentation.trace.TraceRecorder` that every peer's
:class:`~repro.instrumentation.trace.TracingObserver` appends to, then
runs the download to completion.  The emitted trace uses the same
schema v1 as the sim, so the replay/figure pipelines consume it
unchanged — that property is what the differential conformance tests
in :mod:`tests.test_net_conformance` lean on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional

from repro.instrumentation.metrics import MetricsRegistry
from repro.instrumentation.trace import TraceRecorder, TracingObserver
from repro.net.connection import WallClock
from repro.net.peer import NetPeer
from repro.protocol.metainfo import Metainfo
from repro.sim.config import PeerConfig
from repro.tracker.tracker import Tracker


@dataclass
class LiveSwarmResult:
    """Outcome of one live run (the net analogue of ``SwarmResult``)."""

    duration: float
    addresses: List[str] = field(default_factory=list)
    completed_at: Dict[str, float] = field(default_factory=dict)
    uploaded: Dict[str, float] = field(default_factory=dict)
    downloaded: Dict[str, float] = field(default_factory=dict)
    trace_fingerprint: Optional[str] = None

    @property
    def all_complete(self) -> bool:
        return len(self.completed_at) == len(self.addresses)


class LiveSwarm:
    """Spin up N in-process live peers and download to completion."""

    def __init__(
        self,
        metainfo: Metainfo,
        seed: int = 0,
        config: Optional[PeerConfig] = None,
        recorder: Optional[TraceRecorder] = None,
        trace_all: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
    ):
        self.metainfo = metainfo
        self.seed = seed
        self.config = config or PeerConfig()
        self.recorder = recorder
        self.trace_all = trace_all
        self.metrics = metrics or MetricsRegistry()
        self.host = host
        self.clock = WallClock()
        self.tracker = Tracker(
            Random("net-tracker-%d" % seed), clock=lambda: self.clock.now
        )
        self.peers: List[NetPeer] = []
        self._started = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_peer(
        self, is_seed: bool = False, config: Optional[PeerConfig] = None
    ) -> NetPeer:
        """Register one peer (before :meth:`start`); returns it."""
        if self._started:
            raise RuntimeError("cannot add peers to a started swarm")
        index = len(self.peers)
        observer = None
        if self.recorder is not None and (self.trace_all or index == 0):
            observer = TracingObserver(self.recorder)
        peer = NetPeer(
            self.metainfo,
            config or self.config,
            self.tracker,
            self.clock,
            Random("net-peer-%d-%d" % (self.seed, index)),
            is_seed=is_seed,
            observer=observer,
            metrics=self.metrics,
            host=self.host,
        )
        self.peers.append(peer)
        return peer

    def add_peers(self, seeds: int, leechers: int) -> None:
        for _ in range(seeds):
            self.add_peer(is_seed=True)
        for _ in range(leechers):
            self.add_peer(is_seed=False)

    @property
    def leechers(self) -> List[NetPeer]:
        return [peer for peer in self.peers if not peer.completed.is_set()]

    # ------------------------------------------------------------------
    # lifecycle phases (compose, or use run())
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind every server, then join peers in registration order, so
        each later peer discovers (and dials) every earlier one; inbound
        links make the mesh symmetric."""
        self._started = True
        for peer in self.peers:
            await peer.start()
        for peer in self.peers:
            await peer.join()

    async def wait(self, timeout: float) -> None:
        """Block until every leecher completed; TimeoutError otherwise."""
        waiters = [
            peer.completed.wait() for peer in self.peers if not peer.completed.is_set()
        ]
        if not waiters:
            return
        try:
            await asyncio.wait_for(asyncio.gather(*waiters), timeout)
        except asyncio.TimeoutError:
            stuck = [
                "%s (%d/%d pieces)"
                % (peer.address, peer.bitfield.count, peer.bitfield.num_pieces)
                for peer in self.peers
                if not peer.completed.is_set()
            ]
            raise asyncio.TimeoutError(
                "live swarm incomplete after %.1fs: %s" % (timeout, ", ".join(stuck))
            )

    async def shutdown(self) -> None:
        """Graceful teardown: every peer half-closes and drains, so
        in-flight bytes are counted on both endpoints (byte
        conservation), then observers finalize."""
        await asyncio.gather(*[peer.stop() for peer in self.peers])

    def kill_peer(self, address: str) -> NetPeer:
        """Abruptly crash the peer at *address* (RST on every link)."""
        for peer in self.peers:
            if peer.address == address:
                peer.crash()
                self.metrics.inc("fault.peer_killed")
                return peer
        raise KeyError("no live peer at %s" % address)

    # ------------------------------------------------------------------
    # one-shot driver
    # ------------------------------------------------------------------

    async def run(self, timeout: float = 60.0) -> LiveSwarmResult:
        try:
            await self.start()
            await self.wait(timeout)
        finally:
            await self.shutdown()
        return self.result()

    def run_sync(self, timeout: float = 60.0) -> LiveSwarmResult:
        """Synchronous wrapper (CLI / examples)."""
        return asyncio.run(self.run(timeout))

    def result(self) -> LiveSwarmResult:
        fingerprint = None
        if self.recorder is not None:
            fingerprint = self.recorder.close()
        result = LiveSwarmResult(
            duration=self.clock.now, trace_fingerprint=fingerprint
        )
        for peer in self.peers:
            address = peer.address or "?"
            result.addresses.append(address)
            if peer.became_seed_at is not None:
                result.completed_at[address] = peer.became_seed_at
            result.uploaded[address] = peer.total_uploaded
            result.downloaded[address] = peer.total_downloaded
        return result
