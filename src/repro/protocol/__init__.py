"""BitTorrent protocol substrate.

This package implements, from scratch, the protocol-level building blocks
a BitTorrent client needs:

* :mod:`repro.protocol.bencode` — the bencoding codec used by .torrent
  files and tracker responses;
* :mod:`repro.protocol.bitfield` — the compact piece-ownership bitmap;
* :mod:`repro.protocol.metainfo` — torrent metadata and piece/block
  geometry (256 kB pieces split in 16 kB blocks by default);
* :mod:`repro.protocol.messages` — all peer-wire messages with binary
  encoding and decoding;
* :mod:`repro.protocol.peer_id` — Azureus-style peer identifiers and the
  (IP, client-ID) peer-identification rule of the paper's section III-D.
"""

from repro.protocol.bencode import BencodeError, bdecode, bencode
from repro.protocol.bitfield import Bitfield
from repro.protocol.messages import (
    Bitfield as BitfieldMessage,
    Cancel,
    Choke,
    Handshake,
    Have,
    Interested,
    KeepAlive,
    Message,
    NotInterested,
    Piece,
    Request,
    Unchoke,
    decode_message,
)
from repro.protocol.metainfo import BlockRef, Metainfo, PieceGeometry
from repro.protocol.peer_id import PeerId, make_peer_id, parse_client_id

__all__ = [
    "BencodeError",
    "bdecode",
    "bencode",
    "Bitfield",
    "BitfieldMessage",
    "BlockRef",
    "Cancel",
    "Choke",
    "Handshake",
    "Have",
    "Interested",
    "KeepAlive",
    "Message",
    "Metainfo",
    "NotInterested",
    "PeerId",
    "Piece",
    "PieceGeometry",
    "Request",
    "Unchoke",
    "decode_message",
    "make_peer_id",
    "parse_client_id",
]
