"""Bencoding codec (BEP 3).

Bencoding is the serialisation format used by .torrent metainfo files and
by tracker HTTP responses.  Four types exist:

* integers     ``i<decimal>e`` (no leading zeros, ``i-0e`` forbidden)
* byte strings ``<length>:<bytes>``
* lists        ``l<items>e``
* dictionaries ``d<key><value>...e`` with byte-string keys sorted in raw
  byte order (required for the canonical form that SHA-1 info hashes are
  computed over).

The encoder accepts ``int``, ``bytes``, ``str`` (encoded as UTF-8),
``list``/``tuple`` and ``dict``.  The decoder produces ``int``, ``bytes``,
``list`` and ``dict`` (keys are ``bytes``).
"""

from __future__ import annotations

from typing import Any, Tuple, Union

Bencodable = Union[int, bytes, str, list, tuple, dict]


class BencodeError(ValueError):
    """Raised when a value cannot be bencoded or a buffer cannot be decoded."""


def bencode(value: Bencodable) -> bytes:
    """Serialise *value* to its canonical bencoded form.

    >>> bencode({"announce": "http://t/ann", "n": 2})
    b'd8:announce12:http://t/ann1:ni2ee'
    """
    chunks: list = []
    _encode(value, chunks)
    return b"".join(chunks)


def _encode(value: Bencodable, out: list) -> None:
    if isinstance(value, bool):
        # bool is a subclass of int; reject it to avoid silent surprises.
        raise BencodeError("booleans are not bencodable")
    if isinstance(value, int):
        out.append(b"i%de" % value)
    elif isinstance(value, bytes):
        out.append(b"%d:" % len(value))
        out.append(value)
    elif isinstance(value, str):
        _encode(value.encode("utf-8"), out)
    elif isinstance(value, (list, tuple)):
        out.append(b"l")
        for item in value:
            _encode(item, out)
        out.append(b"e")
    elif isinstance(value, dict):
        out.append(b"d")
        encoded_keys = []
        for key in value:
            if isinstance(key, str):
                encoded_keys.append((key.encode("utf-8"), key))
            elif isinstance(key, bytes):
                encoded_keys.append((key, key))
            else:
                raise BencodeError(
                    "dictionary keys must be bytes or str, got %r" % type(key)
                )
        encoded_keys.sort(key=lambda pair: pair[0])
        for raw_key, original_key in encoded_keys:
            _encode(raw_key, out)
            _encode(value[original_key], out)
        out.append(b"e")
    else:
        raise BencodeError("cannot bencode values of type %r" % type(value))


def bdecode(data: bytes) -> Any:
    """Decode a complete bencoded buffer.

    Raises :class:`BencodeError` on malformed input or trailing garbage.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise BencodeError("bdecode expects bytes")
    data = bytes(data)
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise BencodeError("trailing data after bencoded value")
    return value


def _decode(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise BencodeError("unexpected end of data")
    lead = data[offset : offset + 1]
    if lead == b"i":
        return _decode_int(data, offset)
    if lead == b"l":
        return _decode_list(data, offset)
    if lead == b"d":
        return _decode_dict(data, offset)
    if lead.isdigit():
        return _decode_bytes(data, offset)
    raise BencodeError("invalid type marker %r at offset %d" % (lead, offset))


def _decode_int(data: bytes, offset: int) -> Tuple[int, int]:
    end = data.find(b"e", offset)
    if end < 0:
        raise BencodeError("unterminated integer")
    body = data[offset + 1 : end]
    if not body or body == b"-":
        raise BencodeError("empty integer")
    if body != b"0" and (body.lstrip(b"-").startswith(b"0") or body == b"-0"):
        raise BencodeError("integer with leading zeros: %r" % body)
    try:
        return int(body), end + 1
    except ValueError as exc:
        raise BencodeError("invalid integer %r" % body) from exc


def _decode_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    colon = data.find(b":", offset)
    if colon < 0:
        raise BencodeError("unterminated string length")
    length_bytes = data[offset:colon]
    if len(length_bytes) > 1 and length_bytes.startswith(b"0"):
        raise BencodeError("string length with leading zeros")
    try:
        length = int(length_bytes)
    except ValueError as exc:
        raise BencodeError("invalid string length %r" % length_bytes) from exc
    start = colon + 1
    end = start + length
    if end > len(data):
        raise BencodeError("string extends past end of data")
    return data[start:end], end


def _decode_list(data: bytes, offset: int) -> Tuple[list, int]:
    items = []
    offset += 1
    while True:
        if offset >= len(data):
            raise BencodeError("unterminated list")
        if data[offset : offset + 1] == b"e":
            return items, offset + 1
        item, offset = _decode(data, offset)
        items.append(item)


def _decode_dict(data: bytes, offset: int) -> Tuple[dict, int]:
    result: dict = {}
    offset += 1
    previous_key = None
    while True:
        if offset >= len(data):
            raise BencodeError("unterminated dictionary")
        if data[offset : offset + 1] == b"e":
            return result, offset + 1
        key, offset = _decode(data, offset)
        if not isinstance(key, bytes):
            raise BencodeError("dictionary key is not a byte string")
        if previous_key is not None and key <= previous_key:
            raise BencodeError("dictionary keys not in sorted order")
        previous_key = key
        value, offset = _decode(data, offset)
        result[key] = value
