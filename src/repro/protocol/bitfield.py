"""Piece-ownership bitfield.

Each peer advertises which pieces it holds with a compact bitmap: one bit
per piece, most significant bit of the first byte = piece 0, spare bits at
the end of the last byte must be zero (BEP 3).  On top of wire
(de)serialisation, this class offers the set operations the rest of the
library relies on: counting, iteration over set/missing pieces, and the
"has pieces the other side misses" test that drives INTERESTED messages.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator

try:  # optional: only used to parse incoming bitfields faster
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


class Bitfield:
    """Mutable fixed-size bitmap over ``num_pieces`` pieces.

    Alongside the wire-format bitmap, the held indices are mirrored in a
    plain ``set`` so swarm-scale consumers (the rarity-bucket piece
    index) can intersect piece sets at C speed instead of probing one
    bit at a time.
    """

    __slots__ = ("_num_pieces", "_bits", "_count", "_have")

    def __init__(self, num_pieces: int, have: Iterable[int] = ()):
        if num_pieces < 0:
            raise ValueError("num_pieces must be non-negative")
        self._num_pieces = num_pieces
        self._bits = bytearray((num_pieces + 7) // 8)
        self._count = 0
        self._have: set = set()
        for index in have:
            self.set(index)

    # -- construction ----------------------------------------------------

    @classmethod
    def full(cls, num_pieces: int) -> "Bitfield":
        """A bitfield with every piece set (a seed's bitfield)."""
        field = cls(num_pieces)
        for byte_index in range(len(field._bits)):
            field._bits[byte_index] = 0xFF
        spare = len(field._bits) * 8 - num_pieces
        if spare and field._bits:
            field._bits[-1] &= 0xFF << spare & 0xFF
        field._count = num_pieces
        field._have = set(range(num_pieces))
        return field

    @classmethod
    def from_bytes(cls, data: bytes, num_pieces: int) -> "Bitfield":
        """Parse a wire-format bitfield; validates length and spare bits."""
        expected = (num_pieces + 7) // 8
        if len(data) != expected:
            raise ValueError(
                "bitfield is %d bytes, expected %d for %d pieces"
                % (len(data), expected, num_pieces)
            )
        field = cls(num_pieces)
        field._bits = bytearray(data)
        spare = expected * 8 - num_pieces
        if spare and data and data[-1] & ((1 << spare) - 1):
            raise ValueError("spare bits in final bitfield byte are not zero")
        if _np is not None:
            field._have = set(
                _np.flatnonzero(
                    _np.unpackbits(
                        _np.frombuffer(data, dtype=_np.uint8), count=num_pieces
                    )
                ).tolist()
            )
        else:
            field._have = {
                index
                for index in range(num_pieces)
                if field._bits[index >> 3] & (0x80 >> (index & 7))
            }
        field._count = len(field._have)
        return field

    def to_bytes(self) -> bytes:
        """Wire-format serialisation."""
        return bytes(self._bits)

    def copy(self) -> "Bitfield":
        clone = Bitfield(self._num_pieces)
        clone._bits = bytearray(self._bits)
        clone._count = self._count
        clone._have = set(self._have)
        return clone

    # -- single-piece operations ------------------------------------------

    def _check(self, index: int) -> None:
        if not 0 <= index < self._num_pieces:
            raise IndexError("piece index %d out of range [0, %d)" % (index, self._num_pieces))

    def has(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits[index >> 3] & (0x80 >> (index & 7)))

    def set(self, index: int) -> bool:
        """Mark *index* as held.  Returns True if the bit changed."""
        self._check(index)
        mask = 0x80 >> (index & 7)
        if self._bits[index >> 3] & mask:
            return False
        self._bits[index >> 3] |= mask
        self._count += 1
        self._have.add(index)
        return True

    def clear(self, index: int) -> bool:
        """Mark *index* as missing.  Returns True if the bit changed."""
        self._check(index)
        mask = 0x80 >> (index & 7)
        if not self._bits[index >> 3] & mask:
            return False
        self._bits[index >> 3] &= ~mask & 0xFF
        self._count -= 1
        self._have.discard(index)
        return True

    # -- aggregates --------------------------------------------------------

    @property
    def num_pieces(self) -> int:
        return self._num_pieces

    @property
    def count(self) -> int:
        """Number of pieces held."""
        return self._count

    @property
    def missing(self) -> int:
        """Number of pieces not held."""
        return self._num_pieces - self._count

    def is_complete(self) -> bool:
        return self._count == self._num_pieces

    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def have_set(self) -> AbstractSet[int]:
        """The held piece indices as a set (live view — do not mutate).

        This is what makes rarity-bucket intersections O(min(|bucket|,
        |have|)) at C speed; treat it as read-only.  Caveat: the fused
        HAVE fan-out skips this mirror on remote views owned by
        matrix-attached peers (matrix-mode accounting is bit-level), so
        for those views use ``have_indices``/``has``, which read the
        authoritative bitmap."""
        return self._have

    def have_indices(self) -> Iterator[int]:
        """Iterate over indices of held pieces, in increasing order.

        Derived from the bitmap, not the ``have_set`` mirror: remote
        views owned by matrix-attached peers update only their bits on
        the fused HAVE fan-out, so the bitmap is the authoritative
        representation."""
        return iter(
            [
                index
                for index in range(self._num_pieces)
                if self._bits[index >> 3] & (0x80 >> (index & 7))
            ]
        )

    def missing_indices(self) -> Iterator[int]:
        """Iterate over indices of missing pieces, in increasing order."""
        for index in range(self._num_pieces):
            if not self._bits[index >> 3] & (0x80 >> (index & 7)):
                yield index

    def as_int(self) -> int:
        """The bits as one big-endian integer (piece 0 at the most
        significant end, spare padding bits zero): a cheap basis for
        whole-bitfield boolean algebra at C speed.  ``a.as_int() &
        ~b.as_int()`` is nonzero exactly when ``a`` holds a piece ``b``
        misses — the complement's infinite high ones and the padding
        positions never intersect a valid bitfield's finite bits."""
        return int.from_bytes(self._bits, "big")

    def interesting_in(self, other: "Bitfield") -> bool:
        """True when *other* holds at least one piece this bitfield misses.

        This is the protocol's definition of interest: peer A is interested
        in peer B when B has pieces A does not have (paper §II-A).
        """
        if other._num_pieces != self._num_pieces:
            raise ValueError("bitfields cover different torrents")
        return bool(int.from_bytes(other._bits, "big") & ~int.from_bytes(self._bits, "big"))

    def pieces_only_in(self, other: "Bitfield") -> Iterator[int]:
        """Indices held by *other* but missing here."""
        if other._num_pieces != self._num_pieces:
            raise ValueError("bitfields cover different torrents")
        for index in range(self._num_pieces):
            mask = 0x80 >> (index & 7)
            byte = index >> 3
            if other._bits[byte] & mask and not self._bits[byte] & mask:
                yield index

    # -- dunder ------------------------------------------------------------

    def __len__(self) -> int:
        return self._num_pieces

    def __contains__(self, index: int) -> bool:
        return 0 <= index < self._num_pieces and self.has(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitfield):
            return NotImplemented
        return self._num_pieces == other._num_pieces and self._bits == other._bits

    def __hash__(self) -> int:  # pragma: no cover - mutable, but handy in sets of frozen copies
        return hash((self._num_pieces, bytes(self._bits)))

    def __repr__(self) -> str:
        return "Bitfield(%d/%d pieces)" % (self._count, self._num_pieces)
