"""BitTorrent peer-wire messages (BEP 3).

Every message after the handshake has the frame ``<length: u32 big-endian>
<id: u8> <payload>``; keep-alive is a zero-length frame with no id.  This
module defines one dataclass per message plus binary ``encode`` /
:func:`decode_message` round-trips.  The simulator passes message objects
directly between peers (the wire encoding is exercised by tests and by the
instrumentation layer, which records wire sizes for byte accounting).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar, Dict, Type

PROTOCOL_STRING = b"BitTorrent protocol"
HANDSHAKE_LENGTH = 49 + len(PROTOCOL_STRING)


class MessageError(ValueError):
    """Raised when a wire buffer cannot be decoded into a message."""


@dataclass(frozen=True)
class Handshake:
    """The connection-opening handshake (not length-prefixed)."""

    info_hash: bytes
    peer_id: bytes
    reserved: bytes = b"\x00" * 8

    def __post_init__(self) -> None:
        if len(self.info_hash) != 20:
            raise MessageError("info_hash must be 20 bytes")
        if len(self.peer_id) != 20:
            raise MessageError("peer_id must be 20 bytes")
        if len(self.reserved) != 8:
            raise MessageError("reserved field must be 8 bytes")

    def encode(self) -> bytes:
        return (
            bytes([len(PROTOCOL_STRING)])
            + PROTOCOL_STRING
            + self.reserved
            + self.info_hash
            + self.peer_id
        )

    @classmethod
    def decode(cls, data: bytes) -> "Handshake":
        if len(data) != HANDSHAKE_LENGTH:
            raise MessageError(
                "handshake is %d bytes, expected %d" % (len(data), HANDSHAKE_LENGTH)
            )
        pstrlen = data[0]
        if pstrlen != len(PROTOCOL_STRING) or data[1 : 1 + pstrlen] != PROTOCOL_STRING:
            raise MessageError("unknown protocol string")
        base = 1 + pstrlen
        return cls(
            reserved=data[base : base + 8],
            info_hash=data[base + 8 : base + 28],
            peer_id=data[base + 28 : base + 48],
        )


@dataclass(frozen=True)
class Message:
    """Base class for length-prefixed peer-wire messages."""

    MESSAGE_ID: ClassVar[int] = -1

    def payload(self) -> bytes:
        return b""

    def encode(self) -> bytes:
        body = self.payload()
        return struct.pack(">IB", 1 + len(body), self.MESSAGE_ID) + body

    @property
    def wire_length(self) -> int:
        """Total bytes this message occupies on the wire."""
        return 4 + 1 + len(self.payload())


@dataclass(frozen=True)
class KeepAlive(Message):
    """Zero-length frame; keeps idle connections open."""

    def encode(self) -> bytes:
        return struct.pack(">I", 0)

    @property
    def wire_length(self) -> int:
        return 4


@dataclass(frozen=True)
class Choke(Message):
    MESSAGE_ID: ClassVar[int] = 0


@dataclass(frozen=True)
class Unchoke(Message):
    MESSAGE_ID: ClassVar[int] = 1


@dataclass(frozen=True)
class Interested(Message):
    MESSAGE_ID: ClassVar[int] = 2


@dataclass(frozen=True)
class NotInterested(Message):
    MESSAGE_ID: ClassVar[int] = 3


@dataclass(frozen=True)
class Have(Message):
    """Announces that the sender completed (and verified) one piece."""

    MESSAGE_ID: ClassVar[int] = 4
    piece: int = 0

    def payload(self) -> bytes:
        return struct.pack(">I", self.piece)


@dataclass(frozen=True)
class Bitfield(Message):
    """The sender's full piece bitmap; sent right after the handshake."""

    MESSAGE_ID: ClassVar[int] = 5
    bits: bytes = b""

    def payload(self) -> bytes:
        return self.bits


@dataclass(frozen=True)
class Request(Message):
    """Asks for one block: (piece index, byte offset, length)."""

    MESSAGE_ID: ClassVar[int] = 6
    piece: int = 0
    offset: int = 0
    length: int = 0

    def payload(self) -> bytes:
        return struct.pack(">III", self.piece, self.offset, self.length)


@dataclass(frozen=True)
class Piece(Message):
    """Carries one block of data."""

    MESSAGE_ID: ClassVar[int] = 7
    piece: int = 0
    offset: int = 0
    data: bytes = b""

    def payload(self) -> bytes:
        return struct.pack(">II", self.piece, self.offset) + self.data


@dataclass(frozen=True)
class Cancel(Message):
    """Cancels a pending Request; the workhorse of end-game mode."""

    MESSAGE_ID: ClassVar[int] = 8
    piece: int = 0
    offset: int = 0
    length: int = 0

    def payload(self) -> bytes:
        return struct.pack(">III", self.piece, self.offset, self.length)


_MESSAGE_TYPES: Dict[int, Type[Message]] = {
    cls.MESSAGE_ID: cls
    for cls in (
        Choke,
        Unchoke,
        Interested,
        NotInterested,
        Have,
        Bitfield,
        Request,
        Piece,
        Cancel,
    )
}


def decode_message(data: bytes) -> Message:
    """Decode one complete length-prefixed frame into a message object."""
    if len(data) < 4:
        raise MessageError("frame shorter than length prefix")
    (length,) = struct.unpack(">I", data[:4])
    if len(data) != 4 + length:
        raise MessageError(
            "frame length mismatch: prefix says %d, got %d payload bytes"
            % (length, len(data) - 4)
        )
    if length == 0:
        return KeepAlive()
    message_id = data[4]
    body = data[5:]
    cls = _MESSAGE_TYPES.get(message_id)
    if cls is None:
        raise MessageError("unknown message id %d" % message_id)
    if cls in (Choke, Unchoke, Interested, NotInterested):
        if body:
            raise MessageError("%s carries unexpected payload" % cls.__name__)
        return cls()
    if cls is Have:
        if len(body) != 4:
            raise MessageError("HAVE payload must be 4 bytes")
        return Have(piece=struct.unpack(">I", body)[0])
    if cls is Bitfield:
        return Bitfield(bits=body)
    if cls is Request or cls is Cancel:
        if len(body) != 12:
            raise MessageError("%s payload must be 12 bytes" % cls.__name__)
        piece, offset, block_length = struct.unpack(">III", body)
        return cls(piece=piece, offset=offset, length=block_length)
    if cls is Piece:
        if len(body) < 8:
            raise MessageError("PIECE payload must be at least 8 bytes")
        piece, offset = struct.unpack(">II", body[:8])
        return Piece(piece=piece, offset=offset, data=body[8:])
    raise MessageError("unhandled message id %d" % message_id)  # pragma: no cover
