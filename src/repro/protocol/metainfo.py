"""Torrent metainfo and piece/block geometry.

A torrent's content is split in *pieces* (typically 256 kB; the protocol
only accounts for complete pieces) and each piece is split in *blocks*
(16 kB, the transmission unit), as in the paper's section II-A.  This
module owns that arithmetic, the SHA-1 piece digests, and the building
and parsing of .torrent metainfo dictionaries via
:mod:`repro.protocol.bencode`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

from repro.protocol.bencode import bdecode, bencode

DEFAULT_PIECE_SIZE = 256 * 1024
DEFAULT_BLOCK_SIZE = 16 * 1024  # 2**14, the mainline default block size


@dataclass(frozen=True)
class BlockRef:
    """A block within a piece: (piece index, byte offset, length)."""

    piece: int
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.piece < 0 or self.offset < 0 or self.length <= 0:
            raise ValueError("invalid block reference %r" % (self,))


class PieceGeometry:
    """Pure piece/block arithmetic for a content of ``total_size`` bytes."""

    def __init__(
        self,
        total_size: int,
        piece_size: int = DEFAULT_PIECE_SIZE,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if total_size <= 0:
            raise ValueError("total_size must be positive")
        if piece_size <= 0 or block_size <= 0:
            raise ValueError("piece_size and block_size must be positive")
        if block_size > piece_size:
            raise ValueError("block_size cannot exceed piece_size")
        self.total_size = total_size
        self.piece_size = piece_size
        self.block_size = block_size
        self.num_pieces = -(-total_size // piece_size)

    def piece_length(self, piece: int) -> int:
        """Length in bytes of *piece* (the last piece may be shorter)."""
        self._check_piece(piece)
        if piece == self.num_pieces - 1:
            remainder = self.total_size - piece * self.piece_size
            return remainder
        return self.piece_size

    def blocks_in_piece(self, piece: int) -> int:
        length = self.piece_length(piece)
        return -(-length // self.block_size)

    def blocks(self, piece: int) -> List[BlockRef]:
        """All blocks of *piece*, in offset order."""
        length = self.piece_length(piece)
        refs = []
        offset = 0
        while offset < length:
            block_length = min(self.block_size, length - offset)
            refs.append(BlockRef(piece, offset, block_length))
            offset += block_length
        return refs

    def block_ref(self, piece: int, block_index: int) -> BlockRef:
        """The ``block_index``-th block of *piece*."""
        length = self.piece_length(piece)
        offset = block_index * self.block_size
        if not 0 <= offset < length:
            raise IndexError(
                "block %d out of range for piece %d" % (block_index, piece)
            )
        return BlockRef(piece, offset, min(self.block_size, length - offset))

    @property
    def total_blocks(self) -> int:
        return sum(self.blocks_in_piece(piece) for piece in range(self.num_pieces))

    def _check_piece(self, piece: int) -> None:
        if not 0 <= piece < self.num_pieces:
            raise IndexError("piece %d out of range [0, %d)" % (piece, self.num_pieces))

    def __repr__(self) -> str:
        return "PieceGeometry(size=%d, pieces=%d x %d B, blocks of %d B)" % (
            self.total_size,
            self.num_pieces,
            self.piece_size,
            self.block_size,
        )


class Metainfo:
    """Torrent metadata: name, geometry, piece digests, announce URL.

    Content is synthetic in this reproduction (there is no real payload on
    disk), but the SHA-1 machinery is real: :meth:`synthetic` derives each
    piece's bytes deterministically from (info-hash seed, piece index), so
    hash verification on piece completion exercises the same code path a
    real client does.
    """

    def __init__(
        self,
        name: str,
        geometry: PieceGeometry,
        piece_hashes: List[bytes],
        announce: str = "sim://tracker",
    ):
        if len(piece_hashes) != geometry.num_pieces:
            raise ValueError(
                "expected %d piece hashes, got %d"
                % (geometry.num_pieces, len(piece_hashes))
            )
        for digest in piece_hashes:
            if len(digest) != 20:
                raise ValueError("piece hashes must be 20-byte SHA-1 digests")
        self.name = name
        self.geometry = geometry
        self.piece_hashes = list(piece_hashes)
        self.announce = announce
        self.info_hash = self._compute_info_hash()

    # -- synthetic content --------------------------------------------------

    @classmethod
    def synthetic(
        cls,
        name: str,
        total_size: int,
        piece_size: int = DEFAULT_PIECE_SIZE,
        block_size: int = DEFAULT_BLOCK_SIZE,
        announce: str = "sim://tracker",
    ) -> "Metainfo":
        """Build a metainfo over deterministic synthetic content."""
        geometry = PieceGeometry(total_size, piece_size, block_size)
        hashes = [
            hashlib.sha1(cls._piece_payload(name, piece, geometry)).digest()
            for piece in range(geometry.num_pieces)
        ]
        return cls(name, geometry, hashes, announce)

    @staticmethod
    def _piece_payload(name: str, piece: int, geometry: PieceGeometry) -> bytes:
        """Deterministic bytes for *piece*; cheap and collision-free enough."""
        seed = hashlib.sha1(("%s/%d" % (name, piece)).encode()).digest()
        length = geometry.piece_length(piece)
        repeats = -(-length // len(seed))
        return (seed * repeats)[:length]

    def piece_payload(self, piece: int) -> bytes:
        """The synthetic content of *piece* (what a seed would serve)."""
        return self._piece_payload(self.name, piece, self.geometry)

    def verify_piece(self, piece: int, data: bytes) -> bool:
        """SHA-1 check of a completed piece, as a real client performs."""
        self.geometry._check_piece(piece)
        if len(data) != self.geometry.piece_length(piece):
            return False
        return hashlib.sha1(data).digest() == self.piece_hashes[piece]

    # -- .torrent round trip --------------------------------------------------

    def _info_dict(self) -> dict:
        return {
            b"name": self.name.encode("utf-8"),
            b"piece length": self.geometry.piece_size,
            b"length": self.geometry.total_size,
            b"pieces": b"".join(self.piece_hashes),
        }

    def _compute_info_hash(self) -> bytes:
        return hashlib.sha1(bencode(self._info_dict())).digest()

    def to_torrent_file(self) -> bytes:
        """Serialise to .torrent (bencoded) bytes."""
        return bencode(
            {
                b"announce": self.announce.encode("utf-8"),
                b"info": self._info_dict(),
            }
        )

    @classmethod
    def from_torrent_file(
        cls, data: bytes, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> "Metainfo":
        """Parse .torrent bytes produced by :meth:`to_torrent_file`."""
        try:
            top = bdecode(data)
        except Exception as exc:
            raise ValueError("not a valid .torrent file: %s" % exc) from exc
        if not isinstance(top, dict) or b"info" not in top:
            raise ValueError("missing 'info' dictionary")
        info = top[b"info"]
        required = (b"name", b"piece length", b"length", b"pieces")
        for key in required:
            if key not in info:
                raise ValueError("missing info key %r" % key)
        pieces_blob = info[b"pieces"]
        if len(pieces_blob) % 20:
            raise ValueError("pieces blob is not a multiple of 20 bytes")
        hashes = [pieces_blob[i : i + 20] for i in range(0, len(pieces_blob), 20)]
        geometry = PieceGeometry(
            info[b"length"], info[b"piece length"], block_size
        )
        announce = top.get(b"announce", b"sim://tracker").decode("utf-8")
        return cls(info[b"name"].decode("utf-8"), geometry, hashes, announce)

    def __repr__(self) -> str:
        return "Metainfo(%r, %s)" % (self.name, self.geometry)


def make_metainfo(
    name: str,
    num_pieces: int,
    piece_size: int = DEFAULT_PIECE_SIZE,
    block_size: int = DEFAULT_BLOCK_SIZE,
    announce: str = "sim://tracker",
    last_piece_size: Optional[int] = None,
) -> Metainfo:
    """Convenience builder specifying the piece count directly.

    ``last_piece_size`` lets tests exercise a short final piece.
    """
    if num_pieces <= 0:
        raise ValueError("num_pieces must be positive")
    if last_piece_size is None:
        last_piece_size = piece_size
    if not 0 < last_piece_size <= piece_size:
        raise ValueError("last_piece_size must be in (0, piece_size]")
    total = (num_pieces - 1) * piece_size + last_piece_size
    return Metainfo.synthetic(name, total, piece_size, block_size, announce)
