"""Peer identifiers and the paper's peer-identification rule.

A BitTorrent peer ID is 20 bytes: an Azureus-style client prefix
(``-XX1234-`` style) or, for the mainline client the paper instruments, a
prefix like ``M4-0-2--`` followed by random bytes.  The random part is
regenerated on every client restart, so the paper identifies a peer by the
pair (IP address, client ID) — see section III-D — and relies on the
mainline rule that two concurrent connections from the same IP are refused.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from random import Random
from typing import Optional

MAINLINE_PREFIX_RE = re.compile(rb"^(M\d+(?:-\d+)*)-")
AZUREUS_PREFIX_RE = re.compile(rb"^-([A-Za-z]{2}[0-9A-Za-z]{4})-")

_RANDOM_ALPHABET = b"0123456789abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class PeerId:
    """A 20-byte peer ID plus its parsed client identity."""

    raw: bytes
    client_id: str

    def __post_init__(self) -> None:
        if len(self.raw) != 20:
            raise ValueError("peer IDs must be exactly 20 bytes")


def make_peer_id(client_id: str, rng: Random) -> PeerId:
    """Generate a peer ID for *client_id* (e.g. ``"M4-0-2"``, ``"-AZ2504"``).

    The random suffix mimics a client restart: calling this again with the
    same ``client_id`` yields a different 20-byte ID but the same parsed
    client identity.
    """
    prefix = client_id.encode("ascii")
    if not prefix.endswith(b"-"):
        prefix += b"-"
    if len(prefix) >= 20:
        raise ValueError("client id %r too long for a 20-byte peer id" % client_id)
    suffix = bytes(rng.choice(_RANDOM_ALPHABET) for _ in range(20 - len(prefix)))
    raw = prefix + suffix
    return PeerId(raw=raw, client_id=parse_client_id(raw) or client_id)


def parse_client_id(raw: bytes) -> Optional[str]:
    """Extract the client ID string from a raw peer ID, if recognisable.

    >>> parse_client_id(b"M4-0-2--abcdefghijkl")
    'M4-0-2'
    >>> parse_client_id(b"-AZ2504-abcdefghijkl")
    '-AZ2504'
    """
    if len(raw) != 20:
        return None
    match = MAINLINE_PREFIX_RE.match(raw)
    if match:
        return match.group(1).decode("ascii")
    match = AZUREUS_PREFIX_RE.match(raw)
    if match:
        return "-" + match.group(1).decode("ascii")
    return None


@dataclass(frozen=True)
class PeerIdentity:
    """The paper's identification key: (IP address, client ID).

    Peer IDs cannot be used alone because the random part changes on every
    restart; IPs cannot be used alone because of NATs.  Section III-D deems
    two observations with the same IP and the same client ID to be the same
    peer.
    """

    ip: str
    client_id: Optional[str]


def identify(ip: str, peer_id_raw: bytes) -> PeerIdentity:
    """Build the identification key for one observed (IP, peer ID) pair."""
    return PeerIdentity(ip=ip, client_id=parse_client_id(peer_id_raw))
