"""Incremental peer-wire stream decoding.

A TCP peer connection delivers an arbitrary byte stream; messages must
be reassembled from the length-prefixed frames of BEP 3 (with the
unframed handshake first).  :class:`MessageStream` is the state machine
a real client (or a packet-level simulator) feeds received bytes into;
it yields complete :class:`~repro.protocol.messages.Message` objects as
they become available and tolerates arbitrary fragmentation.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.protocol.messages import (
    HANDSHAKE_LENGTH,
    Handshake,
    Message,
    MessageError,
    decode_message,
)

MAX_FRAME_LENGTH = 1 << 20  # generous: a 16 kiB block + headers is typical


class MessageStream:
    """Reassembles handshake + messages from a fragmented byte stream.

    >>> stream = MessageStream()
    >>> wire = Handshake(info_hash=b"h"*20, peer_id=b"p"*20).encode()
    >>> stream.feed(wire[:10])   # partial delivery yields nothing yet
    []
    >>> [type(m).__name__ for m in stream.feed(wire[10:])]
    ['Handshake']
    """

    def __init__(self, expect_handshake: bool = True):
        self._buffer = bytearray()
        self._awaiting_handshake = expect_handshake
        self.handshake: Optional[Handshake] = None
        self.bytes_consumed = 0

    def feed(self, data: bytes) -> List[object]:
        """Append *data* and return every message completed by it."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[object]:
        while True:
            if self._awaiting_handshake:
                if len(self._buffer) < HANDSHAKE_LENGTH:
                    return
                raw = bytes(self._buffer[:HANDSHAKE_LENGTH])
                del self._buffer[:HANDSHAKE_LENGTH]
                self.bytes_consumed += HANDSHAKE_LENGTH
                self.handshake = Handshake.decode(raw)
                self._awaiting_handshake = False
                yield self.handshake
                continue
            if len(self._buffer) < 4:
                return
            length = int.from_bytes(self._buffer[:4], "big")
            if length > MAX_FRAME_LENGTH:
                raise MessageError(
                    "frame of %d bytes exceeds the %d-byte limit"
                    % (length, MAX_FRAME_LENGTH)
                )
            total = 4 + length
            if len(self._buffer) < total:
                return
            frame = bytes(self._buffer[:total])
            del self._buffer[:total]
            self.bytes_consumed += total
            yield decode_message(frame)

    @property
    def buffered_bytes(self) -> int:
        """Bytes received but not yet forming a complete frame."""
        return len(self._buffer)


def encode_session(messages: List[Message], handshake: Optional[Handshake] = None) -> bytes:
    """Serialise a whole session's outbound byte stream (tests, traces)."""
    parts = []
    if handshake is not None:
        parts.append(handshake.encode())
    for message in messages:
        parts.append(message.encode())
    return b"".join(parts)
