"""Result rendering: ASCII tables, ASCII charts, CSV export and trace
serialisation for the regenerated figures."""

from repro.reporting.render import ascii_chart, ascii_table, sparkline
from repro.reporting.export import (
    load_trace_summary,
    save_trace_summary,
    series_to_csv,
    table_to_csv,
)

__all__ = [
    "ascii_chart",
    "ascii_table",
    "load_trace_summary",
    "save_trace_summary",
    "series_to_csv",
    "sparkline",
    "table_to_csv",
]
