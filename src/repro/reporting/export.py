"""CSV export of figure series and JSON trace-summary serialisation.

The paper's raw material is the instrumented client's logs; a downstream
user reproducing the analysis offline needs those logs out of the
process.  :func:`save_trace_summary` persists the analysable core of an
:class:`~repro.instrumentation.logger.Instrumentation` (per-peer
intervals, byte totals, arrivals, snapshots) as a single JSON document;
:func:`load_trace_summary` restores an equivalent object the analysis
modules accept.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence, Union

from repro.instrumentation.logger import (
    Instrumentation,
    RemotePeerRecord,
    Snapshot,
    _IntervalTracker,
)

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def series_to_csv(
    columns: dict, path: PathLike = None
) -> str:
    """Write aligned series (name -> sequence) as CSV; returns the text.

    >>> print(series_to_csv({"t": [0, 1], "min": [2, 3]}), end="")
    t,min
    0,2
    1,3
    """
    names = list(columns)
    if not names:
        raise ValueError("no columns")
    lengths = {len(columns[name]) for name in names}
    if len(lengths) != 1:
        raise ValueError("all columns must have the same length")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(names)
    for row in zip(*(columns[name] for name in names)):
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def table_to_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]], path: PathLike = None
) -> str:
    """Write a row-oriented table as CSV; returns the text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def _intervals(tracker: _IntervalTracker) -> list:
    return [list(pair) for pair in tracker.intervals]


def _record_to_dict(record: RemotePeerRecord) -> dict:
    return {
        "address": record.address,
        "client_id": record.client_id,
        "presence": _intervals(record.presence),
        "local_interested_in_remote": _intervals(record.local_interested_in_remote),
        "remote_interested_in_local": _intervals(record.remote_interested_in_local),
        "unchoke_times": list(record.unchoke_times),
        "unchoked_rounds_leecher": record.unchoked_rounds_leecher,
        "unchoked_rounds_seed": record.unchoked_rounds_seed,
        "uploaded_leecher_state": record.uploaded_leecher_state,
        "uploaded_seed_state": record.uploaded_seed_state,
        "downloaded_leecher_state": record.downloaded_leecher_state,
        "downloaded_seed_state": record.downloaded_seed_state,
        "remote_seed_since": record.remote_seed_since,
    }


def _record_from_dict(data: dict) -> RemotePeerRecord:
    record = RemotePeerRecord(address=data["address"], client_id=data["client_id"])
    record.presence.intervals = [tuple(p) for p in data["presence"]]
    record.local_interested_in_remote.intervals = [
        tuple(p) for p in data["local_interested_in_remote"]
    ]
    record.remote_interested_in_local.intervals = [
        tuple(p) for p in data["remote_interested_in_local"]
    ]
    record.unchoke_times = list(data["unchoke_times"])
    record.unchoked_rounds_leecher = data["unchoked_rounds_leecher"]
    record.unchoked_rounds_seed = data["unchoked_rounds_seed"]
    record.uploaded_leecher_state = data["uploaded_leecher_state"]
    record.uploaded_seed_state = data["uploaded_seed_state"]
    record.downloaded_leecher_state = data["downloaded_leecher_state"]
    record.downloaded_seed_state = data["downloaded_seed_state"]
    record.remote_seed_since = data["remote_seed_since"]
    return record


class _FrozenTrace(Instrumentation):
    """A loaded trace: analysis-compatible, detached from any peer."""

    def __init__(self, joined_at: float, finalized_at: float):
        super().__init__()
        self._joined_at = joined_at
        self._finalized_at = finalized_at

    def finalize(self, now=None) -> None:  # already closed on save
        return

    @property
    def _seed_since(self):
        return self.seed_state_at

    @property
    def leecher_interval(self):
        end = self.seed_state_at
        if end is None:
            end = self._finalized_at
        return (self._joined_at, end)

    @property
    def seed_interval(self):
        if self.seed_state_at is None:
            return None
        return (self.seed_state_at, self._finalized_at)


def save_trace_summary(
    instrumentation: Instrumentation, path: PathLike
) -> None:
    """Persist the analysable core of a finalized trace as JSON."""
    instrumentation.finalize()
    start, end = instrumentation.leecher_interval
    seed_interval = instrumentation.seed_interval
    document = {
        "version": FORMAT_VERSION,
        "joined_at": start,
        "finalized_at": (
            seed_interval[1] if seed_interval is not None else end
        ),
        "seed_state_at": instrumentation.seed_state_at,
        "endgame_at": instrumentation.endgame_at,
        "messages_sent": instrumentation.messages_sent,
        "messages_received": instrumentation.messages_received,
        "fault_counters": instrumentation.fault_counters,
        "records": [
            _record_to_dict(record)
            for record in instrumentation.records.values()
        ],
        "block_arrivals": [list(entry) for entry in instrumentation.block_arrivals],
        "piece_completions": [
            list(entry) for entry in instrumentation.piece_completions
        ],
        "choke_rounds": [list(entry) for entry in instrumentation.choke_rounds],
        "snapshots": [vars(snapshot) for snapshot in instrumentation.snapshots],
    }
    Path(path).write_text(json.dumps(document))


def load_trace_summary(path: PathLike) -> Instrumentation:
    """Restore a trace saved by :func:`save_trace_summary`."""
    document = json.loads(Path(path).read_text())
    if document.get("version") != FORMAT_VERSION:
        raise ValueError(
            "unsupported trace version %r" % document.get("version")
        )
    trace = _FrozenTrace(document["joined_at"], document["finalized_at"])
    trace.seed_state_at = document["seed_state_at"]
    trace.endgame_at = document["endgame_at"]
    trace.messages_sent = document["messages_sent"]
    trace.messages_received = document["messages_received"]
    # Key absent in summaries written before the metrics registry.
    trace.fault_counters = document.get("fault_counters", {})
    for entry in document["records"]:
        trace.records[entry["address"]] = _record_from_dict(entry)
    trace.block_arrivals = [tuple(entry) for entry in document["block_arrivals"]]
    trace.piece_completions = [
        tuple(entry) for entry in document["piece_completions"]
    ]
    trace.choke_rounds = [tuple(entry) for entry in document["choke_rounds"]]
    trace.snapshots = [Snapshot(**entry) for entry in document["snapshots"]]
    return trace
