"""Terminal-friendly rendering of tables and time series.

The paper's figures are line plots and scatter plots; in a headless
reproduction the same series are rendered as fixed-width tables, ASCII
charts and sparklines, so every regenerated figure can be eyeballed in a
terminal or a text diff.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align_right: bool = True,
) -> str:
    """A fixed-width table with a separator under the header.

    >>> print(ascii_table(["id", "n"], [[1, 10], [2, 300]]))
    id   n
    -- ---
     1  10
     2 300
    """
    if not headers:
        raise ValueError("need at least one column")
    columns = len(headers)
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(
                "row has %d cells, expected %d" % (len(row), columns)
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(columns)
    ]

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for text, width in zip(cells, widths):
            parts.append(text.rjust(width) if align_right else text.ljust(width))
        return " ".join(parts).rstrip()

    lines = [fmt(list(headers)), " ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line bar rendering of a series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return SPARK_LEVELS[0] * len(values)
    scale = (len(SPARK_LEVELS) - 1) / (high - low)
    return "".join(
        SPARK_LEVELS[int(round((value - low) * scale))] for value in values
    )


def ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 12,
    width: int = 60,
    label: Optional[str] = None,
) -> str:
    """A rough scatter/line chart on a character grid.

    Points are bucketed into ``width`` columns and ``height`` rows; the
    y-axis shows min/max, the x-axis first/last.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if height < 2 or width < 2:
        raise ValueError("height and width must be at least 2")
    if not xs:
        return "(empty series)"
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_low) / x_span * (width - 1))
        row = int((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"
    left_labels = ["%10.4g" % y_high] + ["          "] * (height - 2) + [
        "%10.4g" % y_low
    ]
    lines = []
    if label:
        lines.append(label)
    for prefix, row in zip(left_labels, grid):
        lines.append("%s |%s" % (prefix, "".join(row)))
    lines.append(
        "%s  %s%s" % (" " * 10, ("%-.6g" % x_low).ljust(width - 8), "%.6g" % x_high)
    )
    return "\n".join(lines)
