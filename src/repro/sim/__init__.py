"""Discrete-event BitTorrent swarm simulator.

This package is the substrate the paper's live-torrent experiments run on
in this reproduction.  It provides:

* :mod:`repro.sim.engine` — a deterministic discrete-event loop;
* :mod:`repro.sim.bandwidth` — max–min fair fluid bandwidth allocation;
* :mod:`repro.sim.config` — all protocol constants (defaults match the
  paper's section III-C);
* :mod:`repro.sim.connection` — per-link protocol state;
* :mod:`repro.sim.peer` — a complete BitTorrent client;
* :mod:`repro.sim.swarm` — scenario orchestration;
* :mod:`repro.sim.churn` — arrival/departure processes;
* :mod:`repro.sim.faults` — seeded fault injection (lossy links, peer
  crashes, tracker outages, piece corruption).
"""

from repro.sim.bandwidth import Flow, max_min_allocation
from repro.sim.config import FaultConfig, PeerConfig, SwarmConfig
from repro.sim.connection import Connection
from repro.sim.engine import Simulator, Timer
from repro.sim.faults import FAULT_PRESETS, FaultPlan
from repro.sim.peer import Peer, PeerState
from repro.sim.swarm import Swarm, SwarmResult

__all__ = [
    "Connection",
    "FAULT_PRESETS",
    "FaultConfig",
    "FaultPlan",
    "Flow",
    "max_min_allocation",
    "Peer",
    "PeerConfig",
    "PeerState",
    "Simulator",
    "Swarm",
    "SwarmConfig",
    "SwarmResult",
    "Timer",
]
