"""Max–min fair fluid bandwidth allocation.

The paper's experiments target "peer-to-peer file replication in the
Internet", where peers "are well connected without severe network
bottlenecks" (§I): capacity is constrained by access links (per-peer
upload and download caps), not by the core.  The classical fluid model for
that regime is max–min fairness over the bipartite graph of active
transfers, computed by progressive filling:

1. every unfrozen flow grows at the same rate;
2. the first link (an uploader's or downloader's access capacity) to
   saturate freezes all flows through it;
3. repeat with the remaining capacity until every flow is frozen.

Two implementations share this module:

* :func:`max_min_allocation` — the pure-python reference.  One
  progressive-filling pass per simulation tick over the active flows,
  with per-node degree counters so each pass costs
  O(iterations x (nodes + flows)).
* :func:`max_min_allocation_numpy` — the vectorized path used by large
  swarms.  Same rounds, same arithmetic: each round computes the
  bottleneck share with one elementwise divide + reduction, grows every
  live flow, and charges each node ``increment * live_degree`` exactly
  as the reference does, so the two paths produce **bit-identical**
  rates (every operation is the same IEEE-754 double operation applied
  in an order-insensitive reduction or elementwise).

:func:`resolve_allocator` maps a config string to one of the two (or the
fast approximate :func:`upload_fair_allocation`), falling back to the
reference when numpy is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping

try:  # numpy is an optional dependency; every caller must tolerate None
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

HAVE_NUMPY = _np is not None

NodeId = Hashable


@dataclass
class Flow:
    """One active transfer from ``uploader`` to ``downloader``.

    ``rate`` is filled in by :func:`max_min_allocation` (bytes/second).
    """

    uploader: NodeId
    downloader: NodeId
    rate: float = field(default=0.0, compare=False)


def max_min_allocation(
    flows: List[Flow],
    upload_capacity: Mapping[NodeId, float],
    download_capacity: Mapping[NodeId, float],
    epsilon: float = 1e-9,
) -> None:
    """Assign a max–min fair ``rate`` to every flow, in place.

    ``upload_capacity`` / ``download_capacity`` map node ids to access-link
    capacities in bytes/second.  A missing entry means unconstrained in
    that direction (the paper's local peer has no download cap, §III-C).
    Flows whose uploader has zero capacity get rate 0.
    """
    for flow in flows:
        flow.rate = 0.0
    if not flows:
        return

    # Node bookkeeping: residual capacity, live (unfrozen) degree, and the
    # flow lists, all keyed by ("up"/"down", node).
    residual: Dict[tuple, float] = {}
    degree: Dict[tuple, int] = {}
    node_flows: Dict[tuple, List[int]] = {}
    flow_nodes: List[tuple] = []  # per flow: its constrained node keys
    live: List[bool] = []
    unfrozen_count = 0

    for index, flow in enumerate(flows):
        up_cap = upload_capacity.get(flow.uploader)
        down_cap = download_capacity.get(flow.downloader)
        if (up_cap is not None and up_cap <= epsilon) or (
            down_cap is not None and down_cap <= epsilon
        ):
            live.append(False)
            flow_nodes.append(())
            continue
        live.append(True)
        unfrozen_count += 1
        keys = []
        if up_cap is not None:
            key = ("up", flow.uploader)
            if key not in residual:
                residual[key] = up_cap
                degree[key] = 0
                node_flows[key] = []
            degree[key] += 1
            node_flows[key].append(index)
            keys.append(key)
        if down_cap is not None:
            key = ("down", flow.downloader)
            if key not in residual:
                residual[key] = down_cap
                degree[key] = 0
                node_flows[key] = []
            degree[key] += 1
            node_flows[key].append(index)
            keys.append(key)
        flow_nodes.append(tuple(keys))

    if unfrozen_count == 0:
        return

    while unfrozen_count > 0:
        # Find the bottleneck node: smallest fair share among live nodes.
        bottleneck_share = None
        for key, capacity in residual.items():
            node_degree = degree[key]
            if node_degree == 0:
                continue
            share = capacity / node_degree
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
        if bottleneck_share is None:
            # Every remaining flow is unconstrained in both directions.
            # The model treats these as infinitely fast; callers avoid
            # this by always giving peers finite upload capacity.
            for index, flow in enumerate(flows):
                if live[index]:
                    flow.rate = float("inf")
                    live[index] = False
            break
        increment = bottleneck_share
        # Grow every unfrozen flow and charge each node once for all the
        # live flows through it.  The per-node multiply (instead of one
        # subtraction per flow) is what the vectorized path computes, so
        # both paths see bit-identical residuals.
        for index, flow in enumerate(flows):
            if live[index]:
                flow.rate += increment
        for key, node_degree in degree.items():
            if node_degree:
                residual[key] -= increment * node_degree
        # Freeze flows through saturated nodes.
        froze_any = False
        for key in residual:
            if residual[key] <= epsilon and degree[key] > 0:
                for index in node_flows[key]:
                    if live[index]:
                        live[index] = False
                        froze_any = True
                        unfrozen_count -= 1
                        for other_key in flow_nodes[index]:
                            degree[other_key] -= 1
        if not froze_any:
            # Numerical corner: nothing saturated despite a finite share.
            # Freeze everything at current rates to guarantee termination.
            break


def max_min_allocation_numpy(
    flows: List[Flow],
    upload_capacity: Mapping[NodeId, float],
    download_capacity: Mapping[NodeId, float],
    epsilon: float = 1e-9,
) -> None:
    """Vectorized progressive filling; bit-identical to the reference.

    Unconstrained directions are modelled as infinite-capacity nodes:
    their fair share is always ``inf``, so they never become the
    bottleneck and never saturate — exactly the reference's behaviour of
    leaving them out of the residual map.  When *every* live flow is
    unconstrained on both sides the bottleneck share itself is ``inf``
    and the flows are frozen at infinite rate, mirroring the reference's
    ``bottleneck_share is None`` branch.
    """
    if _np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
        raise RuntimeError("numpy is not available; use max_min_allocation")
    num_flows = len(flows)
    for flow in flows:
        flow.rate = 0.0
    if not flows:
        return

    inf = float("inf")
    # Node tables: one slot per distinct constrained endpoint, plus a
    # shared "unconstrained" slot 0 with infinite capacity.
    node_index: Dict[tuple, int] = {}
    capacities: List[float] = [inf]
    flow_up = _np.zeros(num_flows, dtype=_np.intp)
    flow_down = _np.zeros(num_flows, dtype=_np.intp)
    live = _np.zeros(num_flows, dtype=bool)

    for index, flow in enumerate(flows):
        up_cap = upload_capacity.get(flow.uploader)
        down_cap = download_capacity.get(flow.downloader)
        if (up_cap is not None and up_cap <= epsilon) or (
            down_cap is not None and down_cap <= epsilon
        ):
            continue  # dead flow: rate stays 0, never live
        live[index] = True
        if up_cap is not None:
            key = ("up", flow.uploader)
            slot = node_index.get(key)
            if slot is None:
                slot = node_index[key] = len(capacities)
                capacities.append(up_cap)
            flow_up[index] = slot
        if down_cap is not None:
            key = ("down", flow.downloader)
            slot = node_index.get(key)
            if slot is None:
                slot = node_index[key] = len(capacities)
                capacities.append(down_cap)
            flow_down[index] = slot

    if not live.any():
        return

    num_nodes = len(capacities)
    residual = _np.array(capacities, dtype=_np.float64)
    rates = _np.zeros(num_flows, dtype=_np.float64)

    def live_degree():
        return _np.bincount(
            flow_up[live], minlength=num_nodes
        ) + _np.bincount(flow_down[live], minlength=num_nodes)

    degree = live_degree()
    degree[0] = 0  # the unconstrained slot never constrains anything

    while live.any():
        active_nodes = degree > 0
        if not active_nodes.any():
            rates[live] = inf
            break
        shares = residual[active_nodes] / degree[active_nodes]
        increment = float(shares.min())
        if increment == inf:
            # Only infinite-capacity nodes remain: the reference's
            # "bottleneck_share is None" branch.
            rates[live] = inf
            break
        rates[live] += increment
        residual[active_nodes] -= increment * degree[active_nodes]
        saturated = (residual <= epsilon) & active_nodes
        newly_frozen = live & (saturated[flow_up] | saturated[flow_down])
        if not newly_frozen.any():
            break  # numerical corner, as in the reference
        live &= ~newly_frozen
        degree = live_degree()
        degree[0] = 0

    for index, flow in enumerate(flows):
        flow.rate = float(rates[index])


def upload_fair_allocation(
    flows: List[Flow],
    upload_capacity: Mapping[NodeId, float],
    download_capacity: Mapping[NodeId, float],
) -> None:
    """Fast approximate allocation for upload-constrained swarms.

    Each uploader splits its capacity equally among its active flows;
    each downloader that would exceed its own capacity scales its inbound
    flows down proportionally.  Capacity freed by that scaling is *not*
    redistributed (one pass), which slightly under-uses uploaders feeding
    capped downloaders.  In the paper's regime — 20 kB/s uploads against
    downloads of up to 1500 kB/s — the downloader cap almost never binds,
    and this model is indistinguishable from max–min while costing O(flows).
    """
    per_uploader: Dict[NodeId, int] = {}
    for flow in flows:
        flow.rate = 0.0
        per_uploader[flow.uploader] = per_uploader.get(flow.uploader, 0) + 1
    inbound: Dict[NodeId, float] = {}
    for flow in flows:
        capacity = upload_capacity.get(flow.uploader)
        if capacity is None:
            capacity = float("inf")
        flow.rate = capacity / per_uploader[flow.uploader]
        inbound[flow.downloader] = inbound.get(flow.downloader, 0.0) + flow.rate
    for flow in flows:
        cap = download_capacity.get(flow.downloader)
        if cap is None:
            continue
        total = inbound[flow.downloader]
        if total > cap > 0:
            flow.rate *= cap / total


Allocator = Callable[[List[Flow], Mapping, Mapping], None]

_ALLOCATORS: Dict[str, Allocator] = {
    "reference": max_min_allocation,
    "numpy": max_min_allocation_numpy,
    "upload-fair": upload_fair_allocation,
}


def resolve_allocator(name: str = "auto") -> Allocator:
    """Map an allocator config string to its implementation.

    ``"auto"`` (the default) selects the vectorized max–min path when
    numpy is importable and the reference otherwise — safe because the
    two are bit-identical.  ``"numpy"`` demands the vectorized path and
    raises without numpy; ``"reference"`` and ``"upload-fair"`` name the
    other implementations explicitly.
    """
    if name == "auto":
        return max_min_allocation_numpy if HAVE_NUMPY else max_min_allocation
    if name == "numpy" and not HAVE_NUMPY:
        raise RuntimeError("allocator 'numpy' requested but numpy is not installed")
    try:
        return _ALLOCATORS[name]
    except KeyError:
        raise ValueError(
            "unknown allocator %r (expected auto/reference/numpy/upload-fair)"
            % (name,)
        )


def allocation_summary(flows: List[Flow]) -> Dict[NodeId, float]:
    """Total allocated upload rate per uploader (handy in tests)."""
    totals: Dict[NodeId, float] = {}
    for flow in flows:
        totals[flow.uploader] = totals.get(flow.uploader, 0.0) + flow.rate
    return totals
