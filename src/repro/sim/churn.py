"""Arrival and departure processes.

Real torrents are dynamic: leechers arrive over time (flash crowds at
torrent birth), complete and linger as seeds, sometimes abort before
completion, and a permanent background of misbehaving "noise" peers joins
and leaves within seconds without transferring anything (§IV-A.1 filters
those out of the entropy computation).  This module provides those
processes as composable generators over a :class:`~repro.sim.swarm.Swarm`.
"""

from __future__ import annotations

import dataclasses
from random import Random
from typing import Callable, Optional

from repro.sim.config import PeerConfig
from repro.sim.swarm import Swarm

PeerConfigFactory = Callable[[Random], PeerConfig]


def poisson_arrivals(
    swarm: Swarm,
    rate: float,
    duration: float,
    config_factory: PeerConfigFactory,
    rng: Optional[Random] = None,
    start: float = 0.0,
    kwargs_factory: Optional[Callable[[], dict]] = None,
    **add_peer_kwargs,
) -> int:
    """Schedule Poisson leecher arrivals at *rate* peers/second.

    Returns the number of arrivals scheduled.  Each arrival gets a fresh
    :class:`PeerConfig` from *config_factory*; *kwargs_factory* (when
    given) produces fresh per-peer ``add_peer`` keyword arguments, so
    stateful objects like chokers are never shared between peers.
    """
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    rng = rng or Random(swarm.rng.getrandbits(64))
    count = 0
    # ``start`` may lie before the current simulated clock (e.g. a churn
    # process attached mid-run with start=0): arrivals whose time has
    # already passed are clamped to "now" by schedule_arrival below.
    when = start + rng.expovariate(rate)
    while when < start + duration:
        config = config_factory(rng)
        kwargs = dict(add_peer_kwargs)
        if kwargs_factory is not None:
            kwargs.update(kwargs_factory())
        swarm.schedule_arrival(when - swarm.simulator.now, config=config, **kwargs)
        count += 1
        when += rng.expovariate(rate)
    return count


def flash_crowd(
    swarm: Swarm,
    num_peers: int,
    config_factory: PeerConfigFactory,
    rng: Optional[Random] = None,
    spread: float = 60.0,
    kwargs_factory: Optional[Callable[[], dict]] = None,
    **add_peer_kwargs,
) -> int:
    """Schedule *num_peers* arrivals uniformly inside the first *spread*
    seconds: the torrent-birth flash crowd of [25].  *kwargs_factory*
    produces fresh per-peer ``add_peer`` keyword arguments (selectors,
    chokers) so stateful strategies are never shared."""
    rng = rng or Random(swarm.rng.getrandbits(64))
    for __ in range(num_peers):
        delay = rng.uniform(0.0, spread)
        config = config_factory(rng)
        kwargs = dict(add_peer_kwargs)
        if kwargs_factory is not None:
            kwargs.update(kwargs_factory())
        swarm.schedule_arrival(delay, config=config, **kwargs)
    return num_peers


def open_system_arrivals(
    swarm: Swarm,
    rate: float,
    duration: float,
    config_factory: PeerConfigFactory,
    rng: Optional[Random] = None,
    start: float = 0.0,
    kwargs_factory: Optional[Callable[[], dict]] = None,
    **add_peer_kwargs,
) -> int:
    """Poisson arrivals with departure-on-completion: the open system of
    the fluid models ([26], arXiv 2211.00213).

    Identical to :func:`poisson_arrivals` except every arriving peer's
    ``seeding_time`` is forced to ``0.0`` — it departs the instant it
    becomes a seed, so the swarm never accumulates altruistic seeds and
    stability rests entirely on leecher-to-leecher chunk diversity.
    This is the regime where plain rarest first collapses into the
    one-club / missing-piece syndrome once the arrival rate exceeds the
    initial seed's rare-piece service rate.
    """
    def depart_on_completion(factory_rng: Random) -> PeerConfig:
        return dataclasses.replace(config_factory(factory_rng), seeding_time=0.0)

    return poisson_arrivals(
        swarm,
        rate,
        duration,
        depart_on_completion,
        rng=rng,
        start=start,
        kwargs_factory=kwargs_factory,
        **add_peer_kwargs,
    )


def noise_peers(
    swarm: Swarm,
    count: int,
    duration: float,
    rng: Optional[Random] = None,
    stay: float = 5.0,
) -> int:
    """Schedule *count* short-lived "noise" peers over *duration* seconds.

    Each joins, stays about *stay* seconds (always under the 10-second
    filtering threshold of §IV-A.1) and leaves without transferring:
    their upload capacity is zero and their request pipeline never fills
    because they are gone before any choke round unchokes them.
    """
    rng = rng or Random(swarm.rng.getrandbits(64))
    for __ in range(count):
        when = rng.uniform(0.0, duration)

        def arrive(when=when) -> None:
            config = PeerConfig(upload_capacity=0.0, client_id="-XX0001")
            peer = swarm.add_peer(config=config)
            swarm.simulator.schedule(
                min(stay, max(0.5, rng.uniform(0.5, stay))), peer.leave
            )

        swarm.simulator.schedule(when, arrive)
    return count


def abort_downloads(
    swarm: Swarm,
    probability: float,
    check_interval: float = 300.0,
    rng: Optional[Random] = None,
) -> None:
    """Periodically make each incomplete leecher abort with *probability*.

    Models the impatient-user departures that churn real torrents.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    rng = rng or Random(swarm.rng.getrandbits(64))

    def sweep() -> None:
        for peer in list(swarm.peers.values()):
            if peer.online and not peer.is_seed and rng.random() < probability:
                peer.leave()
        swarm.simulator.schedule(check_interval, sweep)

    swarm.simulator.schedule(check_interval, sweep)
