"""Simulation and peer configuration.

Defaults follow the paper's section III-C (mainline 4.0.2 defaults):

* maximum upload rate of the monitored client: 20 kB/s;
* minimum peer-set size before re-contacting the tracker: 20;
* maximum number of connections the peer may initiate: 40;
* maximum peer-set size: 80;
* active peer set (unchoke slots, optimistic included): 4;
* block size: 2**14 bytes;
* pieces downloaded before switching from random to rarest first: 4;
* choke round period: 10 s, optimistic unchoke period: 30 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

KIB = 1024

CHOKE_ROUND_SECONDS = 10.0
OPTIMISTIC_ROUNDS = 3  # one optimistic rotation every 3 choke rounds = 30 s
TRACKER_ANNOUNCE_SECONDS = 30.0 * 60.0
RATE_ESTIMATOR_WINDOW_SECONDS = 20.0


@dataclass
class PeerConfig:
    """Per-peer protocol parameters."""

    upload_capacity: float = 20.0 * KIB
    """Access-link upload capacity in bytes/second (paper default 20 kB/s)."""

    download_capacity: Optional[float] = None
    """Access-link download capacity in bytes/second; None = unconstrained,
    as for the paper's monitored client."""

    max_peer_set: int = 80
    """Maximum peer-set size."""

    min_peer_set: int = 20
    """Low watermark under which the peer re-contacts the tracker."""

    max_initiated: int = 40
    """Maximum number of connections this peer may itself initiate; the
    rest must be inbound, which keeps torrents well interconnected."""

    unchoke_slots: int = 4
    """Active-peer-set size, optimistic unchoke included."""

    random_first_threshold: int = 4
    """Pieces to download with the random-first policy before switching to
    rarest first."""

    request_pipeline_depth: int = 8
    """Maximum outstanding block requests per connection (mainline keeps a
    small buffer of pending requests; §II-C.1)."""

    choke_interval: float = CHOKE_ROUND_SECONDS
    optimistic_rounds: int = OPTIMISTIC_ROUNDS
    rate_window: float = RATE_ESTIMATOR_WINDOW_SECONDS

    endgame_enabled: bool = True
    """Enable end game mode (request every missing block everywhere once
    all blocks have been requested)."""

    strict_priority: bool = True
    """Finish partially-downloaded pieces before starting new ones."""

    use_rarity_index: bool = True
    """Drive piece selection through the picker's incremental rarity
    index (O(rarest bucket) per pick) instead of the naive O(num_pieces)
    availability scan.  Both paths are trace-equivalent given the same
    seed; the naive path exists as the reference baseline for
    equivalence tests and the engine-throughput benchmark."""

    seeding_time: Optional[float] = None
    """How long the peer stays as a seed after completing; None = forever."""

    super_seeding: bool = False
    """Super-seeding mode (the [3] option §IV-A.4 discusses): the seed
    advertises an empty bitfield and reveals pieces one at a time per
    peer, preferring the least-revealed piece, so it serves close to one
    copy of each piece before any duplicates.  Only meaningful on a peer
    that starts as a seed."""

    client_id: str = "M4-0-2"
    """Client identity encoded in the peer ID."""

    playback_rate: Optional[float] = None
    """Media consumption rate in bytes/second for streaming workloads.
    None (default) disables the playback model entirely: no extra state,
    no extra events, byte-identical traces.  When set, the peer runs a
    playback clock against its in-order delivered bytes and reports
    startup delay, rebuffer events and in-order progress through the
    observer's ``on_playback`` hook."""

    playback_startup_pieces: int = 2
    """Contiguous pieces (from index 0) buffered before playback starts
    — the startup threshold behind the startup-delay metric."""

    def __post_init__(self) -> None:
        if self.upload_capacity < 0:
            raise ValueError("upload_capacity must be non-negative")
        if self.download_capacity is not None and self.download_capacity <= 0:
            raise ValueError("download_capacity must be positive or None")
        if not 0 < self.min_peer_set <= self.max_peer_set:
            raise ValueError("need 0 < min_peer_set <= max_peer_set")
        if self.max_initiated <= 0 or self.unchoke_slots <= 0:
            raise ValueError("max_initiated and unchoke_slots must be positive")
        if self.request_pipeline_depth <= 0:
            raise ValueError("request_pipeline_depth must be positive")
        if self.playback_rate is not None and self.playback_rate <= 0:
            raise ValueError("playback_rate must be positive or None")
        if self.playback_startup_pieces < 1:
            raise ValueError("playback_startup_pieces must be >= 1")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection knobs (all off by default).

    A :class:`~repro.sim.swarm.Swarm` given a config whose
    :attr:`enabled` property is False behaves *byte-identically* to one
    given no fault config at all: no extra RNG draws, no extra timers,
    no code-path divergence.  Every injected fault draws from a single
    dedicated fault RNG stream, so runs with the same seed and the same
    fault config are reproducible.
    """

    message_loss_rate: float = 0.0
    """Probability that a peer-wire message is silently dropped in
    flight.  BITFIELD messages are exempt (they ride the handshake,
    which the simulator models as reliable)."""

    message_duplicate_rate: float = 0.0
    """Probability that a delivered message arrives twice.  PIECE
    messages are exempt (the picker already ignores duplicate blocks;
    duplicating them would only distort byte accounting)."""

    extra_jitter: float = 0.0
    """Maximum extra one-way delivery delay in seconds, drawn uniformly
    per message.  Positive jitter breaks per-link FIFO ordering, which
    is exactly the reordering stress it exists to inject."""

    crash_probability: float = 0.0
    """Per-peer probability of an abrupt crash at each crash sweep: the
    peer vanishes with no ``stopped`` announce and no FIN, leaving
    half-open connections its neighbours must reap."""

    crash_interval: float = 60.0
    """Seconds between crash sweeps."""

    tracker_outages: tuple = ()
    """``(start, duration)`` windows (simulated seconds) during which
    every tracker announce fails with
    :class:`~repro.tracker.tracker.TrackerUnavailable`.  With
    :attr:`tracker_replicas` > 1 these windows apply to replica 0 only
    (the established single-tracker contract); use
    :attr:`replica_outages` to down other replicas."""

    tracker_replicas: int = 1
    """Number of outage-independent tracker frontends sharing one swarm
    registry.  1 (default) keeps the plain single
    :class:`~repro.tracker.tracker.Tracker`; >1 swaps in a
    :class:`~repro.tracker.federation.TrackerFederation` whose announce
    walks replicas in fixed tier order, failing over past downed ones."""

    replica_outages: tuple = ()
    """``(replica, start, duration)`` outage windows for individual
    federation replicas.  Requires ``replica < tracker_replicas``."""

    announce_retry_base: float = 5.0
    """First announce-retry delay; doubles per failed attempt."""

    announce_retry_cap: float = 120.0
    """Upper bound on the exponential announce-retry delay."""

    announce_retry_jitter: float = 0.25
    """Fractional jitter applied to each retry delay (+/-)."""

    hash_failure_rate: float = 0.0
    """Probability that a completed piece is corrupted in flight: the
    peer observes a hash failure and re-downloads the piece through the
    existing ``on_hash_failure``/``reset_piece`` path."""

    idle_timeout: float = 120.0
    """Seconds of silence after which a half-open connection (remote
    endpoint dead) is reaped, standing in for TCP keep-alive."""

    request_timeout: float = 60.0
    """Age after which in-flight block requests on a link are considered
    lost and released back to the picker."""

    sweep_interval: float = 20.0
    """Period of each peer's fault sweep (reaping, request timeouts,
    keep-alive state refresh)."""

    def __post_init__(self) -> None:
        for name in ("message_loss_rate", "message_duplicate_rate",
                     "crash_probability", "hash_failure_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError("%s must be in [0, 1]" % name)
        if self.message_loss_rate >= 1.0:
            raise ValueError("message_loss_rate must be < 1 (total loss deadlocks)")
        if self.extra_jitter < 0:
            raise ValueError("extra_jitter must be non-negative")
        for name in ("crash_interval", "announce_retry_base",
                     "announce_retry_cap", "idle_timeout",
                     "request_timeout", "sweep_interval"):
            if getattr(self, name) <= 0:
                raise ValueError("%s must be positive" % name)
        if not 0.0 <= self.announce_retry_jitter < 1.0:
            raise ValueError("announce_retry_jitter must be in [0, 1)")
        for window in self.tracker_outages:
            start, duration = window
            if start < 0 or duration <= 0:
                raise ValueError("outage windows need start >= 0, duration > 0")
        if self.tracker_replicas < 1:
            raise ValueError("tracker_replicas must be >= 1")
        for window in self.replica_outages:
            replica, start, duration = window
            if not 0 <= replica < self.tracker_replicas:
                raise ValueError(
                    "replica_outages index %d outside 0..%d"
                    % (replica, self.tracker_replicas - 1)
                )
            if start < 0 or duration <= 0:
                raise ValueError("outage windows need start >= 0, duration > 0")

    @property
    def enabled(self) -> bool:
        """True when any fault source is actually configured."""
        return bool(
            self.message_loss_rate > 0
            or self.message_duplicate_rate > 0
            or self.extra_jitter > 0
            or self.crash_probability > 0
            or self.hash_failure_rate > 0
            or self.tracker_outages
            or self.tracker_replicas > 1
            or self.replica_outages
        )


@dataclass
class SwarmConfig:
    """Swarm-level simulation parameters."""

    tick_interval: float = 1.0
    """Fluid-model timestep in seconds: bandwidth is reallocated and block
    progress advanced once per tick."""

    tracker_num_want: int = 50
    """Peers returned per tracker announce (paper §II-B)."""

    announce_interval: float = TRACKER_ANNOUNCE_SECONDS

    tracker_sampler: Optional[str] = None
    """Peer-sampling strategy spec for the tracker
    (``"uniform"`` / ``"seed-biased[:seed_fraction=f]"`` /
    ``"rarity-aware[:bias=b]"``; see
    :func:`repro.tracker.sampling.make_sampler`).  None keeps the
    default uniform sampler with zero behaviour change."""

    trace_announces: bool = False
    """Emit per-announce observer events (``on_announce``) carrying the
    event type, peers returned and swarm occupancy.  Off (default) the
    simulation is byte-identical to a build without the hook."""

    seed: int = 42
    """Root RNG seed; every stochastic choice in a run derives from it."""

    verify_piece_hashes: bool = False
    """When True, peers materialise synthetic piece payloads and SHA-1
    check them on completion (slow; exercised by tests and small demos)."""

    snapshot_interval: float = 10.0
    """Sampling period of instrumentation snapshots (peer-set size,
    piece-replication curves)."""

    connect_latency: float = 0.0
    """Optional delay between deciding to connect and the handshake."""

    message_latency: float = 0.0
    """One-way control-message latency in seconds.  Zero (default) makes
    HAVE/INTERESTED/CHOKE signalling instantaneous — the paper's setting
    of well-connected Internet peers where signalling RTTs are tiny
    compared to the 10 s choke rounds.  A constant positive latency
    preserves per-link FIFO ordering."""

    duration: float = 4000.0
    """Default run length in simulated seconds."""

    faults: Optional[FaultConfig] = None
    """Fault-injection plan; None (default) or a config whose
    ``enabled`` is False leaves the simulation byte-identical to the
    fault-free code path."""

    extra: dict = field(default_factory=dict)
    """Free-form scenario knobs recorded alongside results."""
