"""Per-link protocol state.

Every established link is represented by *two* :class:`Connection`
objects, one per endpoint, cross-linked through :attr:`Connection.twin`.
Each endpoint mutates only its own object; the four protocol booleans
(am_choking / peer_choking / am_interested / peer_interested) therefore
mirror each other across the twins.

A connection also carries the fluid-transfer machinery of the uploading
direction: the queue of blocks the remote requested, and the byte
progress into the head block that the per-tick bandwidth allocation
advances.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.core.rate_estimator import ByteCounter
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import BlockRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.peer import Peer


class Connection:
    """One endpoint's view of a link to ``remote``."""

    __slots__ = (
        "local",
        "remote",
        "twin",
        "remote_bitfield",
        "am_choking",
        "peer_choking",
        "am_interested",
        "peer_interested",
        "initiated_by_local",
        "established_at",
        "closed",
        "upload_queue",
        "upload_progress",
        "uploaded",
        "downloaded",
        "outstanding",
        "request_times",
        "last_message_at",
        "last_unchoked_local",
        "unchokes_given",
    )

    def __init__(
        self,
        local: "Peer",
        remote: "Peer",
        now: float,
        initiated_by_local: bool,
        rate_window: float = 20.0,
    ):
        self.local = local
        self.remote = remote
        self.twin: Optional["Connection"] = None
        self.remote_bitfield = Bitfield(local.metainfo.geometry.num_pieces)
        self.am_choking = True
        self.peer_choking = True
        self.am_interested = False
        self.peer_interested = False
        self.initiated_by_local = initiated_by_local
        self.established_at = now
        self.closed = False
        # Upload direction (local serves remote).
        self.upload_queue: Deque[BlockRef] = deque()
        self.upload_progress = 0.0  # bytes already sent of the head block
        self.uploaded = ByteCounter(rate_window)
        self.downloaded = ByteCounter(rate_window)
        # Download direction (local requests from remote).
        self.outstanding: set = set()  # BlockRefs requested, not yet received
        self.request_times: Dict[BlockRef, float] = {}  # request issue times
        self.last_message_at = now  # last time anything arrived on this link
        # Choke bookkeeping for the seed algorithm and figure 10.
        self.last_unchoked_local: Optional[float] = None
        self.unchokes_given = 0

    # -- transfer helpers --------------------------------------------------

    def queued_upload_bytes(self) -> float:
        """Bytes still to send to satisfy the remote's pending requests."""
        return sum(block.length for block in self.upload_queue) - self.upload_progress

    def has_active_upload(self) -> bool:
        """True when this endpoint is actively serving the remote."""
        return not self.am_choking and bool(self.upload_queue) and not self.closed

    def advance_upload(self, num_bytes: float) -> list:
        """Push *num_bytes* of fluid progress into the upload queue.

        Returns the list of :class:`BlockRef` blocks completed by this
        advance, in service order.
        """
        completed = []
        remaining = num_bytes
        while remaining > 0 and self.upload_queue:
            head = self.upload_queue[0]
            need = head.length - self.upload_progress
            if remaining >= need - 1e-9:
                self.upload_queue.popleft()
                self.upload_progress = 0.0
                remaining -= need
                completed.append(head)
            else:
                self.upload_progress += remaining
                remaining = 0.0
        return completed

    def cancel_queued_block(self, block: BlockRef) -> bool:
        """Remove a block from the upload queue (CANCEL handling).

        Partial progress into a cancelled head block is lost, as partially
        received blocks are discarded by the protocol.
        """
        try:
            index = self.upload_queue.index(block)
        except ValueError:
            return False
        if index == 0:
            self.upload_progress = 0.0
        del self.upload_queue[index]
        return True

    def clear_upload_queue(self) -> None:
        self.upload_queue.clear()
        self.upload_progress = 0.0

    # -- liveness ----------------------------------------------------------

    @property
    def half_open(self) -> bool:
        """True when the remote endpoint is gone (crashed peer) but this
        endpoint has not noticed yet."""
        return not self.closed and (self.twin is None or self.twin.closed)

    # -- identity ----------------------------------------------------------

    @property
    def remote_key(self) -> str:
        return self.remote.address

    def __repr__(self) -> str:
        flags = "".join(
            flag if value else "-"
            for flag, value in (
                ("C", self.am_choking),
                ("c", self.peer_choking),
                ("I", self.am_interested),
                ("i", self.peer_interested),
            )
        )
        return "Connection(%s -> %s, %s)" % (
            self.local.address,
            self.remote.address,
            flags,
        )
