"""Deterministic discrete-event simulation engine.

A :class:`Simulator` keeps a heap of timed events.  Each event is a plain
callable; ties at the same timestamp are broken by insertion order, so a
run is bit-reproducible given the same seed.  :class:`Timer` wraps the
recurring-callback pattern used by choke rounds, tracker announces and
snapshot sampling.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

Callback = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling in the past)."""


def _callback_label(callback: Callback) -> str:
    """A stable per-event-type label for profiling: the callback's
    qualname (``Peer._choke_round``, ``Timer._fire``, ...)."""
    label = getattr(callback, "__qualname__", None)
    if label is None:
        label = type(callback).__name__
    return label


class _Event:
    """Internal heap entry.  Cancellation is a tombstone flag."""

    __slots__ = ("time", "sequence", "callback", "cancelled")

    def __init__(self, time: float, sequence: int, callback: Callback):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Event loop with a simulated clock starting at ``t = 0`` seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_Event] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0
        self.profiler = None
        """Optional :class:`repro.instrumentation.metrics.EngineProfiler`
        (or anything with ``clock()`` and ``observe(label, elapsed,
        queue_depth)``).  Profiling observes wall time only — simulated
        time, event order and RNG draws are untouched."""

    def set_profiler(self, profiler) -> None:
        """Install (or with ``None`` remove) a per-event profiler."""
        self.profiler = profiler

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events executed so far (cancelled tombstones excluded); the
        numerator of the throughput benchmark's events/sec metric."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Run *callback* after *delay* simulated seconds."""
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Run *callback* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%.3f, clock is already at t=%.3f"
                % (time, self._now)
            )
        event = _Event(time, next(self._sequence), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def run_until(self, end_time: float) -> None:
        """Execute events with timestamps ``<= end_time``; clock ends there."""
        if self._running:
            raise SimulationError("run_until is not reentrant")
        self._running = True
        try:
            while self._heap and self._heap[0].time <= end_time:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                self._events_processed += 1
                profiler = self.profiler
                if profiler is None:
                    event.callback()
                else:
                    started = profiler.clock()
                    event.callback()
                    profiler.observe(
                        _callback_label(event.callback),
                        profiler.clock() - started,
                        len(self._heap),
                    )
            self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run(self) -> None:
        """Execute every pending event (use only with finite schedules)."""
        if self._running:
            raise SimulationError("run is not reentrant")
        self._running = True
        try:
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                self._events_processed += 1
                profiler = self.profiler
                if profiler is None:
                    event.callback()
                else:
                    started = profiler.clock()
                    event.callback()
                    profiler.observe(
                        _callback_label(event.callback),
                        profiler.clock() - started,
                        len(self._heap),
                    )
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)


class Timer:
    """A recurring callback with optional phase offset.

    The callback fires first at ``start_at`` (default: one interval from
    now) and then every ``interval`` seconds until :meth:`stop` is called.
    Per-peer timers are given random phases by the swarm so that choke
    rounds across the population do not fire in lockstep.
    """

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callback,
        start_at: Optional[float] = None,
    ):
        if interval <= 0:
            raise ValueError("timer interval must be positive")
        self._simulator = simulator
        self._interval = interval
        self._callback = callback
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        first = simulator.now + interval if start_at is None else start_at
        self._schedule(first)

    def _schedule(self, time: float) -> None:
        self._handle = self._simulator.schedule_at(time, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        # Schedule the next occurrence before running the callback so a
        # callback that raises does not silently kill the timer chain in
        # tests that catch the exception.
        self._schedule(self._simulator.now + self._interval)
        self._callback()

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def interval(self) -> float:
        return self._interval
