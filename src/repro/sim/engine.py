"""Deterministic discrete-event simulation engine.

A :class:`Simulator` keeps a priority queue of timed events.  Each event
is a plain callable; ties at the same timestamp are broken by insertion
order, so a run is bit-reproducible given the same seed.  :class:`Timer`
wraps the recurring-callback pattern used by choke rounds, tracker
announces and snapshot sampling.

Two queue backends implement the same ``(time, sequence)`` total order:

* ``"heap"`` — a single binary heap.  Simple, and fast enough for small
  swarms; pop costs O(log n) over the whole queue.
* ``"wheel"`` — a calendar queue (timer wheel with heap-ordered
  buckets).  Events are bucketed by ``floor(time / bucket_width)``, so
  each push/pop only touches the handful of events in the current
  epoch, not the full horizon.  Because a smaller timestamp can never
  land in a later epoch, draining the minimum epoch's bucket in heap
  order yields *exactly* the same event sequence as the single heap —
  the two backends are interchangeable and trace-equivalent (proven by
  the differential harness in tests/test_trace_equivalence.py).

Both store ``(time, sequence, event)`` tuples so ordering comparisons
run at C speed instead of through a Python ``__lt__``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

Callback = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling in the past)."""


def _callback_label(callback: Callback) -> str:
    """A stable per-event-type label for profiling: the callback's
    qualname (``Peer._choke_round``, ``Timer._fire``, ...)."""
    label = getattr(callback, "__qualname__", None)
    if label is None:
        label = type(callback).__name__
    return label


class _Event:
    """Per-event state.  Cancellation is a tombstone flag; ordering lives
    in the queue tuples, not here."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callback):
        self.time = time
        self.callback = callback
        self.cancelled = False


_Entry = Tuple[float, int, _Event]


class _HeapQueue:
    """One binary heap over all pending entries."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[_Entry] = []

    def push(self, entry: _Entry) -> None:
        heapq.heappush(self._heap, entry)

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop(self) -> _Entry:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self):
        return iter(self._heap)


class _CalendarQueue:
    """Epoch-bucketed calendar queue.

    ``_buckets`` maps an integer epoch (``floor(time / width)``) to a
    heap of entries in that epoch; ``_epochs`` is a heap of bucket keys.
    An epoch key may linger in ``_epochs`` after its bucket drains; such
    stale keys are skipped lazily in :meth:`peek_time`.
    """

    __slots__ = ("_width", "_buckets", "_epochs", "_size")

    def __init__(self, width: float = 0.25) -> None:
        if width <= 0:
            raise ValueError("bucket width must be positive")
        self._width = width
        self._buckets: Dict[int, List[_Entry]] = {}
        self._epochs: List[int] = []
        self._size = 0

    def push(self, entry: _Entry) -> None:
        epoch = int(entry[0] / self._width)
        bucket = self._buckets.get(epoch)
        if bucket is None:
            self._buckets[epoch] = bucket = []
            heapq.heappush(self._epochs, epoch)
        heapq.heappush(bucket, entry)
        self._size += 1

    def peek_time(self) -> Optional[float]:
        epochs = self._epochs
        buckets = self._buckets
        while epochs:
            bucket = buckets.get(epochs[0])
            if bucket:
                return bucket[0][0]
            # Stale epoch key (bucket drained or never refilled): drop it.
            buckets.pop(heapq.heappop(epochs), None)
        return None

    def pop(self) -> _Entry:
        # Callers peek first, so the head epoch's bucket is non-empty.
        epoch = self._epochs[0]
        bucket = self._buckets[epoch]
        entry = heapq.heappop(bucket)
        self._size -= 1
        if not bucket:
            heapq.heappop(self._epochs)
            del self._buckets[epoch]
        return entry

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        return itertools.chain.from_iterable(self._buckets.values())


EVENT_QUEUES = ("heap", "wheel")


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Event loop with a simulated clock starting at ``t = 0`` seconds.

    ``queue`` selects the backend: ``"heap"`` (default) or ``"wheel"``
    (calendar queue; ``bucket_width`` is its epoch size in simulated
    seconds).  The two produce identical event orders.
    """

    def __init__(self, queue: str = "heap", bucket_width: float = 0.25) -> None:
        if queue == "heap":
            self._queue = _HeapQueue()
        elif queue == "wheel":
            self._queue = _CalendarQueue(bucket_width)
        else:
            raise ValueError(
                "unknown event queue %r (expected one of %s)"
                % (queue, "/".join(EVENT_QUEUES))
            )
        self.queue_kind = queue
        self._now = 0.0
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0
        self.profiler = None
        """Optional :class:`repro.instrumentation.metrics.EngineProfiler`
        (or anything with ``clock()`` and ``observe(label, elapsed,
        queue_depth)``).  Profiling observes wall time only — simulated
        time, event order and RNG draws are untouched."""

    def set_profiler(self, profiler) -> None:
        """Install (or with ``None`` remove) a per-event profiler."""
        self.profiler = profiler

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events executed so far (cancelled tombstones excluded); the
        numerator of the throughput benchmark's events/sec metric."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Run *callback* after *delay* simulated seconds."""
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Run *callback* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%.3f, clock is already at t=%.3f"
                % (time, self._now)
            )
        event = _Event(time, callback)
        self._queue.push((time, next(self._sequence), event))
        return EventHandle(event)

    def run_until(self, end_time: float) -> None:
        """Execute events with timestamps ``<= end_time``; clock ends there."""
        if self._running:
            raise SimulationError("run_until is not reentrant")
        self._running = True
        queue = self._queue
        try:
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                time, _sequence, event = queue.pop()
                if event.cancelled:
                    continue
                self._now = time
                self._events_processed += 1
                profiler = self.profiler
                if profiler is None:
                    event.callback()
                else:
                    started = profiler.clock()
                    event.callback()
                    profiler.observe(
                        _callback_label(event.callback),
                        profiler.clock() - started,
                        len(queue),
                    )
            self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run(self) -> None:
        """Execute every pending event (use only with finite schedules)."""
        if self._running:
            raise SimulationError("run is not reentrant")
        self._running = True
        queue = self._queue
        try:
            while queue.peek_time() is not None:
                time, _sequence, event = queue.pop()
                if event.cancelled:
                    continue
                self._now = time
                self._events_processed += 1
                profiler = self.profiler
                if profiler is None:
                    event.callback()
                else:
                    started = profiler.clock()
                    event.callback()
                    profiler.observe(
                        _callback_label(event.callback),
                        profiler.clock() - started,
                        len(queue),
                    )
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for entry in self._queue if not entry[2].cancelled)


class Timer:
    """A recurring callback with optional phase offset.

    The callback fires first at ``start_at`` (default: one interval from
    now) and then every ``interval`` seconds until :meth:`stop` is called.
    Per-peer timers are given random phases by the swarm so that choke
    rounds across the population do not fire in lockstep.
    """

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callback,
        start_at: Optional[float] = None,
    ):
        if interval <= 0:
            raise ValueError("timer interval must be positive")
        self._simulator = simulator
        self._interval = interval
        self._callback = callback
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        first = simulator.now + interval if start_at is None else start_at
        self._schedule(first)

    def _schedule(self, time: float) -> None:
        self._handle = self._simulator.schedule_at(time, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        # Schedule the next occurrence before running the callback so a
        # callback that raises does not silently kill the timer chain in
        # tests that catch the exception.
        self._schedule(self._simulator.now + self._interval)
        self._callback()

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def interval(self) -> float:
        return self._interval
