"""Seeded, deterministic fault injection.

The paper's measurements come from *live* torrents full of flaky peers:
lossy links, clients that vanish mid-download, trackers that time out,
and pieces that fail their hash check (§III-D filters the resulting
"noise" peers; hash failures are logged events).  This module injects
exactly those faults into a simulated swarm, deterministically:

* a :class:`FaultPlan` is built from a
  :class:`~repro.sim.config.FaultConfig` and one dedicated ``Random``
  stream, so the same seed and config reproduce the same faults;
* per-link message loss/duplication and extra delivery jitter are
  decided in :meth:`FaultPlan.deliveries`, consulted by
  :meth:`repro.sim.peer.Peer._send`;
* abrupt peer crashes (:meth:`repro.sim.peer.Peer.crash`) are driven by
  the swarm's crash sweep through :meth:`FaultPlan.should_crash`;
* tracker outage windows make :meth:`repro.tracker.tracker.Tracker.announce`
  raise :class:`~repro.tracker.tracker.TrackerUnavailable`; peers retry
  with the exponential backoff of :meth:`FaultPlan.retry_delay`;
* piece corruption feeds the existing ``on_hash_failure``/``reset_piece``
  path through :meth:`FaultPlan.should_fail_hash`.

Everything injected is tallied in :attr:`FaultPlan.stats`, the
swarm-wide counterpart of the local-peer counters kept by
:class:`repro.instrumentation.logger.Instrumentation.fault_counters`.
"""

from __future__ import annotations

from collections import Counter
from random import Random
from typing import Dict, List

from repro.protocol.messages import (
    Bitfield as BitfieldMessage,
    Message,
    Piece,
)
from repro.sim.config import FaultConfig


class FaultPlan:
    """Runtime fault decisions for one swarm, from one seeded stream."""

    def __init__(self, config: FaultConfig, rng: Random):
        if not config.enabled:
            raise ValueError("FaultPlan requires an enabled FaultConfig")
        self.config = config
        self._rng = rng
        self.stats: Counter = Counter()

    # -- per-link message faults -------------------------------------------

    @property
    def affects_messages(self) -> bool:
        return bool(
            self.config.message_loss_rate > 0
            or self.config.message_duplicate_rate > 0
            or self.config.extra_jitter > 0
        )

    def deliveries(self, message: Message) -> List[float]:
        """Extra delivery delays for each copy of *message* to deliver.

        An empty list means the message is lost.  ``[0.0]`` is the
        clean single delivery; a second entry is a duplicate.  BITFIELD
        messages are never lost or duplicated (they model the reliable
        handshake); PIECE messages are never duplicated.
        """
        config = self.config
        if isinstance(message, BitfieldMessage):
            return [self._jitter()]
        if config.message_loss_rate > 0 and self._rng.random() < config.message_loss_rate:
            self.stats["messages_dropped"] += 1
            return []
        delays = [self._jitter()]
        if (
            config.message_duplicate_rate > 0
            and not isinstance(message, Piece)
            and self._rng.random() < config.message_duplicate_rate
        ):
            self.stats["messages_duplicated"] += 1
            delays.append(self._jitter())
        return delays

    def _jitter(self) -> float:
        if self.config.extra_jitter <= 0:
            return 0.0
        return self._rng.uniform(0.0, self.config.extra_jitter)

    # -- crashes ------------------------------------------------------------

    def should_crash(self) -> bool:
        """One crash-sweep draw for one online peer."""
        return (
            self.config.crash_probability > 0
            and self._rng.random() < self.config.crash_probability
        )

    # -- tracker outages & announce retry ------------------------------------

    def tracker_down(self, now: float) -> bool:
        for start, duration in self.config.tracker_outages:
            if start <= now < start + duration:
                return True
        return False

    def retry_delay(self, attempt: int, rng: Random) -> float:
        """Exponential backoff with jitter for announce retry *attempt*.

        *rng* is the retrying peer's own stream, so concurrent retries
        across the population do not perturb each other's schedules
        through the shared plan stream.
        """
        config = self.config
        delay = min(config.announce_retry_cap,
                    config.announce_retry_base * (2.0 ** attempt))
        if config.announce_retry_jitter > 0:
            delay *= 1.0 + rng.uniform(
                -config.announce_retry_jitter, config.announce_retry_jitter
            )
        return delay

    # -- piece corruption -----------------------------------------------------

    def should_fail_hash(self) -> bool:
        """One draw per completed piece."""
        if self.config.hash_failure_rate <= 0:
            return False
        if self._rng.random() < self.config.hash_failure_rate:
            self.stats["hash_failures_injected"] += 1
            return True
        return False

    def __repr__(self) -> str:
        return "FaultPlan(%r, %d faults injected)" % (
            self.config, sum(self.stats.values())
        )


# CLI/experiment presets (`repro run --faults light`): "light" is the
# acceptance scenario of a real-world flaky swarm (1-2% loss, one
# tracker outage); "heavy" adds crashes, duplication and corruption.
FAULT_PRESETS: Dict[str, FaultConfig] = {
    "light": FaultConfig(
        message_loss_rate=0.02,
        extra_jitter=0.05,
        hash_failure_rate=0.002,
        tracker_outages=((600.0, 60.0),),
    ),
    "heavy": FaultConfig(
        message_loss_rate=0.05,
        message_duplicate_rate=0.01,
        extra_jitter=0.25,
        crash_probability=0.01,
        crash_interval=120.0,
        hash_failure_rate=0.01,
        tracker_outages=((300.0, 60.0), (1200.0, 120.0)),
    ),
}
