"""Observation hooks for instrumented peers.

The paper instruments a single mainline client and logs "each BitTorrent
message sent or received [...], each state change in the choke algorithm,
[...] the rate estimation used by the choke algorithm, and [...]
important events (end game mode, seed state)" (§III-C).  The simulator
exposes those exact points as callbacks: attach a
:class:`repro.instrumentation.logger.Instrumentation` (or any subclass of
:class:`PeerObserver`) to a peer to record them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.choke import ChokeDecision
    from repro.protocol.messages import Message
    from repro.sim.connection import Connection
    from repro.sim.peer import Peer


class PeerObserver:
    """No-op base class; override the hooks you need."""

    def on_attached(self, peer: "Peer") -> None:
        """Called once when the observer is attached to *peer*."""

    def on_connection_open(self, now: float, connection: "Connection") -> None:
        """A link to a remote peer entered the peer set."""

    def on_connection_close(self, now: float, connection: "Connection") -> None:
        """A link left the peer set (either side closed it)."""

    def on_message_sent(
        self, now: float, connection: "Connection", message: "Message"
    ) -> None:
        """The observed peer sent *message* on *connection*."""

    def on_message_received(
        self, now: float, connection: "Connection", message: "Message"
    ) -> None:
        """The observed peer received *message* on *connection*."""

    def on_choke_round(self, now: float, decision: "ChokeDecision") -> None:
        """A choke round ran; *decision* is the resulting unchoked set."""

    def on_rate_sample(
        self, now: float, connection: "Connection", download_rate: float, upload_rate: float
    ) -> None:
        """Rate-estimator values read by the choke algorithm."""

    def on_block_received(
        self, now: float, connection: "Connection", piece: int, offset: int, length: int
    ) -> None:
        """A block finished downloading."""

    def on_piece_completed(self, now: float, piece: int) -> None:
        """A piece completed (and, when enabled, passed its hash check)."""

    def on_endgame_entered(self, now: float) -> None:
        """The piece picker entered end game mode."""

    def on_seed_state(self, now: float) -> None:
        """The observed peer completed the content and became a seed."""

    def on_hash_failure(self, now: float, piece: int) -> None:
        """A completed piece failed SHA-1 verification."""

    def on_fault(self, now: float, kind: str) -> None:
        """The observed peer hit or recovered from an injected fault.

        ``kind`` is a short counter key: ``"announce_failure"``,
        ``"announce_retry"``, ``"connection_reaped"``,
        ``"stale_requests_reset"``, ``"hash_failure_injected"``, ...
        """
