"""Observation hooks for instrumented peers.

The paper instruments a single mainline client and logs "each BitTorrent
message sent or received [...], each state change in the choke algorithm,
[...] the rate estimation used by the choke algorithm, and [...]
important events (end game mode, seed state)" (§III-C).  The simulator
exposes those exact points as callbacks: attach a
:class:`repro.instrumentation.logger.Instrumentation` (or any subclass of
:class:`PeerObserver`) to a peer to record them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.choke import ChokeDecision
    from repro.instrumentation.logger import Snapshot
    from repro.protocol.messages import Message
    from repro.sim.connection import Connection
    from repro.sim.peer import Peer


class PeerObserver:
    """No-op base class; override the hooks you need."""

    def on_attached(self, peer: "Peer") -> None:
        """Called once when the observer is attached to *peer*."""

    def on_connection_open(self, now: float, connection: "Connection") -> None:
        """A link to a remote peer entered the peer set."""

    def on_connection_close(self, now: float, connection: "Connection") -> None:
        """A link left the peer set (either side closed it)."""

    def on_message_sent(
        self, now: float, connection: "Connection", message: "Message"
    ) -> None:
        """The observed peer sent *message* on *connection*."""

    def on_message_received(
        self, now: float, connection: "Connection", message: "Message"
    ) -> None:
        """The observed peer received *message* on *connection*."""

    def on_choke_round(self, now: float, decision: "ChokeDecision") -> None:
        """A choke round ran; *decision* is the resulting unchoked set."""

    def on_rate_sample(
        self, now: float, connection: "Connection", download_rate: float, upload_rate: float
    ) -> None:
        """Rate-estimator values read by the choke algorithm."""

    def on_block_received(
        self, now: float, connection: "Connection", piece: int, offset: int, length: int
    ) -> None:
        """A block finished downloading."""

    def on_piece_completed(self, now: float, piece: int) -> None:
        """A piece completed (and, when enabled, passed its hash check)."""

    def on_endgame_entered(self, now: float) -> None:
        """The piece picker entered end game mode."""

    def on_seed_state(self, now: float) -> None:
        """The observed peer completed the content and became a seed."""

    def on_hash_failure(self, now: float, piece: int) -> None:
        """A completed piece failed SHA-1 verification."""

    def on_fault(self, now: float, kind: str) -> None:
        """The observed peer hit or recovered from an injected fault.

        ``kind`` is a short counter key: ``"announce_failure"``,
        ``"announce_retry"``, ``"connection_reaped"``,
        ``"stale_requests_reset"``, ``"hash_failure_injected"``, ...
        """

    def on_snapshot(self, now: float, snapshot: "Snapshot") -> None:
        """A periodic sample of the observed peer's view was taken.

        Snapshots are produced by exactly one sampler (the attached
        :class:`~repro.instrumentation.logger.Instrumentation`'s timer)
        and routed through the peer's observer chain, so every observer
        in a :class:`FanoutObserver` sees the *same* snapshot object at
        the same instant — never a re-computed, possibly divergent one.
        """

    def on_playback(self, now: float, kind: str, data: dict) -> None:
        """The peer's playback state machine transitioned (streaming runs
        only — never fires unless ``PeerConfig.playback_rate`` is set).

        ``kind`` is one of ``"progress"`` (the in-order delivered prefix
        advanced), ``"start"`` (startup buffer filled; ``data["delay"]``
        is the startup delay), ``"stall"`` (the player starved — a
        rebuffer event), ``"resume"`` (``data["duration"]`` is the
        rebuffer length) or ``"finish"``.  ``data`` always carries
        ``pieces``/``bytes`` (the in-order prefix) and ``position`` (the
        playback offset in bytes).
        """

    def on_stability(self, now: float, kind: str, data: dict) -> None:
        """The swarm-level stability detector produced an event
        (open-system runs only — never fires unless a
        :class:`~repro.workloads.open_system.StabilityDetector` is
        attached, so closed-system traces are byte-identical).

        ``kind`` is ``"sample"`` (a periodic swarm-size /
        chunk-distribution sample) or ``"finalize"`` (the end-of-run
        summary with the stable/unstable classification).  ``data``
        carries the detector's sample fields (``leechers``, ``seeds``,
        ``rarest_copies``, ``mode_copies``, ``mode_pieces``, ...).
        """

    def on_announce(self, now: float, kind: str, data: dict) -> None:
        """The peer completed a tracker announce (announce-tracing runs
        only — never fires unless ``SwarmConfig.trace_announces`` is
        set, so default traces are byte-identical).

        ``kind`` is the announce event (``"started"``, ``"stopped"``,
        ``"completed"``) or ``"interval"`` for the periodic keep-alive.
        ``data`` carries ``peer`` (the announcing address),
        ``num_want``, ``returned`` (peers handed back) and ``attempt``
        (>0 when the announce succeeded only after outage retries).
        """


class FanoutObserver(PeerObserver):
    """Dispatch every hook to an ordered tuple of observers.

    This is the attachment point for the swarm-wide tracing layer: a
    peer has a single ``observer`` slot, so recording both the classic
    :class:`~repro.instrumentation.logger.Instrumentation` and a
    :class:`~repro.instrumentation.trace.TracingObserver` (or any other
    combination) goes through one fan-out.  Hooks are forwarded in
    construction order; forwarding draws no randomness and schedules no
    events, so wrapping observers in a fan-out never perturbs a seeded
    run.
    """

    __slots__ = ("observers",)

    def __init__(self, *observers: PeerObserver):
        self.observers: Tuple[PeerObserver, ...] = tuple(
            observer for observer in observers if observer is not None
        )

    def __contains__(self, observer: PeerObserver) -> bool:
        return any(member is observer for member in self.observers)

    def on_attached(self, peer: "Peer") -> None:
        for observer in self.observers:
            observer.on_attached(peer)

    def on_connection_open(self, now: float, connection: "Connection") -> None:
        for observer in self.observers:
            observer.on_connection_open(now, connection)

    def on_connection_close(self, now: float, connection: "Connection") -> None:
        for observer in self.observers:
            observer.on_connection_close(now, connection)

    def on_message_sent(
        self, now: float, connection: "Connection", message: "Message"
    ) -> None:
        for observer in self.observers:
            observer.on_message_sent(now, connection, message)

    def on_message_received(
        self, now: float, connection: "Connection", message: "Message"
    ) -> None:
        for observer in self.observers:
            observer.on_message_received(now, connection, message)

    def on_choke_round(self, now: float, decision: "ChokeDecision") -> None:
        for observer in self.observers:
            observer.on_choke_round(now, decision)

    def on_rate_sample(
        self, now: float, connection: "Connection", download_rate: float, upload_rate: float
    ) -> None:
        for observer in self.observers:
            observer.on_rate_sample(now, connection, download_rate, upload_rate)

    def on_block_received(
        self, now: float, connection: "Connection", piece: int, offset: int, length: int
    ) -> None:
        for observer in self.observers:
            observer.on_block_received(now, connection, piece, offset, length)

    def on_piece_completed(self, now: float, piece: int) -> None:
        for observer in self.observers:
            observer.on_piece_completed(now, piece)

    def on_endgame_entered(self, now: float) -> None:
        for observer in self.observers:
            observer.on_endgame_entered(now)

    def on_seed_state(self, now: float) -> None:
        for observer in self.observers:
            observer.on_seed_state(now)

    def on_hash_failure(self, now: float, piece: int) -> None:
        for observer in self.observers:
            observer.on_hash_failure(now, piece)

    def on_fault(self, now: float, kind: str) -> None:
        for observer in self.observers:
            observer.on_fault(now, kind)

    def on_snapshot(self, now: float, snapshot: "Snapshot") -> None:
        for observer in self.observers:
            observer.on_snapshot(now, snapshot)

    def on_playback(self, now: float, kind: str, data: dict) -> None:
        for observer in self.observers:
            observer.on_playback(now, kind, data)

    def on_stability(self, now: float, kind: str, data: dict) -> None:
        for observer in self.observers:
            observer.on_stability(now, kind, data)

    def on_announce(self, now: float, kind: str, data: dict) -> None:
        for observer in self.observers:
            observer.on_announce(now, kind, data)
