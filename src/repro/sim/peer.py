"""A complete BitTorrent client for the simulator.

Each :class:`Peer` runs the full protocol described in the paper's
section II: it maintains a peer set through the tracker, exchanges
BITFIELD/HAVE/INTERESTED messages to keep piece-distribution knowledge
consistent, schedules block requests through a
:class:`repro.core.piece_picker.PiecePicker` (rarest first by default,
with random-first, strict-priority and end-game policies), and runs a
choke round every 10 seconds through pluggable
:class:`repro.core.choke.Choker` strategies — the leecher algorithm and
the new seed-state algorithm by default.

Transfers are fluid: the swarm's per-tick bandwidth allocation calls
:meth:`Peer.advance_uploads`, which turns allocated bytes into completed
blocks and PIECE messages to the downloading side.
"""

from __future__ import annotations

import enum
from random import Random
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.choke import ChokeCandidate, Choker, LeecherChoker, SeedChoker
from repro.core.piece_picker import PiecePicker
from repro.core.rarest_first import PieceSelector, RarestFirstSelector
from repro.protocol.bitfield import Bitfield
from repro.protocol.messages import (
    Bitfield as BitfieldMessage,
    Cancel,
    Choke,
    Have,
    Interested,
    Message,
    NotInterested,
    Piece,
    Request,
    Unchoke,
)
from repro.protocol.metainfo import BlockRef, Metainfo
from repro.protocol.peer_id import PeerId, make_peer_id
from repro.sim.config import PeerConfig
from repro.sim.connection import Connection
from repro.sim.engine import Simulator, Timer
from repro.sim.observer import PeerObserver
from repro.tracker.tracker import TrackerUnavailable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.swarm import Swarm


class PeerState(enum.Enum):
    """Leecher (still downloading) or seed (holds every piece)."""

    LEECHER = "leecher"
    SEED = "seed"


class Peer:
    """One simulated BitTorrent client."""

    def __init__(
        self,
        address: str,
        metainfo: Metainfo,
        config: PeerConfig,
        simulator: Simulator,
        swarm: "Swarm",
        rng: Random,
        selector: Optional[PieceSelector] = None,
        leecher_choker: Optional[Choker] = None,
        seed_choker: Optional[Choker] = None,
        initial_bitfield: Optional[Bitfield] = None,
        observer: Optional[PeerObserver] = None,
    ):
        self.address = address
        self.metainfo = metainfo
        self.config = config
        self.simulator = simulator
        self.swarm = swarm
        self.rng = rng
        self.peer_id: PeerId = make_peer_id(config.client_id, rng)
        num_pieces = metainfo.geometry.num_pieces
        self.bitfield = (
            initial_bitfield.copy() if initial_bitfield else Bitfield(num_pieces)
        )
        self.selector = selector or RarestFirstSelector()
        # Swarm-shared availability matrix (mega-swarm fast path): the
        # picker owns one row of it.  Peers that opt out of the rarity
        # index keep the naive reference path for differential testing.
        matrix = (
            getattr(swarm, "availability_matrix", None)
            if config.use_rarity_index
            else None
        )
        self.picker = PiecePicker(
            metainfo.geometry,
            self.bitfield,
            self.selector,
            rng,
            random_first_threshold=config.random_first_threshold,
            strict_priority=config.strict_priority,
            endgame_enabled=config.endgame_enabled,
            use_rarity_index=config.use_rarity_index,
            matrix=matrix,
        )
        self.leecher_choker = leecher_choker or LeecherChoker(
            optimistic_rounds=config.optimistic_rounds
        )
        self.seed_choker = seed_choker or SeedChoker(slots=config.unchoke_slots)
        # Streaming playback model: only built when configured, so bulk
        # runs carry no extra state, events or trace records.
        if config.playback_rate is not None:
            from repro.sim.playback import PlaybackState

            self.playback: Optional[PlaybackState] = PlaybackState(
                self, config.playback_rate, config.playback_startup_pieces
            )
        else:
            self.playback = None
        if self.playback is not None and hasattr(self.selector, "bind_position"):
            # Playback-aware selectors read this peer's live playback
            # position; selectors must therefore never be shared between
            # peers (use a factory per peer).
            self.selector.bind_position(self.playback.position_piece)
        self.state = (
            PeerState.SEED if self.bitfield.is_complete() else PeerState.LEECHER
        )
        self.observer = observer
        if observer is not None:
            observer.on_attached(self)

        self.connections: Dict[str, Connection] = {}
        self.initiated_count = 0
        self.online = False
        self.joined_at: Optional[float] = None
        self.became_seed_at: Optional[float] = (
            0.0 if self.state is PeerState.SEED else None
        )
        self.total_uploaded = 0.0
        self.total_downloaded = 0.0
        self._materialize = False  # set by swarm when hash checks are enabled
        self._piece_buffers: Dict[int, bytearray] = {}
        # Super-seeding (§IV-A.4): advertise nothing, reveal pieces one
        # at a time per peer, preferring the least-revealed piece.
        self.super_seeding = config.super_seeding and self.bitfield.is_complete()
        self._reveal_counts: List[int] = (
            [0] * num_pieces if self.super_seeding else []
        )
        self._revealed_to: Dict[str, set] = {}
        self._active_reveal: Dict[str, int] = {}
        self._choke_timer: Optional[Timer] = None
        self._announce_timer: Optional[Timer] = None
        self._fault_timer: Optional[Timer] = None
        self._last_refill = -float("inf")
        self._was_in_endgame = False
        self._departure_handle = None

    # ------------------------------------------------------------------
    # identity & state
    # ------------------------------------------------------------------

    @property
    def is_seed(self) -> bool:
        return self.state is PeerState.SEED

    @property
    def choker(self) -> Choker:
        return self.seed_choker if self.is_seed else self.leecher_choker

    @property
    def peer_set_size(self) -> int:
        return len(self.connections)

    def __repr__(self) -> str:
        return "Peer(%s, %s, %d/%d pieces)" % (
            self.address,
            self.state.value,
            self.bitfield.count,
            self.bitfield.num_pieces,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def join(self) -> None:
        """Enter the torrent: announce, build the initial peer set, start
        the choke-round and tracker-announce timers."""
        if self.online:
            raise RuntimeError("%s already joined" % self.address)
        if (
            self.picker.availability_backend == "matrix"
            and self.picker.matrix_slot is None
        ):
            # Rejoining after a clean leave: re-acquire a zeroed row.
            self.picker.attach_matrix(self.swarm.availability_matrix)
        self.online = True
        self.joined_at = self.simulator.now
        self._materialize = self.swarm.config.verify_piece_hashes
        if self.playback is not None and not self.bitfield.is_complete():
            self.playback.on_join(self.joined_at)
        self._announce(
            event="started",
            num_want=self.swarm.config.tracker_num_want,
            connect=True,
        )
        # Stagger choke rounds across the population with a random phase.
        phase = self.rng.uniform(0.0, self.config.choke_interval)
        self._choke_timer = Timer(
            self.simulator,
            self.config.choke_interval,
            self._choke_round,
            start_at=self.simulator.now + phase,
        )
        self._announce_timer = Timer(
            self.simulator,
            self.swarm.config.announce_interval,
            self._periodic_announce,
        )
        plan = self.swarm.faults
        if plan is not None:
            # Stagger fault sweeps too, so the population does not reap
            # and refresh in lockstep.
            sweep = plan.config.sweep_interval
            self._fault_timer = Timer(
                self.simulator,
                sweep,
                self._fault_sweep,
                start_at=self.simulator.now + self.rng.uniform(0.0, sweep),
            )

    def leave(self) -> None:
        """Depart the torrent, closing every connection."""
        if not self.online:
            return
        self.online = False
        self._stop_timers()
        for connection in list(self.connections.values()):
            self._close_connection(connection, notify_remote=True)
        self._announce(event="stopped", num_want=0)
        self.swarm.on_peer_left(self)
        if self.picker.availability_backend == "matrix":
            # Every count was decremented as its connection closed above,
            # so the row is zero: releasing it is lossless.  A crash skips
            # this (and the per-connection decrements), keeping the stale
            # counts a rejoining peer would also see on the list backend.
            self.picker.detach_matrix()

    def crash(self) -> None:
        """Abrupt failure: no ``stopped`` announce, no FIN to remotes.

        Every neighbour is left with a half-open connection that only an
        idle-timeout reap (the fault sweep) can clean up — the behaviour
        of a client that is killed or loses connectivity."""
        if not self.online:
            return
        self.online = False
        self._stop_timers()
        for connection in list(self.connections.values()):
            # Close only the local endpoint; the twin stays open.
            connection.closed = True
            connection.clear_upload_queue()
            self.swarm.forget_upload(connection)
        self.connections.clear()
        self.swarm.on_peer_crashed(self)

    def _stop_timers(self) -> None:
        if self._choke_timer:
            self._choke_timer.stop()
        if self._announce_timer:
            self._announce_timer.stop()
        if self._fault_timer:
            self._fault_timer.stop()
        if self._departure_handle is not None:
            self._departure_handle.cancel()
            self._departure_handle = None

    # ------------------------------------------------------------------
    # tracker announces (with outage retry)
    # ------------------------------------------------------------------

    def _announce(
        self, event: str, num_want: int, connect: bool = False, attempt: int = 0
    ) -> None:
        """Announce to the tracker; retry with exponential backoff when an
        injected outage makes it fail (§II-B behaviour under faults).

        ``connect`` initiates connections to the returned addresses once
        the announce eventually succeeds."""
        now = self.simulator.now
        try:
            # Sample through THIS peer's seeded RNG stream, not the
            # tracker's: with a shared stream every announce perturbs
            # every later peer's sample, so unrelated churn (or net-mode
            # wall-clock announce ordering) ripples into RNG-sensitive
            # runs.  Per-caller streams keep each peer's draws a pure
            # function of its own announce sequence.
            addresses = self.swarm.tracker.announce(
                self.address,
                event=event,
                num_want=num_want,
                is_seed=self.is_seed,
                rng=self.rng,
                have_count=self.bitfield.count,
            )
        except TrackerUnavailable:
            plan = self.swarm.faults
            if plan is None:  # pragma: no cover - outages imply a plan
                raise
            plan.stats["announce_failures"] += 1
            if self.observer:
                self.observer.on_fault(now, "announce_failure")
            if not self.online and event != "stopped":
                return  # departed while waiting; nothing to retry for
            delay = plan.retry_delay(attempt, self.rng)
            plan.stats["announce_retries"] += 1
            if self.observer:
                self.observer.on_fault(now, "announce_retry")
            self.simulator.schedule(
                delay,
                lambda: self._announce(event, num_want, connect, attempt + 1),
            )
            return
        if self.observer and self.swarm.config.trace_announces:
            # Gated: the flag defaults off and this branch is the only
            # cost, keeping default traces byte-identical.
            self.observer.on_announce(
                now,
                event or "interval",
                {
                    "peer": self.address,
                    "num_want": num_want,
                    "returned": len(addresses),
                    "attempt": attempt,
                },
            )
        if connect and self.online:
            for remote_address in addresses:
                self._try_initiate(remote_address)

    def _periodic_announce(self) -> None:
        self._announce(event="", num_want=0)

    # ------------------------------------------------------------------
    # peer-set management
    # ------------------------------------------------------------------

    def _try_initiate(self, remote_address: str) -> bool:
        """Attempt an outgoing connection; honours §II-B's limits.

        With a positive ``connect_latency`` the handshake completes after
        that delay, re-validating every limit at completion time."""
        if not self._may_initiate(remote_address):
            return False
        latency = self.swarm.config.connect_latency
        if latency > 0:
            self.simulator.schedule(
                latency, lambda: self._complete_initiate(remote_address)
            )
            return True
        return self._complete_initiate(remote_address)

    def _may_initiate(self, remote_address: str) -> bool:
        if not self.online:
            return False
        if remote_address == self.address or remote_address in self.connections:
            return False
        if self.peer_set_size >= self.config.max_peer_set:
            return False
        if self.initiated_count >= self.config.max_initiated:
            return False
        return True

    def _complete_initiate(self, remote_address: str) -> bool:
        if not self._may_initiate(remote_address):
            return False
        remote = self.swarm.peer_by_address(remote_address)
        if remote is None or not remote.online:
            return False
        if not remote._accepts_connection_from(self):
            return False
        self._establish(remote, initiated_by_local=True)
        return True

    def _accepts_connection_from(self, initiator: "Peer") -> bool:
        if not self.online:
            return False
        if initiator.address in self.connections:
            return False
        if self.peer_set_size >= self.config.max_peer_set:
            return False
        if self.is_seed and initiator.is_seed:
            return False  # seed-to-seed links are useless and refused
        return True

    def _establish(self, remote: "Peer", initiated_by_local: bool) -> None:
        now = self.simulator.now
        local_conn = Connection(
            self, remote, now, initiated_by_local, self.config.rate_window
        )
        remote_conn = Connection(
            remote, self, now, not initiated_by_local, remote.config.rate_window
        )
        local_conn.twin = remote_conn
        remote_conn.twin = local_conn
        self.connections[remote.address] = local_conn
        remote.connections[self.address] = remote_conn
        if initiated_by_local:
            self.initiated_count += 1
        else:
            remote.initiated_count += 1
        if self.observer:
            self.observer.on_connection_open(now, local_conn)
        if remote.observer:
            remote.observer.on_connection_open(now, remote_conn)
        # Both sides advertise their bitfield right after the handshake.
        self._send(local_conn, BitfieldMessage(bits=self._advertised_bits()))
        remote._send(remote_conn, BitfieldMessage(bits=remote._advertised_bits()))
        if self.super_seeding:
            self._reveal_next(local_conn)
        if remote.super_seeding:
            remote._reveal_next(remote_conn)

    def _advertised_bits(self) -> bytes:
        """The bitfield shown to new peers: empty under super-seeding."""
        if self.super_seeding:
            return Bitfield(self.bitfield.num_pieces).to_bytes()
        return self.bitfield.to_bytes()

    def _reveal_next(self, connection: Connection) -> None:
        """Reveal (HAVE) one more piece to this peer: the globally least
        revealed piece it has not been offered yet."""
        address = connection.remote.address
        revealed = self._revealed_to.setdefault(address, set())
        candidates = [
            piece
            for piece in range(self.bitfield.num_pieces)
            if piece not in revealed
            and not connection.remote_bitfield.has(piece)
        ]
        if not candidates:
            return
        fewest = min(self._reveal_counts[piece] for piece in candidates)
        pool = [
            piece for piece in candidates if self._reveal_counts[piece] == fewest
        ]
        piece = self.rng.choice(pool)
        revealed.add(piece)
        self._reveal_counts[piece] += 1
        self._active_reveal[address] = piece
        self._send(connection, Have(piece=piece))

    def _close_connection(self, connection: Connection, notify_remote: bool) -> None:
        """Tear down our endpoint; optionally tell the remote to do the same."""
        if connection.closed:
            return
        connection.closed = True
        self.connections.pop(connection.remote.address, None)
        if connection.initiated_by_local:
            self.initiated_count -= 1
        self.picker.peer_left(connection.remote_bitfield)
        self.picker.on_peer_gone(connection.remote_key)
        connection.clear_upload_queue()
        connection.outstanding.clear()
        connection.request_times.clear()
        self.swarm.forget_upload(connection)
        if self.super_seeding:
            # Reveals to a departed peer are wasted ("seed wastage") but
            # their reveal counts stand: the piece was served or not.
            self._revealed_to.pop(connection.remote.address, None)
            self._active_reveal.pop(connection.remote.address, None)
        if self.observer:
            self.observer.on_connection_close(self.simulator.now, connection)
        if notify_remote and connection.twin is not None:
            connection.remote._on_remote_closed(connection.twin)
        if self.online:
            self._maybe_refill_peer_set()

    def _on_remote_closed(self, connection: Connection) -> None:
        self._close_connection(connection, notify_remote=False)

    def _maybe_refill_peer_set(self) -> None:
        """Re-contact the tracker when the peer set falls below the
        low watermark (default 20, §II-B)."""
        if self.peer_set_size >= self.config.min_peer_set:
            return
        now = self.simulator.now
        if now - self._last_refill < 30.0:
            return  # rate-limit tracker refills
        self._last_refill = now
        self._announce(
            event="",
            num_want=self.swarm.config.tracker_num_want,
            connect=True,
        )

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    def _send(self, connection: Connection, message: Message) -> None:
        if connection.closed:
            return
        if self.observer:
            self.observer.on_message_sent(self.simulator.now, connection, message)
        remote = connection.remote
        twin = connection.twin
        if twin is None or twin.closed:
            # Half-open link (the remote crashed): bytes fall into the
            # void until the fault sweep reaps the connection.
            return
        latency = self.swarm.config.message_latency
        plan = self.swarm.faults
        if plan is not None and plan.affects_messages:
            for extra in plan.deliveries(message):
                delay = latency + extra
                if delay > 0:
                    self.simulator.schedule(
                        delay,
                        lambda: None
                        if twin.closed
                        else remote._receive(twin, message),
                    )
                else:
                    remote._receive(twin, message)
            return
        if latency > 0:
            # Constant latency keeps per-link FIFO order (heap ties break
            # by insertion); delivery is skipped if the link closed.
            self.simulator.schedule(
                latency,
                lambda: None if twin.closed else remote._receive(twin, message),
            )
        else:
            remote._receive(twin, message)

    def _receive(self, connection: Connection, message: Message) -> None:
        if connection.closed:
            return
        connection.last_message_at = self.simulator.now
        if self.observer:
            self.observer.on_message_received(self.simulator.now, connection, message)
        handler = _DISPATCH.get(type(message))
        if handler is not None:
            handler(self, connection, message)

    def _handle_interested(self, connection: Connection, message: Message) -> None:
        connection.peer_interested = True

    def _handle_not_interested(self, connection: Connection, message: Message) -> None:
        connection.peer_interested = False

    # -- piece-knowledge messages -----------------------------------------

    def _handle_bitfield(self, connection: Connection, message: BitfieldMessage) -> None:
        incoming = Bitfield.from_bytes(message.bits, self.bitfield.num_pieces)
        # The bitfield replaces anything previously known on this link.
        self.picker.peer_left(connection.remote_bitfield)
        connection.remote_bitfield = incoming
        self.picker.peer_joined(incoming)
        self._update_interest(connection)

    def _handle_have(self, connection: Connection, message: Have) -> None:
        if connection.remote_bitfield.set(message.piece):
            self.picker.remote_has(message.piece)
        if (
            self.super_seeding
            and self._active_reveal.get(connection.remote.address) == message.piece
        ):
            # The peer finished the piece we revealed: offer it the next.
            del self._active_reveal[connection.remote.address]
            self._reveal_next(connection)
        # Fast path: a HAVE can only *add* interest, and only when the
        # announced piece is one the local peer misses.
        if not connection.am_interested:
            if not self.is_seed and not self.bitfield.has(message.piece):
                connection.am_interested = True
                self._send(connection, Interested())
        if not connection.peer_choking and connection.am_interested:
            self._fill_pipeline(connection)

    def broadcast_have_fused(self, message: Have) -> None:
        """The HAVE flood, fused: one loop doing exactly what per-link
        ``_send`` + ``_receive`` + ``_handle_have`` + the sender's
        interest recheck do, with the per-message costs hoisted out.

        This is the dominant cost of a large swarm (every completed piece
        touches every neighbour), so the loop body inlines the hot path —
        the same checks in the same order as the reference functions,
        with three deliberate strength reductions that are observably
        identical:

        * the receiver's ``remote_bitfield.set`` is inlined with the
          byte index and mask precomputed once per broadcast;
        * a matrix-backed receiver's availability increment writes the
          matrix cell directly (``remote_has`` in matrix mode is exactly
          that one-cell add);
        * the sender's interest recheck runs only on links whose remote
          holds the completed piece.  Completing a piece can only shrink
          the interesting set, and only by that piece: a link whose
          remote lacks it keeps a non-empty interesting set, so the
          recheck it skips would have been a no-op.

        Only valid under the fused-fan-out preconditions (synchronous,
        lossless delivery): ``_send``'s latency/fault branches are
        elided, not reimplemented.
        """
        piece = message.piece
        now = self.simulator.now
        byte_index = piece >> 3
        bit_mask = 0x80 >> (piece & 7)
        # Sender-side interest recheck support, hoisted: the complement
        # of our bits, our piece count and whether we are (still) a
        # leecher — all constant across the loop, own state only changes
        # afterwards.
        not_ours = ~self.bitfield.as_int()
        own_count = self.bitfield.count
        sender_is_seed = self.is_seed
        observer = self.observer
        seed_state = PeerState.SEED
        # Pair-emit capability, hoisted: when sender and receiver are
        # both observed into the same binary recorder, one call packs
        # the sent+received record pair, bypassing two observer hook
        # invocations per delivery (the bulk of --trace-all overhead).
        pair_emit = None
        shared_recorder = None
        sender_addr = self.address
        if observer is not None:
            shared_recorder = getattr(observer, "recorder", None)
            if shared_recorder is not None:
                pair_emit = getattr(shared_recorder, "emit_have_pair", None)
        for connection in list(self.connections.values()):
            if not connection.closed:
                twin = connection.twin
                twin_open = twin is not None and not twin.closed
                if twin_open:
                    receiver = connection.remote
                    receiver_observer = receiver.observer
                else:
                    receiver = receiver_observer = None
                if (
                    pair_emit is not None
                    and receiver_observer is not None
                    and getattr(receiver_observer, "recorder", None)
                    is shared_recorder
                ):
                    pair_emit(now, sender_addr, receiver.address, piece)
                else:
                    if observer:
                        observer.on_message_sent(now, connection, message)
                    if receiver_observer is not None:
                        receiver_observer.on_message_received(now, twin, message)
                if twin_open:
                    # -- inlined receiver side (_receive + _handle_have) --
                    # ``last_message_at`` is deliberately not refreshed: its
                    # only reader is the fault sweep, and a fault plan
                    # disables the fused path entirely.
                    remote_view = twin.remote_bitfield
                    bits = remote_view._bits
                    if not bits[byte_index] & bit_mask:
                        bits[byte_index] |= bit_mask
                        remote_view._count += 1
                        picker = receiver.picker
                        slot = picker._slot
                        if slot is not None:
                            # Matrix-attached receivers never read a remote
                            # view's ``have_set`` mirror (all matrix-mode
                            # accounting is bit-level), so skip maintaining
                            # it — at swarm scale those set.add calls are a
                            # measurable slice of the flood.
                            picker._matrix.data[slot, piece] += 1
                        else:
                            remote_view._have.add(piece)
                            picker.remote_has(piece)
                    if (
                        receiver.super_seeding
                        and receiver._active_reveal.get(self.address) == piece
                    ):
                        del receiver._active_reveal[self.address]
                        receiver._reveal_next(twin)
                    if not twin.am_interested:
                        if receiver.state is not seed_state and not (
                            receiver.bitfield._bits[byte_index] & bit_mask
                        ):
                            twin.am_interested = True
                            receiver._send(twin, Interested())
                    if not twin.peer_choking and twin.am_interested:
                        receiver._fill_pipeline(twin)
            # -- sender-side interest recheck (the reference loop's tail).
            # A remote holding MORE pieces than we do necessarily holds
            # one we miss, so interest survives and the full bitfield
            # comparison is skipped (count prefilter, exact).
            if connection.am_interested:
                remote_bits = connection.remote_bitfield
                if sender_is_seed:
                    connection.am_interested = False
                    self._send(connection, NotInterested())
                elif remote_bits._count <= own_count and (
                    remote_bits._bits[byte_index] & bit_mask
                ):
                    if not (remote_bits.as_int() & not_ours):
                        connection.am_interested = False
                        self._send(connection, NotInterested())

    # -- choke messages ------------------------------------------------------

    def _handle_choke(self, connection: Connection, message: Message = None) -> None:
        connection.peer_choking = True
        # Everything in flight on this link is lost; give the blocks back
        # to the picker so another peer can serve them.
        self.picker.on_peer_gone(connection.remote_key)
        connection.outstanding.clear()
        connection.request_times.clear()

    def _handle_unchoke(self, connection: Connection, message: Message = None) -> None:
        connection.peer_choking = False
        if connection.am_interested:
            self._fill_pipeline(connection)

    # -- request/piece messages ----------------------------------------------

    def _handle_request(self, connection: Connection, message: Request) -> None:
        if connection.am_choking:
            # Requests received while choking are dropped.  Under message
            # faults the remote may have missed our CHOKE; resend it so
            # its view of the link re-synchronises.
            if self.swarm.faults is not None:
                self._send(connection, Choke())
            return
        if not self.bitfield.has(message.piece):
            return
        if self.super_seeding and message.piece not in self._revealed_to.get(
            connection.remote.address, ()
        ):
            return  # only revealed pieces are served under super-seeding
        block = BlockRef(message.piece, message.offset, message.length)
        if block in connection.upload_queue:
            return
        connection.upload_queue.append(block)
        self.swarm.note_upload_activity(connection)

    def _handle_cancel(self, connection: Connection, message: Cancel) -> None:
        block = BlockRef(message.piece, message.offset, message.length)
        connection.cancel_queued_block(block)

    def _handle_piece(self, connection: Connection, message: Piece) -> None:
        geometry = self.metainfo.geometry
        block_index = message.offset // geometry.block_size
        try:
            block = geometry.block_ref(message.piece, block_index)
        except IndexError:
            return
        connection.outstanding.discard(block)
        connection.request_times.pop(block, None)
        if self.bitfield.has(block.piece):
            return  # late duplicate (end game)
        if self._materialize:
            buffer = self._piece_buffers.setdefault(
                block.piece, bytearray(geometry.piece_length(block.piece))
            )
            buffer[block.offset : block.offset + block.length] = message.data
        completed, cancel_keys = self.picker.on_block_received(
            block, connection.remote_key
        )
        if self.observer:
            self.observer.on_block_received(
                self.simulator.now, connection, block.piece, block.offset, block.length
            )
        # Sorted so the CANCEL send order (and hence any RNG draws made
        # per message) never depends on set iteration order / the
        # process hash seed.
        for key in sorted(cancel_keys):
            other = self.connections.get(key)
            if other is not None:
                other.outstanding.discard(block)
                other.request_times.pop(block, None)
                self._send(
                    other,
                    Cancel(piece=block.piece, offset=block.offset, length=block.length),
                )
        if completed:
            self._on_piece_completed(block.piece)
        if self.picker.in_endgame and not self._was_in_endgame:
            self._was_in_endgame = True
            if self.observer:
                self.observer.on_endgame_entered(self.simulator.now)
        if not connection.peer_choking and connection.am_interested:
            self._fill_pipeline(connection)

    def _on_piece_completed(self, piece: int) -> None:
        now = self.simulator.now
        plan = self.swarm.faults
        if plan is not None and plan.should_fail_hash():
            # Injected corruption: the piece fails its hash check and is
            # re-downloaded, exactly as with a real SHA-1 mismatch.
            if self.observer:
                self.observer.on_hash_failure(now, piece)
                self.observer.on_fault(now, "hash_failure_injected")
            self._piece_buffers.pop(piece, None)
            self.picker.reset_piece(piece)
            return
        if self._materialize:
            data = bytes(self._piece_buffers.pop(piece, b""))
            if not self.metainfo.verify_piece(piece, data):
                if self.observer:
                    self.observer.on_hash_failure(now, piece)
                self.picker.reset_piece(piece)
                return
        if self.observer:
            self.observer.on_piece_completed(now, piece)
        if self.playback is not None:
            self.playback.on_piece_completed(now, piece)
        have = Have(piece=piece)
        # The HAVE flood is the dominant cost of a large swarm; the swarm
        # takes over the fan-out when it can batch the availability
        # updates (synchronous lossless delivery), falling back to the
        # observably-identical per-link loop otherwise.
        if not self.swarm.broadcast_have(self, have):
            for connection in list(self.connections.values()):
                self._send(connection, have)
                # Completing a piece can only *remove* interest; skip the
                # bitfield scan for remotes we were not interested in anyway.
                if connection.am_interested:
                    self._update_interest(connection)
        self.swarm.on_piece_replicated(self, piece)
        if self.bitfield.is_complete():
            self._become_seed()

    # ------------------------------------------------------------------
    # interest management
    # ------------------------------------------------------------------

    def _update_interest(self, connection: Connection) -> None:
        should_be_interested = not self.is_seed and self.bitfield.interesting_in(
            connection.remote_bitfield
        )
        if should_be_interested and not connection.am_interested:
            connection.am_interested = True
            self._send(connection, Interested())
            if not connection.peer_choking:
                self._fill_pipeline(connection)
        elif not should_be_interested and connection.am_interested:
            connection.am_interested = False
            self._send(connection, NotInterested())

    # ------------------------------------------------------------------
    # request pipelining
    # ------------------------------------------------------------------

    def _fill_pipeline(self, connection: Connection) -> None:
        """Keep a small buffer of pending requests on this link (§II-C.1)."""
        depth = self.config.request_pipeline_depth
        next_request = self.picker.next_request
        remote_bitfield = connection.remote_bitfield
        remote_key = connection.remote_key
        now = self.simulator.now  # no sim time passes within one fill
        while (
            not connection.closed
            and connection.am_interested
            and not connection.peer_choking
            and len(connection.outstanding) < depth
        ):
            block = next_request(remote_bitfield, remote_key)
            if block is None:
                break
            connection.outstanding.add(block)
            connection.request_times[block] = now
            self._send(
                connection,
                Request(piece=block.piece, offset=block.offset, length=block.length),
            )

    # ------------------------------------------------------------------
    # uploads (driven by the swarm's fluid tick)
    # ------------------------------------------------------------------

    def advance_uploads(self, connection: Connection, num_bytes: float) -> None:
        """Turn allocated bandwidth into completed blocks on *connection*."""
        if connection.closed or num_bytes <= 0:
            return
        transferable = min(num_bytes, connection.queued_upload_bytes())
        if transferable <= 0:
            return
        now = self.simulator.now
        connection.uploaded.add(now, transferable)
        self.total_uploaded += transferable
        twin = connection.twin
        if twin is not None and not twin.closed:
            twin.downloaded.add(now, transferable)
            connection.remote.total_downloaded += transferable
        for block in connection.advance_upload(transferable):
            data = b""
            if connection.remote._materialize:
                payload = self.metainfo.piece_payload(block.piece)
                data = payload[block.offset : block.offset + block.length]
            self._send(
                connection,
                Piece(piece=block.piece, offset=block.offset, data=data),
            )

    # ------------------------------------------------------------------
    # the choke round
    # ------------------------------------------------------------------

    def _choke_round(self) -> None:
        if not self.online:
            return
        now = self.simulator.now
        candidates: List[ChokeCandidate] = []
        for connection in self.connections.values():
            # Inlined ByteCounter.rate: one estimator expiry + divide,
            # without the two-deep call chain, twice per connection per
            # round across the whole swarm.
            estimator = connection.downloaded._estimator
            estimator._expire(now)
            download_rate = max(0.0, estimator._total) / estimator._window
            estimator = connection.uploaded._estimator
            estimator._expire(now)
            upload_rate = max(0.0, estimator._total) / estimator._window
            if self.observer:
                self.observer.on_rate_sample(
                    now, connection, download_rate, upload_rate
                )
            candidates.append(
                ChokeCandidate(
                    key=connection.remote_key,
                    interested=connection.peer_interested,
                    choked=connection.am_choking,
                    download_rate=download_rate,
                    upload_rate=upload_rate,
                    uploaded_to=connection.uploaded.total,
                    downloaded_from=connection.downloaded.total,
                    last_unchoked=connection.last_unchoked_local,
                )
            )
        decision = self.choker.round(candidates, now, self.rng)
        if self.observer:
            self.observer.on_choke_round(now, decision)
        unchoke_set = set(decision.unchoked)
        for connection in list(self.connections.values()):
            if connection.remote_key in unchoke_set:
                if connection.am_choking:
                    connection.am_choking = False
                    connection.last_unchoked_local = now
                    connection.unchokes_given += 1
                    self._send(connection, Unchoke())
            else:
                if not connection.am_choking:
                    connection.am_choking = True
                    connection.clear_upload_queue()
                    self.swarm.forget_upload(connection)
                    self._send(connection, Choke())

    # ------------------------------------------------------------------
    # fault sweep (only runs when a FaultPlan is installed)
    # ------------------------------------------------------------------

    def _fault_sweep(self) -> None:
        """Periodic resilience pass: reap half-open connections, release
        stale in-flight requests, and refresh link state that a lost
        control message may have desynchronised (keep-alive stand-in)."""
        if not self.online:
            return
        plan = self.swarm.faults
        if plan is None:  # pragma: no cover - timer only exists with a plan
            return
        now = self.simulator.now
        config = plan.config
        for connection in list(self.connections.values()):
            if connection.closed:
                continue
            if (
                connection.half_open
                and now - connection.last_message_at >= config.idle_timeout
            ):
                # The remote endpoint is dead (peer crashed) and the link
                # has been silent past the keep-alive timeout: reap it.
                plan.stats["connections_reaped"] += 1
                if self.observer:
                    self.observer.on_fault(now, "connection_reaped")
                self._close_connection(connection, notify_remote=False)
                continue
            if connection.request_times and any(
                now - issued >= config.request_timeout
                for issued in connection.request_times.values()
            ):
                # Requests (or the PIECE replies) were lost: hand every
                # block on this link back to the picker.  Re-requesting
                # waits for the remote's next UNCHOKE refresh, so a link
                # that is actually choked does not re-pin the blocks.
                plan.stats["stale_requests_reset"] += 1
                if self.observer:
                    self.observer.on_fault(now, "stale_requests_reset")
                self.picker.on_peer_gone(connection.remote_key)
                connection.outstanding.clear()
                connection.request_times.clear()
            if plan.affects_messages:
                self._refresh_link_state(connection)

    def _refresh_link_state(self, connection: Connection) -> None:
        """Resend state a lost control message may have left stale.

        All four resends are idempotent on the receiving side; they fire
        only on links whose observable state looks suspicious, so clean
        links stay quiet."""
        if connection.am_interested and connection.peer_choking:
            # Waiting for an unchoke that may never come because our
            # INTERESTED (or the remote's UNCHOKE) was dropped.
            self._send(connection, Interested())
        elif not connection.am_interested and not connection.peer_choking:
            # The remote is wasting an unchoke slot on us; our
            # NOT-INTERESTED may have been lost.
            self._send(connection, NotInterested())
        if (
            not connection.am_choking
            and connection.peer_interested
            and not connection.upload_queue
        ):
            # Unchoked an interested peer but no requests arrived: the
            # UNCHOKE may have been dropped.
            self._send(connection, Unchoke())

    # ------------------------------------------------------------------
    # seed transition
    # ------------------------------------------------------------------

    def _become_seed(self) -> None:
        if self.state is PeerState.SEED:
            return
        self.state = PeerState.SEED
        now = self.simulator.now
        self.became_seed_at = now
        self.seed_choker.reset()
        if self.observer:
            self.observer.on_seed_state(now)
        self._announce(event="completed", num_want=0)
        # "When a leecher becomes a seed, it closes its connections to all
        # the seeds." (§IV-A.2.b)
        for connection in list(self.connections.values()):
            if connection.remote_bitfield.is_complete():
                self._close_connection(connection, notify_remote=True)
            else:
                # A seed is interested in nobody.
                if connection.am_interested:
                    connection.am_interested = False
                    self._send(connection, NotInterested())
        self.swarm.on_peer_completed(self)
        if self.config.seeding_time is not None:
            self._departure_handle = self.simulator.schedule(
                self.config.seeding_time, self.leave
            )


# Message dispatch for Peer._receive: one dict probe on the concrete
# message class instead of an isinstance chain (message classes are
# final — nothing subclasses them).
_DISPATCH = {
    BitfieldMessage: Peer._handle_bitfield,
    Have: Peer._handle_have,
    Interested: Peer._handle_interested,
    NotInterested: Peer._handle_not_interested,
    Choke: Peer._handle_choke,
    Unchoke: Peer._handle_unchoke,
    Request: Peer._handle_request,
    Cancel: Peer._handle_cancel,
    Piece: Peer._handle_piece,
}
