"""Playback model for streaming/on-demand workloads.

A peer with ``PeerConfig.playback_rate`` set runs a media player
against its *in-order delivered bytes*: the contiguous prefix of pieces
(from index 0) it has completed.  The player

* buffers until ``playback_startup_pieces`` contiguous pieces are held,
  then starts (the **startup delay** metric is that wait, measured from
  join);
* consumes ``playback_rate`` bytes of media per simulated second while
  the buffer lasts;
* **stalls** (a rebuffer event) the instant the playback position
  catches up with the in-order prefix, and resumes on the next in-order
  delivery — rebuffer count and total stall time are the paper-style
  "where rarest first stops being enough" metrics;
* **finishes** when the position reaches the end of the content.

Everything is event-driven and deterministic: state only changes at
piece completions and at exactly-computed stall/finish deadlines
scheduled on the simulator, so runs replay byte-identically.  Stale
deadlines (the buffer grew first) are invalidated by a generation
counter, never by wall-clock comparisons.

State transitions are reported through the peer observer's
``on_playback`` hook, which the tracing layer serialises as gated
``playback`` events — absent entirely (and the trace byte-identical)
when no peer has playback configured.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.peer import Peer


class PlaybackState:
    """Deterministic media-player state machine for one peer."""

    def __init__(self, peer: "Peer", rate: float, startup_pieces: int):
        geometry = peer.metainfo.geometry
        self.peer = peer
        self.rate = float(rate)
        self.num_pieces = geometry.num_pieces
        self.piece_size = geometry.piece_size
        self.total_bytes = geometry.total_size
        self.startup_pieces = min(startup_pieces, geometry.num_pieces)
        self.in_order_pieces = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.stalled = False
        self.stall_started_at: Optional[float] = None
        self.rebuffer_count = 0
        self.rebuffer_seconds = 0.0
        self.position_bytes = 0.0
        self._played_until: Optional[float] = None
        self._deadline_generation = 0
        self._active = False

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def in_order_bytes(self) -> int:
        """Bytes of the contiguous delivered prefix (media-consumable)."""
        return min(self.in_order_pieces * self.piece_size, self.total_bytes)

    def current_position(self, now: float) -> float:
        """Playback offset in bytes at *now* (pure; no state change)."""
        if self.started_at is None:
            return 0.0
        if self.stalled or self.finished_at is not None:
            return self.position_bytes
        elapsed = now - self._played_until
        return min(
            self.position_bytes + elapsed * self.rate, float(self.in_order_bytes)
        )

    def position_piece(self) -> int:
        """The piece index the player needs next — the selectors' urgency
        origin.  Reads the simulator clock so playback-aware selectors
        always see the live position."""
        position = self.current_position(self.peer.simulator.now)
        piece = int(position // self.piece_size)
        if piece >= self.num_pieces:
            piece = self.num_pieces - 1
        return piece

    # ------------------------------------------------------------------
    # event-driven transitions
    # ------------------------------------------------------------------

    def on_join(self, now: float) -> None:
        """Account pieces held before joining; maybe start immediately."""
        if self._active:
            return
        self._active = True
        self._catch_up_in_order()
        self._emit(now, "progress")
        self._maybe_start(now)

    def on_piece_completed(self, now: float, piece: int) -> None:
        """A piece completed; advance the prefix and wake the player."""
        if not self._active or self.finished_at is not None:
            return
        if piece != self.in_order_pieces:
            return  # no in-order progress: the buffer frontier is unmoved
        self._catch_up_in_order()
        self._emit(now, "progress")
        if self.started_at is None:
            self._maybe_start(now)
            return
        if self.stalled:
            duration = now - self.stall_started_at
            self.rebuffer_seconds += duration
            self.stalled = False
            self.stall_started_at = None
            self._played_until = now
            self._emit(now, "resume", duration=duration)
            self._schedule_deadline(now)
        else:
            # The buffer frontier moved: the previously computed stall
            # deadline is stale, push it out.
            self._schedule_deadline(now)

    def _catch_up_in_order(self) -> None:
        bitfield = self.peer.bitfield
        index = self.in_order_pieces
        while index < self.num_pieces and bitfield.has(index):
            index += 1
        self.in_order_pieces = index

    def _maybe_start(self, now: float) -> None:
        if self.started_at is not None:
            return
        if self.in_order_pieces < self.startup_pieces:
            return
        self.started_at = now
        self._played_until = now
        delay = now - (self.peer.joined_at if self.peer.joined_at is not None else now)
        self._emit(now, "start", delay=delay)
        self._schedule_deadline(now)

    # ------------------------------------------------------------------
    # deadlines
    # ------------------------------------------------------------------

    def _schedule_deadline(self, now: float) -> None:
        """Schedule the exactly-computed next stall (or finish) instant."""
        self.position_bytes = self.current_position(now)
        self._played_until = now
        self._deadline_generation += 1
        generation = self._deadline_generation
        if self.in_order_pieces >= self.num_pieces:
            remaining = (self.total_bytes - self.position_bytes) / self.rate
            self.peer.simulator.schedule(
                remaining, lambda: self._on_finish_deadline(generation)
            )
        else:
            headroom = (self.in_order_bytes - self.position_bytes) / self.rate
            self.peer.simulator.schedule(
                headroom, lambda: self._on_stall_deadline(generation)
            )

    def _on_stall_deadline(self, generation: int) -> None:
        if generation != self._deadline_generation:
            return  # superseded: the buffer grew before the player starved
        now = self.peer.simulator.now
        self.position_bytes = float(self.in_order_bytes)
        self._played_until = now
        self.stalled = True
        self.stall_started_at = now
        self.rebuffer_count += 1
        self._emit(now, "stall")

    def _on_finish_deadline(self, generation: int) -> None:
        if generation != self._deadline_generation:
            return
        now = self.peer.simulator.now
        self.position_bytes = float(self.total_bytes)
        self._played_until = now
        self.finished_at = now
        self._emit(now, "finish", elapsed=now - self.started_at)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def _emit(self, now: float, kind: str, **extra) -> None:
        observer = self.peer.observer
        if observer is None:
            return
        data = {
            "pieces": self.in_order_pieces,
            "bytes": self.in_order_bytes,
            "position": self.current_position(now),
        }
        data.update(extra)
        observer.on_playback(now, kind, data)
