"""Swarm orchestration: one torrent, its tracker, and its population.

The :class:`Swarm` owns the event engine, the tracker, the peer registry,
the per-tick fluid bandwidth loop, and the global piece-replication
oracle (used by the :class:`~repro.core.rarest_first.GlobalRarestSelector`
baseline and by transient-state detection — real peers never see it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.choke import Choker
from repro.core.piece_picker import AvailabilityMatrix, HAVE_NUMPY
from repro.core.rarest_first import PieceSelector
from repro.protocol.bitfield import Bitfield
from repro.protocol.messages import Have
from repro.protocol.metainfo import Metainfo
from repro.sim.bandwidth import Flow, resolve_allocator
from repro.sim.config import PeerConfig, SwarmConfig
from repro.sim.connection import Connection
from repro.sim.engine import Simulator, Timer
from repro.sim.faults import FaultPlan
from repro.sim.observer import PeerObserver
from repro.sim.peer import Peer
from repro.tracker.federation import TrackerFederation
from repro.tracker.sampling import make_sampler
from repro.tracker.tracker import Tracker


@dataclass
class SwarmResult:
    """Aggregate outcome of one simulated experiment."""

    duration: float
    completions: Dict[str, float] = field(default_factory=dict)
    """Peer address -> time it became a seed (download completion)."""

    join_times: Dict[str, float] = field(default_factory=dict)
    departures: Dict[str, float] = field(default_factory=dict)
    bytes_uploaded: Dict[str, float] = field(default_factory=dict)
    bytes_downloaded: Dict[str, float] = field(default_factory=dict)
    bytes_moved: float = 0.0
    """Total payload bytes transferred swarm-wide."""

    capacity_seconds: float = 0.0
    """Integral over time of the online peers' upload capacities: the
    denominator of the utilisation metric."""

    first_full_copy_at: Optional[float] = None
    """Time at which every piece had at least 2 copies swarm-wide (the
    initial seed finished pushing the first full copy): end of the
    transient state."""

    def download_time(self, address: str) -> Optional[float]:
        if address not in self.completions or address not in self.join_times:
            return None
        return self.completions[address] - self.join_times[address]

    def mean_download_time(self) -> Optional[float]:
        times = [
            self.download_time(address)
            for address in self.completions
            if self.download_time(address) is not None
        ]
        if not times:
            return None
        return sum(times) / len(times)

    def utilization(self) -> Optional[float]:
        """Fraction of the swarm's aggregate upload capacity actually
        used: the "capacity of service utilization" of [21] that the
        paper credits BitTorrent with keeping high."""
        if self.capacity_seconds <= 0:
            return None
        return self.bytes_moved / self.capacity_seconds


class Swarm:
    """Builds and runs one torrent scenario."""

    def __init__(self, metainfo: Metainfo, config: Optional[SwarmConfig] = None):
        self.metainfo = metainfo
        self.config = config or SwarmConfig()
        extra = self.config.extra
        self.simulator = Simulator(
            queue=extra.get("event_queue", "heap"),
            bucket_width=float(extra.get("bucket_width", 0.25)),
        )
        # Bandwidth allocator selection.  The legacy "bandwidth_model"
        # knob is honoured; otherwise "allocator" picks reference/numpy
        # max-min explicitly, defaulting to "auto" (numpy when available
        # — safe because the two paths are bit-identical).
        allocator = extra.get("allocator")
        if allocator is None:
            allocator = (
                "upload-fair"
                if extra.get("bandwidth_model") == "upload-fair"
                else "auto"
            )
        self._allocate = resolve_allocator(allocator)
        self.rng = Random(self.config.seed)
        # The tracker sampler is None-transparent: no spec builds the
        # same UniformSampler the tracker would default to, so runs
        # without the knob are byte-identical to the pre-knob code.
        sampler = (
            make_sampler(self.config.tracker_sampler)
            if self.config.tracker_sampler is not None
            else None
        )
        replicas = (
            self.config.faults.tracker_replicas
            if self.config.faults is not None
            else 1
        )
        if replicas > 1:
            self.tracker = TrackerFederation(
                Random(self.rng.getrandbits(64)),
                lambda: self.simulator.now,
                replicas=replicas,
                sampler=sampler,
            )
        else:
            self.tracker = Tracker(
                Random(self.rng.getrandbits(64)),
                lambda: self.simulator.now,
                sampler=sampler,
            )
        self.peers: Dict[str, Peer] = {}
        self.result = SwarmResult(duration=0.0)
        self._next_host = 1
        self._upload_candidates: set = set()
        # Flow-set fast path: the candidate set carries a generation
        # counter bumped on every membership change, so a tick whose
        # active flow set did not change reuses the sorted connection
        # list AND the previous allocation without re-keying anything.
        self._members_generation = 0
        self._flows_generation = -1
        self._active_connections: List[Connection] = []
        self._flow_cache: List[Flow] = []
        self._upload_caps: Dict[str, float] = {}
        self._download_caps: Dict[str, float] = {}
        # Global piece-replication oracle over ONLINE peers, with an
        # incremental count of pieces replicated fewer than twice so the
        # first-full-copy test is O(1) per completion, not O(pieces).
        self.global_counts: List[int] = [0] * metainfo.geometry.num_pieces
        self._scarce_pieces = metainfo.geometry.num_pieces
        self._tick_timer = Timer(
            self.simulator,
            self.config.tick_interval,
            self._tick,
            start_at=self.config.tick_interval,
        )
        self._on_tick_callbacks: List[Callable[[float], None]] = []
        # Swarm-wide observation: when set, every peer added WITHOUT an
        # explicit observer gets one from this factory (one observer per
        # peer — observers hold per-peer state).  Used by the tracing
        # layer to cover churn arrivals, which no caller sees directly.
        self.observer_factory: Optional[Callable[[], PeerObserver]] = None
        # Fault injection.  The plan (and its dedicated RNG draw) exists
        # only when faults are actually configured, so a fault-free run
        # is byte-identical whether config.faults is None or disabled.
        self.faults: Optional[FaultPlan] = None
        if self.config.faults is not None and self.config.faults.enabled:
            self.faults = FaultPlan(
                self.config.faults, Random(self.rng.getrandbits(64))
            )
            self.tracker.set_outages(self.config.faults.tracker_outages)
            if self.config.faults.replica_outages:
                if not isinstance(self.tracker, TrackerFederation):
                    raise ValueError(
                        "replica_outages need tracker_replicas > 1"
                    )
                by_replica: Dict[int, list] = {}
                for replica, start, duration in self.config.faults.replica_outages:
                    by_replica.setdefault(replica, []).append((start, duration))
                for replica, windows in by_replica.items():
                    if replica == 0:
                        windows = (
                            list(self.config.faults.tracker_outages) + windows
                        )
                    self.tracker.set_replica_outages(replica, windows)
            if self.config.faults.crash_probability > 0:
                self.simulator.schedule(
                    self.config.faults.crash_interval, self._crash_sweep
                )
        # Shared availability matrix: one int32 row per online peer, so a
        # completed piece's HAVE flood becomes a single vectorized
        # increment over the receivers' rows instead of per-peer python
        # bookkeeping.  "auto" enables it when numpy is importable; the
        # per-peer picker path it replaces is RNG- and trace-identical.
        backend = extra.get("availability_backend", "auto")
        if backend == "matrix" and not HAVE_NUMPY:
            raise RuntimeError(
                "availability_backend 'matrix' requested but numpy is missing"
            )
        use_matrix = backend == "matrix" or (backend == "auto" and HAVE_NUMPY)
        if backend not in ("auto", "matrix", "index", "list"):
            raise ValueError("unknown availability_backend %r" % (backend,))
        self.availability_matrix: Optional[AvailabilityMatrix] = (
            AvailabilityMatrix(metainfo.geometry.num_pieces)
            if use_matrix
            else None
        )
        # Batched HAVE fan-out is only observably identical to per-link
        # sends when delivery is synchronous and lossless: any latency or
        # fault plan forces the reference path.
        self._batched_have = (
            extra.get("have_fanout", "auto") != "unbatched"
            and self.config.message_latency == 0
            and self.faults is None
        )

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------

    def make_address(self) -> str:
        host = self._next_host
        self._next_host += 1
        return "10.%d.%d.%d" % (host >> 16 & 0xFF, host >> 8 & 0xFF, host & 0xFF)

    def add_peer(
        self,
        config: Optional[PeerConfig] = None,
        address: Optional[str] = None,
        selector: Optional[PieceSelector] = None,
        leecher_choker: Optional[Choker] = None,
        seed_choker: Optional[Choker] = None,
        is_seed: bool = False,
        initial_bitfield: Optional[Bitfield] = None,
        observer: Optional[PeerObserver] = None,
        join: bool = True,
    ) -> Peer:
        """Create a peer and (by default) have it join immediately.

        ``is_seed`` gives the peer a full bitfield; ``initial_bitfield``
        overrides it for partially pre-seeded peers (e.g. the "joined
        with almost all pieces" clients of §IV-A.1).
        """
        address = address or self.make_address()
        if address in self.peers:
            raise ValueError("address %s already in use" % address)
        bitfield = initial_bitfield
        if bitfield is None and is_seed:
            bitfield = Bitfield.full(self.metainfo.geometry.num_pieces)
        if observer is None and self.observer_factory is not None:
            observer = self.observer_factory()
        peer = Peer(
            address=address,
            metainfo=self.metainfo,
            config=config or PeerConfig(),
            simulator=self.simulator,
            swarm=self,
            rng=Random(self.rng.getrandbits(64)),
            selector=selector,
            leecher_choker=leecher_choker,
            seed_choker=seed_choker,
            initial_bitfield=bitfield,
            observer=observer,
        )
        self.peers[address] = peer
        self._upload_caps[address] = peer.config.upload_capacity
        if peer.config.download_capacity is not None:
            self._download_caps[address] = peer.config.download_capacity
        if join:
            self.join_peer(peer)
        return peer

    def join_peer(self, peer: Peer) -> None:
        """Bring a created-but-offline peer online."""
        for piece in peer.bitfield.have_indices():
            count = self.global_counts[piece] + 1
            self.global_counts[piece] = count
            if count == 2:
                self._scarce_pieces -= 1
        self.result.join_times[peer.address] = self.simulator.now
        peer.join()

    def schedule_arrival(self, delay: float, **add_peer_kwargs) -> None:
        """Add a peer after *delay* simulated seconds.

        A negative delay — an arrival process whose ``start`` lies before
        the current simulated clock — is clamped to "now" instead of
        tripping the engine's schedule-in-the-past guard, so churn
        generators can be attached to an already-running swarm."""
        self.simulator.schedule(
            max(0.0, delay), lambda: self.add_peer(**add_peer_kwargs)
        )

    def peer_by_address(self, address: str) -> Optional[Peer]:
        return self.peers.get(address)

    # ------------------------------------------------------------------
    # swarm-level callbacks from peers
    # ------------------------------------------------------------------

    def on_piece_replicated(self, peer: Peer, piece: int) -> None:
        count = self.global_counts[piece] + 1
        self.global_counts[piece] = count
        if count == 2:
            self._scarce_pieces -= 1
        if self._scarce_pieces == 0 and self.result.first_full_copy_at is None:
            self.result.first_full_copy_at = self.simulator.now

    def on_peer_completed(self, peer: Peer) -> None:
        self.result.completions[peer.address] = self.simulator.now

    def on_peer_left(self, peer: Peer) -> None:
        for piece in peer.bitfield.have_indices():
            count = self.global_counts[piece] - 1
            self.global_counts[piece] = count
            if count == 1:
                self._scarce_pieces += 1
        self.result.departures[peer.address] = self.simulator.now
        self.result.bytes_uploaded[peer.address] = peer.total_uploaded
        self.result.bytes_downloaded[peer.address] = peer.total_downloaded
        self.peers.pop(peer.address, None)
        # The capacity maps feed the cached bandwidth allocation, so
        # removing an entry must invalidate the cache: a surviving
        # uploader can still hold an active flow towards a *crashed*
        # peer (the half-open link serves into the void until reaped),
        # and its cached rate was computed with the dead peer's download
        # cap.  Without the generation bump that stale rate would persist
        # until some unrelated membership change.
        removed_upload = self._upload_caps.pop(peer.address, None)
        removed_download = self._download_caps.pop(peer.address, None)
        if removed_upload is not None or removed_download is not None:
            self._members_generation += 1

    def on_peer_crashed(self, peer: Peer) -> None:
        """An abrupt (fault-injected) departure: same swarm bookkeeping
        as a clean leave, but the tracker is never told — it keeps
        handing out the dead address until peers fail to connect."""
        if self.faults is not None:
            self.faults.stats["peer_crashes"] += 1
        self.on_peer_left(peer)

    def _crash_sweep(self) -> None:
        """Periodically crash online peers with the plan's probability."""
        plan = self.faults
        if plan is None:  # pragma: no cover - sweep only scheduled with a plan
            return
        for peer in list(self.peers.values()):
            if peer.online and plan.should_crash():
                peer.crash()
        self.simulator.schedule(plan.config.crash_interval, self._crash_sweep)

    # ------------------------------------------------------------------
    # fluid transfer loop
    # ------------------------------------------------------------------

    def note_upload_activity(self, connection: Connection) -> None:
        """A connection may now have something to serve."""
        if (
            connection.has_active_upload()
            and connection not in self._upload_candidates
        ):
            self._upload_candidates.add(connection)
            self._members_generation += 1

    def forget_upload(self, connection: Connection) -> None:
        if connection in self._upload_candidates:
            self._upload_candidates.discard(connection)
            self._members_generation += 1

    def on_tick(self, callback: Callable[[float], None]) -> None:
        """Register an analysis callback invoked after every fluid tick."""
        self._on_tick_callbacks.append(callback)

    # ------------------------------------------------------------------
    # batched HAVE fan-out
    # ------------------------------------------------------------------

    def broadcast_have(self, peer: Peer, message: Have) -> bool:
        """Fan a completed piece's HAVE out to every neighbour of *peer*
        through the fused fast loop (:meth:`Peer.broadcast_have_fused`).

        Returns False when the fast path is ineligible (message latency
        or a fault plan make delivery asynchronous/lossy) and the caller
        must run the reference per-link ``_send`` loop instead.
        """
        if not self._batched_have:
            return False
        peer.broadcast_have_fused(message)
        return True

    def _tick(self) -> None:
        for connection in [
            connection
            for connection in self._upload_candidates
            if not connection.has_active_upload()
        ]:
            self.forget_upload(connection)
        if self._upload_candidates:
            if self._flows_generation != self._members_generation:
                # The active flow set changed since the last allocation:
                # rebuild and re-run the (expensive) fair allocation.
                # Unchanged sets — the common steady-state case — skip
                # straight to advancing transfers at the cached rates,
                # which are a pure function of the flow set and the
                # static per-peer capacities.
                active = sorted(
                    self._upload_candidates,
                    key=lambda c: (c.local.address, c.remote.address),
                )
                flows = [
                    Flow(connection.local.address, connection.remote.address)
                    for connection in active
                ]
                self._allocate(flows, self._upload_caps, self._download_caps)
                self._active_connections = active
                self._flow_cache = flows
                self._flows_generation = self._members_generation
            dt = self.config.tick_interval
            for connection, flow in zip(self._active_connections, self._flow_cache):
                moved = min(flow.rate * dt, connection.queued_upload_bytes())
                connection.local.advance_uploads(connection, flow.rate * dt)
                self.result.bytes_moved += max(0.0, moved)
        else:
            self._active_connections = []
            self._flow_cache = []
            self._flows_generation = self._members_generation
        self.result.capacity_seconds += self.config.tick_interval * sum(
            self._upload_caps.values()
        )
        now = self.simulator.now
        for callback in self._on_tick_callbacks:
            callback(now)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, duration: Optional[float] = None) -> SwarmResult:
        """Advance the simulation by *duration* seconds (cumulative)."""
        duration = self.config.duration if duration is None else duration
        self.simulator.run_until(self.simulator.now + duration)
        self.result.duration = self.simulator.now
        for address, peer in self.peers.items():
            self.result.bytes_uploaded[address] = peer.total_uploaded
            self.result.bytes_downloaded[address] = peer.total_downloaded
        return self.result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def seeds_and_leechers(self) -> Tuple[int, int]:
        seeds = sum(1 for peer in self.peers.values() if peer.is_seed)
        return seeds, len(self.peers) - seeds

    def min_global_copies(self) -> int:
        """Copies of the least replicated piece across the whole torrent."""
        return min(self.global_counts) if self.global_counts else 0

    def is_transient(self) -> bool:
        """True while some piece exists on at most one peer: the paper's
        transient state (rare pieces present only at the initial seed)."""
        return self.min_global_copies() <= 1

    def availability_snapshot(self) -> Sequence[int]:
        return tuple(self.global_counts)
