"""The simulated tracker."""

from repro.tracker.tracker import Tracker, TrackerStats

__all__ = ["Tracker", "TrackerStats"]
