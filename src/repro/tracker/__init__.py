"""The simulated tracker."""

from repro.tracker.tracker import Tracker, TrackerStats, TrackerUnavailable

__all__ = ["Tracker", "TrackerStats", "TrackerUnavailable"]
