"""The tracker tier: in-process, sharded service, wire server, federation.

Layering (bottom up):

* :mod:`repro.tracker.state` — per-infohash swarm registries behind a
  sharded store (deterministic CRC-32 placement, online rebalance).
* :mod:`repro.tracker.sampling` — pluggable peer-sampling strategies
  (``uniform`` / ``seed-biased`` / ``rarity-aware``) drawing from the
  caller's seeded RNG.
* :mod:`repro.tracker.tracker` — the synchronous in-process frontend
  the simulator and live peers call directly.
* :mod:`repro.tracker.service` — the sharded, budget-aware announce
  engine (load shedding) shared by every frontend.
* :mod:`repro.tracker.server` / :mod:`repro.tracker.client` — the
  asyncio HTTP-style + UDP announce server and its async clients.
* :mod:`repro.tracker.federation` — multi-tracker tiers with
  deterministic failover, extending the FaultPlan outage model.
"""

from repro.tracker.sampling import (
    SAMPLER_REGISTRY,
    PeerSampler,
    make_sampler,
    parse_sampler_spec,
)
from repro.tracker.tracker import Tracker, TrackerStats, TrackerUnavailable

__all__ = [
    "Tracker",
    "TrackerStats",
    "TrackerUnavailable",
    "PeerSampler",
    "SAMPLER_REGISTRY",
    "make_sampler",
    "parse_sampler_spec",
]
