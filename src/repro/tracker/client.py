"""Async announce clients for the live tracker tier.

:func:`announce_http` and :func:`announce_udp` speak the two wire
shapes :mod:`repro.tracker.server` serves; both return the decoded
:class:`~repro.tracker.wire.AnnounceResponse`.  A tracker *failure
response* (bencoded ``failure reason``, or a UDP ``error`` action)
raises :class:`~repro.tracker.tracker.TrackerUnavailable`, so callers
see the same exception surface as the in-process tracker.

:class:`FederatedAnnouncer` walks an ordered endpoint tier (BEP 12
announce-list semantics): each announce tries endpoints in tier order,
first answer wins, unreachable or failing endpoints are skipped and
counted.  The walk order is the fixed tier order, so failover is
deterministic given which endpoints are up — the property the
federation conformance tests assert against live servers.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional
from urllib.parse import quote_from_bytes

from repro.tracker.server import (
    UDP_ANNOUNCE,
    UDP_CONNECT,
    UDP_ERROR,
    build_udp_announce,
    build_udp_connect,
)
from repro.tracker.service import AnnounceRequest
from repro.tracker.tracker import TrackerUnavailable
from repro.tracker.wire import AnnounceResponse, decode_announce_response, unpack_peers

DEFAULT_TIMEOUT = 5.0


def build_announce_target(request: AnnounceRequest, listen_port: int) -> str:
    """The HTTP request target (path + query) for one announce."""
    ip, port = request.address.rpartition(":")[0::2]
    params = [
        ("info_hash", quote_from_bytes(request.infohash)),
        ("port", port or str(listen_port)),
        ("ip", ip or "127.0.0.1"),
        ("numwant", str(request.num_want)),
        ("left", "0" if request.is_seed else "1"),
    ]
    if request.event:
        params.append(("event", request.event))
    if request.have_count is not None:
        params.append(("have", str(request.have_count)))
    return "/announce?" + "&".join("%s=%s" % kv for kv in params)


async def announce_http(
    host: str,
    port: int,
    request: AnnounceRequest,
    timeout: float = DEFAULT_TIMEOUT,
) -> AnnounceResponse:
    """One HTTP-style announce; raises on failure responses."""
    listen_port = int(request.address.rpartition(":")[2] or 0)
    target = build_announce_target(request, listen_port)

    async def _roundtrip() -> bytes:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                b"GET %s HTTP/1.0\r\nHost: %s\r\n\r\n"
                % (target.encode("latin-1"), host.encode())
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
        return raw

    raw = await asyncio.wait_for(_roundtrip(), timeout)
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        raise TrackerUnavailable("malformed tracker HTTP response")
    try:
        return decode_announce_response(body)
    except ValueError as exc:
        # decode_announce_response folds bencoded failure reasons into
        # ValueError; surface them as tracker unavailability.
        raise TrackerUnavailable(str(exc)) from exc


class _UdpClientProtocol(asyncio.DatagramProtocol):
    def __init__(self) -> None:
        self.replies: asyncio.Queue = asyncio.Queue()

    def connection_made(self, transport) -> None:
        pass

    def datagram_received(self, data: bytes, addr) -> None:
        self.replies.put_nowait(data)


async def announce_udp(
    host: str,
    port: int,
    request: AnnounceRequest,
    timeout: float = DEFAULT_TIMEOUT,
    transaction_id: int = 0x5EED,
) -> AnnounceResponse:
    """One UDP announce (connect handshake + announce packet)."""
    loop = asyncio.get_event_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        _UdpClientProtocol, remote_addr=(host, port)
    )
    try:
        transport.sendto(build_udp_connect(transaction_id))
        reply = await asyncio.wait_for(protocol.replies.get(), timeout)
        action, tid, connection_id = struct.unpack(">iiq", reply)
        if action != UDP_CONNECT or tid != transaction_id:
            raise TrackerUnavailable("bad UDP connect reply")
        listen_port = int(request.address.rpartition(":")[2] or 0)
        transport.sendto(
            build_udp_announce(
                connection_id, transaction_id + 1, request, listen_port
            )
        )
        reply = await asyncio.wait_for(protocol.replies.get(), timeout)
        action, tid = struct.unpack(">ii", reply[:8])
        if action == UDP_ERROR:
            raise TrackerUnavailable(reply[8:].decode("utf-8", "replace"))
        if action != UDP_ANNOUNCE or tid != transaction_id + 1:
            raise TrackerUnavailable("bad UDP announce reply")
        __, __, interval, leechers, seeds = struct.unpack(">iiiii", reply[:20])
        return AnnounceResponse(
            interval=interval,
            complete=seeds,
            incomplete=leechers,
            peers=unpack_peers(reply[20:]),
        )
    finally:
        transport.close()


@dataclass(frozen=True)
class TrackerEndpoint:
    """One tracker in a federation tier."""

    host: str
    port: int
    scheme: str = "http"
    """``"http"`` or ``"udp"``."""

    def __str__(self) -> str:
        return "%s://%s:%d" % (self.scheme, self.host, self.port)


@dataclass
class FederatedAnnouncer:
    """Walk an ordered tracker tier with deterministic failover."""

    endpoints: List[TrackerEndpoint]
    timeout: float = DEFAULT_TIMEOUT
    served_by: Dict[str, int] = field(default_factory=dict)
    failover_count: int = 0

    async def announce(self, request: AnnounceRequest) -> AnnounceResponse:
        """Try endpoints in tier order; first answer wins.

        Raises :class:`TrackerUnavailable` carrying the last error when
        every endpoint fails.
        """
        last_error: Optional[Exception] = None
        for index, endpoint in enumerate(self.endpoints):
            try:
                if endpoint.scheme == "udp":
                    response = await announce_udp(
                        endpoint.host, endpoint.port, request, self.timeout
                    )
                else:
                    response = await announce_http(
                        endpoint.host, endpoint.port, request, self.timeout
                    )
            except (TrackerUnavailable, OSError, asyncio.TimeoutError) as exc:
                last_error = exc
                continue
            if index > 0:
                self.failover_count += 1
            key = str(endpoint)
            self.served_by[key] = self.served_by.get(key, 0) + 1
            return response
        raise TrackerUnavailable(
            "all %d tracker endpoints failed (last: %s)"
            % (len(self.endpoints), last_error)
        )
