"""Multi-tracker federation with deterministic failover.

Real torrents carry an *announce-list* (BEP 12): an ordered set of
tracker URLs the client walks until one answers.  This module provides
that tier for both deployment shapes:

* :class:`TrackerFederation` — the in-process form the simulator uses.
  N replica *frontends* share one swarm registry (a tracker cluster
  behind independent failure domains); each frontend has its own outage
  windows, wired from the extended
  :class:`~repro.sim.config.FaultConfig` (``tracker_replicas`` +
  ``replica_outages``).  An announce walks replicas in tier order and is
  served by the first one up; only when *every* replica is down does it
  raise :class:`TrackerUnavailable` and the announcing peer falls back
  to its existing retry/backoff fault model.  Failover order is a fixed
  function of the tier list — never of timing — which the determinism
  tests pin.

* the async :class:`repro.tracker.client.FederatedAnnouncer` walks real
  announce servers the same way over the wire.

The federation intentionally exposes the same surface as
:class:`~repro.tracker.tracker.Tracker` (announce/scrape/history/
counters), so ``Swarm.tracker`` can be either without any caller
noticing.
"""

from __future__ import annotations

from random import Random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.tracker.sampling import PeerSampler
from repro.tracker.tracker import Tracker, TrackerStats, TrackerUnavailable


class TrackerFederation:
    """N outage-independent frontends over one shared swarm registry."""

    def __init__(
        self,
        rng: Random,
        clock: Callable[[], float],
        replicas: int = 2,
        sampler: Optional[PeerSampler] = None,
    ):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self._clock = clock
        # One real tracker holds the registry; replica frontends are
        # failure domains in front of it.
        self._backend = Tracker(rng, clock, sampler=sampler)
        self._replica_outages: List[Tuple[Tuple[float, float], ...]] = [
            () for _ in range(replicas)
        ]
        self.replicas = replicas
        self.served_by: List[int] = [0] * replicas
        """Announces served per replica (failover visibility)."""

        self.failover_count = 0
        """Announces that skipped at least one downed replica."""

        self.failed_announce_count = 0

    # -- outage wiring -----------------------------------------------------

    def set_outages(self, outages: Sequence[Tuple[float, float]]) -> None:
        """Outage windows of replica 0 (the FaultConfig.tracker_outages
        contract the single-tracker fault model established)."""
        self.set_replica_outages(0, outages)

    def set_replica_outages(
        self, replica: int, outages: Sequence[Tuple[float, float]]
    ) -> None:
        self._replica_outages[replica] = tuple(
            (float(start), float(duration)) for start, duration in outages
        )

    def replica_down(self, replica: int, now: float) -> bool:
        return any(
            start <= now < start + duration
            for start, duration in self._replica_outages[replica]
        )

    def is_down(self, now: float) -> bool:
        """True only when every replica is inside an outage window."""
        return all(
            self.replica_down(replica, now) for replica in range(self.replicas)
        )

    # -- the Tracker surface ----------------------------------------------

    def announce(
        self,
        address: str,
        event: str,
        num_want: int,
        is_seed: bool,
        rng: Optional[Random] = None,
        have_count: Optional[int] = None,
    ) -> List[str]:
        """Walk replicas in tier order; served by the first one up.

        The walk order is the fixed tier order (0, 1, ..., n-1): which
        replica serves depends only on the outage windows and the
        announce time, so two runs of the same seed fail over
        identically.
        """
        now = self._clock()
        for replica in range(self.replicas):
            if self.replica_down(replica, now):
                continue
            if replica > 0:
                self.failover_count += 1
            self.served_by[replica] += 1
            return self._backend.announce(
                address,
                event=event,
                num_want=num_want,
                is_seed=is_seed,
                rng=rng,
                have_count=have_count,
            )
        self.failed_announce_count += 1
        raise TrackerUnavailable(
            "all %d tracker replicas down at t=%.1f" % (self.replicas, now)
        )

    def scrape(self) -> Tuple[int, int]:
        return self._backend.scrape()

    @property
    def announce_count(self) -> int:
        return self._backend.announce_count

    @property
    def completed_count(self) -> int:
        return self._backend.completed_count

    @property
    def history(self) -> List[TrackerStats]:
        return self._backend.history

    @property
    def num_registered(self) -> int:
        return self._backend.num_registered

    def registered_addresses(self) -> List[str]:
        return self._backend.registered_addresses()

    @property
    def sampler(self) -> Optional[PeerSampler]:
        return self._backend.sampler

    @property
    def state(self):
        return self._backend.state
