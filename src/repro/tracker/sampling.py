"""Pluggable tracker peer-sampling strategies.

Which peers a tracker hands out shapes the overlay the swarm builds on:
the paper's peer-set results (Fig. 5) assume the mainline tracker's
*uniform random* subset, while streaming-policy work (arXiv 1402.2187)
shows that biased sampling changes swarm behaviour.  This module makes
the choice a first-class, serialisable knob, mirroring the
piece-selector registry in :mod:`repro.core.rarest_first`:

``uniform``
    The BEP-3 default: a uniform random subset of the swarm.  O(num_want)
    per announce via index sampling over the dense registry.

``seed-biased[:seed_fraction=0.5]``
    Reserve roughly ``seed_fraction`` of the returned set for seeds
    (when available), the "get newcomers unchoked fast" policy some
    deployed trackers implement.  O(num_want).

``rarity-aware[:bias=1.0]``
    Weight peers by their reported piece count, ``(1 + have) ** bias``:
    positive bias prefers well-provisioned peers (faster first pieces),
    negative bias prefers newcomers (spreads upload demand).  Weighted
    sampling without replacement via Efraimidis–Sampelis keys; O(n log k)
    per announce, for swarms where the bias is worth that cost.

All strategies draw exclusively from the :class:`random.Random` handed
to :meth:`PeerSampler.sample` — the *caller's* seeded stream — so a
peer's sample depends only on its own RNG and the registry content,
never on a shared tracker stream or dict iteration order (the coupling
the in-process tracker historically leaked; see DESIGN.md §15).
"""

from __future__ import annotations

import heapq
from random import Random
from typing import Callable, Dict, List

from repro.tracker.state import SwarmState


class PeerSampler:
    """Strategy interface: pick ``num_want`` peers for a requester."""

    #: Registry key; set by subclasses.
    name = "abstract"

    def sample(
        self,
        state: SwarmState,
        exclude: str,
        num_want: int,
        rng: Random,
    ) -> List[str]:
        raise NotImplementedError

    def spec(self) -> str:
        """Serialised form that :func:`make_sampler` round-trips."""
        return self.name


def _sample_dense(
    order: List[str], exclude: str, num_want: int, rng: Random
) -> List[str]:
    """Uniform subset of a dense address list, requester excluded.

    Draws one extra index so the requester, if drawn, can be dropped
    without a second pass; O(num_want) regardless of swarm size.
    """
    n = len(order)
    if n == 0 or num_want <= 0:
        return []
    take = min(n, num_want + 1)
    picks = rng.sample(range(n), take)
    out = [order[i] for i in picks if order[i] != exclude]
    return out[:num_want]


class UniformSampler(PeerSampler):
    """BEP-3 behaviour: a uniform random subset of the swarm."""

    name = "uniform"

    def sample(self, state, exclude, num_want, rng):
        return _sample_dense(state.all.order, exclude, num_want, rng)


class SeedBiasedSampler(PeerSampler):
    """Reserve a fraction of the returned set for seeds."""

    name = "seed-biased"

    def __init__(self, seed_fraction: float = 0.5):
        if not 0.0 <= seed_fraction <= 1.0:
            raise ValueError("seed_fraction must be in [0, 1]")
        self.seed_fraction = seed_fraction

    def spec(self) -> str:
        return "%s:seed_fraction=%g" % (self.name, self.seed_fraction)

    def sample(self, state, exclude, num_want, rng):
        if num_want <= 0:
            return []
        want_seeds = round(num_want * self.seed_fraction)
        seeds = _sample_dense(state.seeds.order, exclude, want_seeds, rng)
        rest = _sample_dense(
            state.leechers.order, exclude, num_want - len(seeds), rng
        )
        out = seeds + rest
        if len(out) < num_want:
            # One pool ran short: top up from the other, avoiding repeats.
            have = set(out)
            have.add(exclude)
            pool = (
                state.leechers.order
                if len(seeds) < want_seeds
                else state.seeds.order
            )
            extra = [a for a in pool if a not in have]
            missing = num_want - len(out)
            if len(extra) > missing:
                extra = rng.sample(extra, missing)
            out += extra
        return out[:num_want]


class RarityAwareSampler(PeerSampler):
    """Weight peers by reported progress, ``(1 + have_count) ** bias``."""

    name = "rarity-aware"

    def __init__(self, bias: float = 1.0):
        self.bias = bias

    def spec(self) -> str:
        return "%s:bias=%g" % (self.name, self.bias)

    def sample(self, state, exclude, num_want, rng):
        if num_want <= 0 or not state.all.order:
            return []
        # Efraimidis–Sampelis: key = u ** (1/w); the num_want largest
        # keys are a weighted sample without replacement.  One rng draw
        # per candidate, in dense-registry order, so the result is a
        # pure function of (registry, rng state).
        keyed = []
        entries = state.entries
        for address in state.all.order:
            u = rng.random()
            if address == exclude:
                continue
            have = entries[address].have_count or 0
            weight = (1.0 + have) ** self.bias
            keyed.append((u ** (1.0 / weight), address))
        top = heapq.nlargest(num_want, keyed)
        return [address for __, address in top]


#: Registry of constructors, keyed by sampler name.
SAMPLER_REGISTRY: Dict[str, Callable[..., PeerSampler]] = {
    UniformSampler.name: UniformSampler,
    SeedBiasedSampler.name: SeedBiasedSampler,
    RarityAwareSampler.name: RarityAwareSampler,
}


def parse_sampler_spec(spec: str):
    """Split ``"name:key=value,..."`` into (name, kwargs); validates the
    name against the registry and coerces values to float."""
    name, _, args = spec.partition(":")
    name = name.strip()
    if name not in SAMPLER_REGISTRY:
        raise ValueError(
            "unknown sampler %r (have: %s)"
            % (name, ", ".join(sorted(SAMPLER_REGISTRY)))
        )
    kwargs = {}
    if args.strip():
        for part in args.split(","):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError("malformed sampler argument %r" % part)
            kwargs[key.strip()] = float(value)
    return name, kwargs


def make_sampler(spec: str) -> PeerSampler:
    """Build a sampler from its spec string, e.g. ``"rarity-aware:bias=2"``.

    >>> make_sampler("uniform").name
    'uniform'
    >>> make_sampler("seed-biased:seed_fraction=0.25").spec()
    'seed-biased:seed_fraction=0.25'
    """
    name, kwargs = parse_sampler_spec(spec)
    return SAMPLER_REGISTRY[name](**kwargs)
