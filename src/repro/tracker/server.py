"""The standalone asyncio announce server.

One :class:`TrackerServer` fronts a :class:`~repro.tracker.service.TrackerService`
over two wire shapes on localhost:

* **HTTP-style GET** (BEP 3): ``GET /announce?info_hash=...&port=...``
  over TCP, answered with a bencoded compact response
  (:mod:`repro.tracker.wire`) — the format every BitTorrent client
  speaks.  A minimal HTTP/1.0 parser is implemented here; the server
  closes the connection after each response.

* **UDP datagram framing** (BEP 15 shape): a 16-byte ``connect``
  handshake issuing a connection id, then fixed-layout ``announce``
  packets answered with ``interval/leechers/seeders`` plus the same
  6-byte compact peer blob.

Both frontends funnel into ``service.announce`` with no RNG of their
own, so a given announce sequence produces byte-identical peer lists
through either wire or through direct in-process calls — the
differential the ``tracker``-marked conformance tests pin.

Failures are first-class: an injected outage or a load-shedding
rejection becomes a bencoded ``failure reason`` (HTTP) or an ``error``
action (UDP), never a dropped connection, so clients can fail over.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Dict, Optional, Tuple
from urllib.parse import unquote_to_bytes

from repro.tracker.service import (
    AnnounceRequest,
    TrackerOverloaded,
    TrackerService,
)
from repro.tracker.tracker import TrackerUnavailable
from repro.tracker.wire import AnnounceResponse, encode_announce_response, encode_failure

DEFAULT_NUM_WANT = 50

#: BEP 15 magic constant opening every UDP connect request.
UDP_PROTOCOL_ID = 0x41727101980
UDP_CONNECT = 0
UDP_ANNOUNCE = 1
UDP_ERROR = 3

#: UDP event codes (BEP 15) -> announce event strings.
_UDP_EVENTS = {0: "", 1: "completed", 2: "started", 3: "stopped"}
_UDP_EVENT_CODES = {v: k for k, v in _UDP_EVENTS.items()}


def parse_query(query: str) -> Dict[str, bytes]:
    """Split an announce query string, percent-decoding to raw bytes.

    ``info_hash`` is 20 *binary* bytes percent-encoded, so the text-mode
    stdlib helpers (which decode through UTF-8) cannot be used.
    """
    params: Dict[str, bytes] = {}
    for part in query.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        params[key] = unquote_to_bytes(value.replace("+", "%20"))
    return params


def split_address(address: str) -> Tuple[str, int]:
    """``"ip:port"`` -> (ip, port); port 0 for sim-style bare addresses."""
    host, sep, port = address.rpartition(":")
    if not sep:
        return address, 0
    return host, int(port)


def _request_from_params(
    params: Dict[str, bytes], peer_host: str
) -> AnnounceRequest:
    if "info_hash" not in params or not params["info_hash"]:
        raise ValueError("missing info_hash")
    infohash = params["info_hash"]
    port = int(params.get("port", b"0"))
    ip = params.get("ip", peer_host.encode()).decode()
    event = params.get("event", b"").decode()
    if event not in ("", "started", "stopped", "completed"):
        raise ValueError("unknown event %r" % event)
    num_want = int(params.get("numwant", b"%d" % DEFAULT_NUM_WANT))
    left = params.get("left")
    have = params.get("have")
    return AnnounceRequest(
        infohash=infohash,
        address="%s:%d" % (ip, port),
        event=event,
        num_want=num_want if num_want >= 0 else DEFAULT_NUM_WANT,
        is_seed=(left == b"0") or event == "completed",
        have_count=int(have) if have is not None else None,
    )


def encode_result(result) -> bytes:
    """Bencode a service result exactly as the HTTP frontend does.

    Shared with the in-process side of the wire differential tests: both
    paths meet at these bytes.
    """
    return encode_announce_response(
        AnnounceResponse(
            interval=int(result.interval),
            complete=result.seeds,
            incomplete=result.leechers,
            peers=[split_address(address) for address in result.peers],
        )
    )


class _UdpTrackerProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: "TrackerServer"):
        self.server = server
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        reply = self.server.handle_datagram(data, addr)
        if reply is not None and self.transport is not None:
            self.transport.sendto(reply, addr)


class TrackerServer:
    """Serve one :class:`TrackerService` over HTTP-style TCP and UDP."""

    def __init__(
        self,
        service: TrackerService,
        host: str = "127.0.0.1",
        http_port: int = 0,
        udp_port: int = 0,
    ):
        self.service = service
        self.host = host
        self._http_port = http_port
        self._udp_port = udp_port
        self._server: Optional[asyncio.AbstractServer] = None
        self._udp_transport: Optional[asyncio.DatagramTransport] = None
        self._connection_ids: Dict[int, Tuple[str, int]] = {}
        self._next_connection_id = 1
        self.http_requests = 0
        self.udp_requests = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def http_port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def udp_port(self) -> int:
        assert self._udp_transport is not None, "server not started"
        return self._udp_transport.get_extra_info("sockname")[1]

    async def start(self) -> None:
        loop = asyncio.get_event_loop()
        self._server = await asyncio.start_server(
            self._on_http_connection, self.host, self._http_port
        )
        self._udp_transport, __ = await loop.create_datagram_endpoint(
            lambda: _UdpTrackerProtocol(self),
            local_addr=(self.host, self._udp_port),
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None

    async def __aenter__(self) -> "TrackerServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- HTTP frontend -----------------------------------------------------

    async def _on_http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers up to the blank line; announces carry none we need.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            peername = writer.get_extra_info("peername") or ("127.0.0.1", 0)
            body, status = self.handle_http_request(
                request_line.decode("latin-1").strip(), peername[0]
            )
            writer.write(
                b"HTTP/1.0 %d %s\r\n"
                b"Content-Type: text/plain\r\n"
                b"Content-Length: %d\r\n\r\n"
                % (status, b"OK" if status == 200 else b"Bad Request", len(body))
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    def handle_http_request(
        self, request_line: str, peer_host: str
    ) -> Tuple[bytes, int]:
        """(body, status) for one request line; factored out for tests."""
        self.http_requests += 1
        try:
            method, target, *__ = request_line.split(" ")
        except ValueError:
            return encode_failure("malformed request line"), 400
        if method != "GET":
            return encode_failure("only GET is supported"), 400
        path, _, query = target.partition("?")
        if path == "/scrape":
            return self._handle_scrape(query), 200
        if path != "/announce":
            return encode_failure("unknown path %s" % path), 400
        try:
            request = _request_from_params(parse_query(query), peer_host)
        except (ValueError, KeyError) as exc:
            return encode_failure("bad announce: %s" % exc), 400
        try:
            result = self.service.announce(request)
        except TrackerOverloaded as exc:
            return (
                encode_failure(
                    "%s; retry in %d" % (exc, int(exc.retry_after))
                ),
                200,
            )
        except TrackerUnavailable as exc:
            return encode_failure(str(exc)), 200
        return encode_result(result), 200

    def _handle_scrape(self, query: str) -> bytes:
        from repro.protocol.bencode import bencode

        params = parse_query(query)
        infohash = params.get("info_hash")
        if infohash is None:
            return encode_failure("scrape needs an info_hash")
        seeds, leechers = self.service.scrape(infohash)
        state = self.service.store.get(infohash)
        return bencode(
            {
                b"files": {
                    infohash: {
                        b"complete": seeds,
                        b"incomplete": leechers,
                        b"downloaded": (
                            state.completed_count if state is not None else 0
                        ),
                    }
                }
            }
        )

    # -- UDP frontend ------------------------------------------------------

    def handle_datagram(self, data: bytes, addr) -> Optional[bytes]:
        """Decode one datagram and return the reply (None = drop)."""
        self.udp_requests += 1
        if len(data) < 16:
            return None
        if len(data) == 16:
            protocol_id, action, transaction_id = struct.unpack(">qii", data)
            if protocol_id != UDP_PROTOCOL_ID or action != UDP_CONNECT:
                return None
            connection_id = self._next_connection_id
            self._next_connection_id += 1
            self._connection_ids[connection_id] = addr
            return struct.pack(">iiq", UDP_CONNECT, transaction_id, connection_id)
        if len(data) < 98:
            return None
        (
            connection_id,
            action,
            transaction_id,
            infohash,
            __peer_id,
            __downloaded,
            left,
            __uploaded,
            event_code,
            ip,
            __key,
            num_want,
            port,
        ) = struct.unpack(">qii20s20sqqqiIIiH", data[:98])
        if action != UDP_ANNOUNCE:
            return self._udp_error(transaction_id, "unsupported action")
        if connection_id not in self._connection_ids:
            return self._udp_error(transaction_id, "unknown connection id")
        host = (
            "%d.%d.%d.%d" % (ip >> 24 & 255, ip >> 16 & 255, ip >> 8 & 255, ip & 255)
            if ip
            else addr[0]
        )
        event = _UDP_EVENTS.get(event_code)
        if event is None:
            return self._udp_error(transaction_id, "unknown event")
        request = AnnounceRequest(
            infohash=infohash,
            address="%s:%d" % (host, port),
            event=event,
            num_want=num_want if num_want >= 0 else DEFAULT_NUM_WANT,
            is_seed=(left == 0) or event == "completed",
        )
        try:
            result = self.service.announce(request)
        except TrackerUnavailable as exc:
            return self._udp_error(transaction_id, str(exc))
        blob = bytearray(
            struct.pack(
                ">iiiii",
                UDP_ANNOUNCE,
                transaction_id,
                int(result.interval),
                result.leechers,
                result.seeds,
            )
        )
        from repro.tracker.wire import pack_peers

        peers = [split_address(address) for address in result.peers]
        blob += pack_peers([(h, p) for h, p in peers if 0 < p < 65536])
        return bytes(blob)

    @staticmethod
    def _udp_error(transaction_id: int, message: str) -> bytes:
        return struct.pack(">ii", UDP_ERROR, transaction_id) + message.encode()


def build_udp_connect(transaction_id: int) -> bytes:
    """Client-side connect request (shared with the UDP client/tests)."""
    return struct.pack(">qii", UDP_PROTOCOL_ID, UDP_CONNECT, transaction_id)


def build_udp_announce(
    connection_id: int,
    transaction_id: int,
    request: AnnounceRequest,
    port: int,
    key: int = 0,
) -> bytes:
    """Client-side announce packet for :func:`handle_datagram`'s layout.

    The BEP 15 ip field carries the requester's address from
    ``request.address`` when it is a dotted quad (0 — "use the packet
    source" — otherwise), so distinct announcers behind one socket stay
    distinct registry entries.
    """
    host = request.address.rpartition(":")[0]
    try:
        ip = int.from_bytes(socket.inet_aton(host), "big")
    except OSError:
        ip = 0
    return struct.pack(
        ">qii20s20sqqqiIIiH",
        connection_id,
        UDP_ANNOUNCE,
        transaction_id,
        request.infohash,
        b"\x00" * 20,
        0,
        0 if request.is_seed else 1,
        0,
        _UDP_EVENT_CODES[request.event],
        ip,
        key,
        request.num_want,
        port,
    )
