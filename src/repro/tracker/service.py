"""The announce service: shared core of every tracker frontend.

:class:`TrackerService` is the engine behind both the in-process
:class:`repro.tracker.tracker.Tracker` the simulator calls synchronously
and the live asyncio announce server (:mod:`repro.tracker.server`).  It
owns the sharded swarm store, the peer-sampling strategy, the announce
budget (load shedding) and the per-request RNG derivation, so every
frontend answers a given announce sequence identically — the property
the sim-vs-live differential tests pin byte for byte.

**Determinism.**  A caller that *has* a seeded RNG (a simulated peer)
passes it and the sample is drawn from that stream.  A remote caller
cannot share an RNG object, so the service derives one per request from
``(service seed, infohash, per-swarm announce index)`` — a pure function
of the announce sequence.  Both paths go through the same samplers.

**Load shedding.**  Real trackers survive flash crowds by raising the
announce interval they hand back (clients re-announce less often) and,
past a hard limit, by rejecting announces outright with a retry hint.
:class:`AnnounceBudget` implements exactly that: a sliding-window rate
estimate scales the returned interval proportionally to the overload
factor, and past ``reject_factor`` times the budget the announce fails
with :class:`TrackerOverloaded` (wire frontends encode it as a bencoded
``failure reason``; simulated peers retry with their existing
fault-model backoff).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from random import Random
from typing import Callable, List, Optional

from repro.tracker.sampling import PeerSampler, UniformSampler, make_sampler
from repro.tracker.state import ShardedSwarmStore, SwarmState
from repro.tracker.tracker import TrackerUnavailable
from repro.tracker.wire import DEFAULT_INTERVAL


class TrackerOverloaded(TrackerUnavailable):
    """Announce rejected by load shedding; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class AnnounceRequest:
    """One announce, frontend-independent."""

    infohash: bytes
    address: str
    event: str = ""
    num_want: int = 50
    is_seed: bool = False
    have_count: Optional[int] = None


@dataclass
class AnnounceResult:
    """The service's answer (before wire encoding)."""

    peers: List[str]
    interval: float
    seeds: int
    leechers: int
    shed_factor: float = 1.0
    """How much load shedding stretched the interval (1.0 = none)."""


@dataclass
class AnnounceBudget:
    """Announce-rate budget driving interval scaling and rejection."""

    announces_per_second: float
    window: float = 5.0
    """Sliding-window length (seconds) of the rate estimate."""

    max_interval_factor: float = 8.0
    """Cap on how far shedding may stretch the announce interval."""

    reject_factor: float = 4.0
    """Overload factor past which announces are rejected outright."""

    def __post_init__(self) -> None:
        if self.announces_per_second <= 0:
            raise ValueError("announces_per_second must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.max_interval_factor < 1.0 or self.reject_factor <= 1.0:
            raise ValueError("shedding factors must be >= 1")


class _RateWindow:
    """Sliding-window announce counter over the service clock."""

    __slots__ = ("window", "_events")

    def __init__(self, window: float):
        self.window = window
        self._events: List[float] = []

    def observe(self, now: float) -> float:
        """Record one announce; returns the current announces/sec."""
        events = self._events
        events.append(now)
        cutoff = now - self.window
        drop = 0
        for t in events:
            if t >= cutoff:
                break
            drop += 1
        if drop:
            del events[:drop]
        # Count over the fixed window length, not the observed span: a
        # same-instant burst (simulated clocks advance in ticks) must
        # not read as an infinite rate.
        return len(events) / self.window


class TrackerService:
    """Sharded, sampler-pluggable, budget-aware announce engine."""

    def __init__(
        self,
        clock: Callable[[], float],
        seed: int = 0,
        num_shards: int = 8,
        sampler: Optional[PeerSampler] = None,
        interval: float = DEFAULT_INTERVAL,
        budget: Optional[AnnounceBudget] = None,
        expiry_intervals: Optional[float] = None,
    ):
        if expiry_intervals is not None and expiry_intervals <= 0:
            raise ValueError("expiry_intervals must be positive")
        self._clock = clock
        self._seed = seed
        self.store = ShardedSwarmStore(num_shards)
        self.sampler = sampler or UniformSampler()
        self.interval = interval
        self.budget = budget
        self.expiry_intervals = expiry_intervals
        self._rate = (
            _RateWindow(budget.window) if budget is not None else None
        )
        self.announce_count = 0
        self.shed_announces = 0
        self.rejected_announces = 0
        self.failed_announce_count = 0
        self.expired_peers = 0
        self._outages: tuple = ()

    @classmethod
    def from_spec(
        cls,
        clock: Callable[[], float],
        sampler_spec: str = "uniform",
        **kwargs,
    ) -> "TrackerService":
        return cls(clock, sampler=make_sampler(sampler_spec), **kwargs)

    # -- outage windows (FaultPlan's tracker model) ------------------------

    def set_outages(self, outages) -> None:
        """Install ``(start, duration)`` windows during which every
        announce raises :class:`TrackerUnavailable`."""
        self._outages = tuple(outages)

    def is_down(self, now: float) -> bool:
        return any(
            start <= now < start + duration for start, duration in self._outages
        )

    # -- the announce path -------------------------------------------------

    def request_rng(self, state: SwarmState, request: AnnounceRequest) -> Random:
        """Deterministic per-request RNG for callers without one.

        Seeded from ``(service seed, infohash, swarm announce index)``:
        the same announce sequence yields the same samples through any
        frontend, which is what the wire differential tests assert.
        """
        digest = hashlib.sha256(
            b"%d|%s|%d"
            % (self._seed, request.infohash, state.announce_seq)
        ).digest()
        return Random(int.from_bytes(digest[:8], "big"))

    def announce(
        self, request: AnnounceRequest, rng: Optional[Random] = None
    ) -> AnnounceResult:
        """Apply one announce; returns peers + the interval to honour.

        Raises :class:`TrackerUnavailable` during an injected outage and
        :class:`TrackerOverloaded` when load shedding rejects the
        announce.
        """
        now = self._clock()
        if self.is_down(now):
            self.failed_announce_count += 1
            raise TrackerUnavailable("tracker outage at t=%.1f" % now)
        shed_factor = 1.0
        if self._rate is not None:
            rate = self._rate.observe(now)
            budget = self.budget
            overload = rate / budget.announces_per_second
            if overload > budget.reject_factor and request.event != "stopped":
                # Keep-alives and joins are shed; departures always land
                # (losing them would leak registry entries).
                self.rejected_announces += 1
                raise TrackerOverloaded(
                    "tracker overloaded (%.0f ann/s over a %.0f ann/s budget)"
                    % (rate, budget.announces_per_second),
                    retry_after=self.interval,
                )
            if overload > 1.0:
                shed_factor = min(overload, budget.max_interval_factor)
                self.shed_announces += 1
        self.announce_count += 1
        state = self.store.get_or_create(request.infohash)
        if self.expiry_intervals is not None:
            # Lazy per-announce reap of the swarm being touched: a peer
            # silent for more than ``expiry_intervals`` re-announce
            # intervals is dead (it missed that many keep-alives), and
            # reaping it *before* sampling keeps its address out of the
            # peer set handed back.
            self.expired_peers += len(
                state.expire(now, self.expiry_intervals * self.interval)
            )
        state.update(
            request.address,
            event=request.event,
            is_seed=request.is_seed,
            now=now,
            have_count=request.have_count,
        )
        peers: List[str] = []
        if request.num_want > 0 and request.event != "stopped":
            if rng is None:
                rng = self.request_rng(state, request)
            peers = self.sampler.sample(
                state, request.address, request.num_want, rng
            )
        seeds, leechers = state.scrape()
        return AnnounceResult(
            peers=peers,
            interval=self.interval * shed_factor,
            seeds=seeds,
            leechers=leechers,
            shed_factor=shed_factor,
        )

    def scrape(self, infohash: bytes) -> tuple:
        """(seeds, leechers) of one swarm (0, 0 when unknown)."""
        state = self.store.get(infohash)
        return state.scrape() if state is not None else (0, 0)

    def reap(self, now: Optional[float] = None) -> int:
        """Sweep *every* swarm for dead peers; returns how many died.

        The lazy per-announce expiry only touches swarms that still see
        traffic — a swarm whose last leecher vanished never announces
        again, so a periodic full sweep (the live server runs one per
        expiry window) is what actually bounds registry growth.
        No-op unless ``expiry_intervals`` is configured.
        """
        if self.expiry_intervals is None:
            return 0
        reaped = self.store.expire(
            self._clock() if now is None else now,
            self.expiry_intervals * self.interval,
        )
        self.expired_peers += reaped
        return reaped

    def stats(self) -> dict:
        """Operational counters + per-shard sizes (CLI / bench surface)."""
        return {
            "announces": self.announce_count,
            "shed": self.shed_announces,
            "rejected": self.rejected_announces,
            "failed": self.failed_announce_count,
            "expired": self.expired_peers,
            "swarms": self.store.total_swarms,
            "peers": self.store.total_peers,
            "sampler": self.sampler.spec(),
            "shards": [
                {"swarms": s.swarms, "peers": s.peers, "announces": s.announces}
                for s in self.store.stats()
            ],
        }
