"""Swarm state for the tracker tier: per-infohash registries, sharded.

A real tracker's working set is a map ``infohash -> swarm`` where each
swarm is the set of peers currently announcing for that torrent.  This
module provides that map at two levels:

* :class:`SwarmState` — one torrent's registry.  Peers are kept in
  *registration order* in dense lists with O(1) swap-remove, and seeds
  and leechers are additionally kept in dense per-role lists, so the
  samplers in :mod:`repro.tracker.sampling` can draw a peer set in
  O(num_want) (uniform, seed-biased) instead of materialising an O(n)
  candidate list per announce — the difference between 10^4 and 10^6
  announces/sec at realistic swarm sizes (``benchmarks/bench_tracker.py``).

* :class:`ShardedSwarmStore` — the infohash map, split over a fixed
  number of shards by a *stable* hash (CRC-32, never the seeded builtin
  ``hash``).  Shards bound the state any single announce touches, give
  the announce server a natural unit of concurrency and statistics, and
  can be rebalanced online (:meth:`ShardedSwarmStore.rebalance`) — the
  operation the conformance tests exercise mid-outage.

Everything here is deterministic given the announce sequence: no wall
clock, no global RNG, no seeded-``hash`` iteration order.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class PeerEntry:
    """One registered peer, as the tracker knows it."""

    address: str
    is_seed: bool
    have_count: Optional[int] = None
    """Pieces the peer reported holding (from the announce's ``left``
    field); None when the client did not report progress.  Feeds the
    rarity-aware sampler."""

    registered_at: float = 0.0
    last_seen: float = 0.0


class _DenseIndex:
    """A list of addresses with an O(1) membership map and swap-remove.

    Registration order is preserved for live entries except where a
    removal swapped the tail in — an order that is itself a pure
    function of the announce sequence, never of dict iteration.
    """

    __slots__ = ("order", "_where")

    def __init__(self) -> None:
        self.order: List[str] = []
        self._where: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.order)

    def __contains__(self, address: str) -> bool:
        return address in self._where

    def add(self, address: str) -> None:
        if address in self._where:
            return
        self._where[address] = len(self.order)
        self.order.append(address)

    def discard(self, address: str) -> None:
        index = self._where.pop(address, None)
        if index is None:
            return
        tail = self.order.pop()
        if tail != address:
            self.order[index] = tail
            self._where[tail] = index


class SwarmState:
    """The tracker-side registry of one torrent's swarm."""

    def __init__(self, infohash: bytes = b""):
        self.infohash = infohash
        self.entries: Dict[str, PeerEntry] = {}
        self.all = _DenseIndex()
        self.seeds = _DenseIndex()
        self.leechers = _DenseIndex()
        self.announce_seq = 0
        """Monotonic per-swarm announce counter (feeds the service's
        per-request RNG derivation)."""

        self.completed_count = 0

    # -- registry ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def update(
        self,
        address: str,
        event: str,
        is_seed: bool,
        now: float,
        have_count: Optional[int] = None,
    ) -> PeerEntry:
        """Apply one announce to the registry and return the entry.

        ``event`` follows BEP 3: ``"started"``, ``"stopped"``,
        ``"completed"`` or ``""`` (keep-alive).  A ``stopped`` announce
        returns a detached entry (no longer registered).
        """
        self.announce_seq += 1
        if event == "stopped":
            entry = self.entries.pop(address, None)
            if entry is None:
                entry = PeerEntry(address, is_seed, have_count, now, now)
            self.all.discard(address)
            self.seeds.discard(address)
            self.leechers.discard(address)
            entry.last_seen = now
            return entry
        entry = self.entries.get(address)
        if entry is None:
            entry = PeerEntry(address, is_seed, have_count, now, now)
            self.entries[address] = entry
            self.all.add(address)
        was_seed = address in self.seeds
        entry.is_seed = is_seed
        if have_count is not None:
            entry.have_count = have_count
        entry.last_seen = now
        if event == "completed":
            self.completed_count += 1
        if is_seed:
            if not was_seed:
                self.leechers.discard(address)
                self.seeds.add(address)
        else:
            if was_seed:
                self.seeds.discard(address)
            self.leechers.add(address)
        return entry

    def expire(self, now: float, max_age: float) -> List[str]:
        """Reap peers not seen for more than *max_age*; returns them.

        A peer whose announces stopped (crash, NAT rebind, network
        partition — anything but a clean ``stopped`` event) would
        otherwise sit in the registry forever and keep being handed out
        to new peers as a dead address.  Entries are scanned and removed
        in registration (dict-insertion) order, itself a pure function
        of the announce sequence, so the swap-remove state the samplers
        see stays deterministic.  ``announce_seq`` is untouched: it
        feeds the per-request RNG derivation and must only ever count
        announces.
        """
        cutoff = now - max_age
        dead = [
            address
            for address, entry in self.entries.items()
            if entry.last_seen < cutoff
        ]
        for address in dead:
            del self.entries[address]
            self.all.discard(address)
            self.seeds.discard(address)
            self.leechers.discard(address)
        return dead

    def scrape(self) -> Tuple[int, int]:
        """(seeds, leechers) currently registered."""
        return len(self.seeds), len(self.leechers)

    def addresses(self) -> List[str]:
        """Registered addresses in registration (swap-remove) order."""
        return list(self.all.order)


def shard_of(infohash: bytes, num_shards: int) -> int:
    """Stable shard index of an infohash.

    CRC-32 rather than ``hash()``: the builtin is salted per process
    (PYTHONHASHSEED), which would make shard placement — and therefore
    shard statistics and rebalance traffic — nondeterministic.
    """
    return zlib.crc32(infohash) % num_shards


@dataclass
class ShardStats:
    """Size accounting of one shard."""

    swarms: int = 0
    peers: int = 0
    announces: int = 0


class ShardedSwarmStore:
    """``infohash -> SwarmState``, split over ``num_shards`` shards."""

    def __init__(self, num_shards: int = 8):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self._shards: List[Dict[bytes, SwarmState]] = [
            {} for _ in range(num_shards)
        ]

    # -- lookup ------------------------------------------------------------

    def shard_index(self, infohash: bytes) -> int:
        return shard_of(infohash, self.num_shards)

    def get(self, infohash: bytes) -> Optional[SwarmState]:
        return self._shards[self.shard_index(infohash)].get(infohash)

    def get_or_create(self, infohash: bytes) -> SwarmState:
        shard = self._shards[self.shard_index(infohash)]
        state = shard.get(infohash)
        if state is None:
            state = SwarmState(infohash)
            shard[infohash] = state
        return state

    def swarms(self) -> Iterator[SwarmState]:
        for shard in self._shards:
            # Sorted for a stable iteration order: shard dicts are keyed
            # by bytes whose insertion order depends on announce arrival.
            for infohash in sorted(shard):
                yield shard[infohash]

    # -- maintenance -------------------------------------------------------

    def expire(self, now: float, max_age: float) -> int:
        """Reap stale peers from every swarm; returns how many died.

        Swarm objects are kept even when emptied: their ``announce_seq``
        feeds per-request RNG derivation and must survive the reap.
        """
        reaped = 0
        for state in self.swarms():
            reaped += len(state.expire(now, max_age))
        return reaped

    def rebalance(self, num_shards: int) -> int:
        """Re-home every swarm under a new shard count; returns how many
        swarms moved shards.  Safe at any point between announces: the
        swarm objects themselves (and any outstanding references to
        them) are reused, only the shard map is rebuilt."""
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        moved = 0
        fresh: List[Dict[bytes, SwarmState]] = [{} for _ in range(num_shards)]
        for old_index, shard in enumerate(self._shards):
            for infohash, state in shard.items():
                new_index = shard_of(infohash, num_shards)
                if new_index != old_index:
                    moved += 1
                fresh[new_index][infohash] = state
        self.num_shards = num_shards
        self._shards = fresh
        return moved

    def stats(self) -> List[ShardStats]:
        """Per-shard accounting, in shard order."""
        out = []
        for shard in self._shards:
            stats = ShardStats(swarms=len(shard))
            for state in shard.values():
                stats.peers += len(state)
                stats.announces += state.announce_seq
            out.append(stats)
        return out

    @property
    def total_peers(self) -> int:
        return sum(
            len(state) for shard in self._shards for state in shard.values()
        )

    @property
    def total_swarms(self) -> int:
        return sum(len(shard) for shard in self._shards)
