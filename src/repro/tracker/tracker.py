"""Tracker: the only centralised component of BitTorrent (§II-B).

The tracker keeps the set of peers currently involved in the torrent,
hands a random subset (50 by default) to peers that announce, and
collects the per-torrent statistics (number of seeds and leechers over
time) the paper probes to establish transient vs. steady state.
It is not involved in the actual distribution of the file.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Dict, List, Sequence, Tuple


class TrackerUnavailable(RuntimeError):
    """Raised by :meth:`Tracker.announce` during an injected outage.

    Real trackers time out or return HTTP errors; clients retry their
    announce with backoff rather than dropping out of the torrent."""


@dataclass(frozen=True)
class TrackerStats:
    """One scrape sample: (time, seeds, leechers)."""

    time: float
    seeds: int
    leechers: int


class Tracker:
    """In-memory tracker for a single torrent."""

    def __init__(self, rng: Random, clock: Callable[[], float]):
        self._rng = rng
        self._clock = clock
        self._peers: Dict[str, bool] = {}  # address -> is_seed
        self._history: List[TrackerStats] = []
        self._outages: Tuple[Tuple[float, float], ...] = ()
        self.announce_count = 0
        self.completed_count = 0
        self.failed_announce_count = 0

    def set_outages(self, outages: Sequence[Tuple[float, float]]) -> None:
        """Install ``(start, duration)`` windows during which every
        announce raises :class:`TrackerUnavailable`."""
        self._outages = tuple(outages)

    def is_down(self, now: float) -> bool:
        return any(
            start <= now < start + duration for start, duration in self._outages
        )

    def announce(
        self,
        address: str,
        event: str,
        num_want: int,
        is_seed: bool,
    ) -> List[str]:
        """Process one announce and return up to *num_want* random peers.

        ``event`` is ``"started"``, ``"stopped"``, ``"completed"`` or
        ``""`` (the periodic keep-alive announce).  The returned list
        never contains the requester.
        """
        if self.is_down(self._clock()):
            self.failed_announce_count += 1
            raise TrackerUnavailable(
                "tracker outage at t=%.1f" % self._clock()
            )
        self.announce_count += 1
        if event == "stopped":
            self._peers.pop(address, None)
        else:
            self._peers[address] = is_seed
            if event == "completed":
                self.completed_count += 1
        self._record_sample()
        if num_want <= 0:
            return []
        others = [peer for peer in self._peers if peer != address]
        if len(others) <= num_want:
            # Return a shuffled copy so initiation order is still random.
            others = list(others)
            self._rng.shuffle(others)
            return others
        return self._rng.sample(others, num_want)

    def scrape(self) -> Tuple[int, int]:
        """(seeds, leechers) currently registered."""
        seeds = sum(1 for is_seed in self._peers.values() if is_seed)
        return seeds, len(self._peers) - seeds

    def _record_sample(self) -> None:
        seeds, leechers = self.scrape()
        self._history.append(TrackerStats(self._clock(), seeds, leechers))

    @property
    def history(self) -> List[TrackerStats]:
        """Every (time, seeds, leechers) sample, one per announce."""
        return list(self._history)

    @property
    def num_registered(self) -> int:
        return len(self._peers)

    def registered_addresses(self) -> List[str]:
        return list(self._peers)
