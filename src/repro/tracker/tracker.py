"""Tracker: the only centralised component of BitTorrent (§II-B).

The tracker keeps the set of peers currently involved in the torrent,
hands a subset (50 by default, uniform random unless a different
:mod:`~repro.tracker.sampling` strategy is installed) to peers that
announce, and collects the per-torrent statistics (number of seeds and
leechers over time) the paper probes to establish transient vs. steady
state.  It is not involved in the actual distribution of the file.

This in-process class is the synchronous frontend the simulator and the
live :mod:`repro.net` peers call directly; the standalone asyncio
announce server (:mod:`repro.tracker.server`) serves the same state
machine over the wire.  Both sit on :class:`repro.tracker.state.SwarmState`
and the sampler registry, so announce semantics cannot drift between
the two.

**RNG discipline.**  ``announce`` samples through the RNG the *caller*
passes (each peer its own seeded stream).  Historically every sample
was drawn from one shared tracker stream, so any reordering of
announces — churn arrivals in the sim, wall-clock scheduling in the
live net layer — perturbed every later peer's sample; worse, the
candidate list was dict iteration order.  Now a peer's sample is a pure
function of (its own RNG state, the registry content in registration
order), pinned by a fingerprint test in ``tests/test_tracker.py``.
The constructor's RNG remains as a fallback stream for callers that do
not pass one.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.tracker.sampling import PeerSampler, UniformSampler
from repro.tracker.state import SwarmState


class TrackerUnavailable(RuntimeError):
    """Raised by :meth:`Tracker.announce` during an injected outage.

    Real trackers time out or return HTTP errors; clients retry their
    announce with backoff rather than dropping out of the torrent."""


@dataclass(frozen=True)
class TrackerStats:
    """One scrape sample: (time, seeds, leechers)."""

    time: float
    seeds: int
    leechers: int


class Tracker:
    """In-memory tracker for a single torrent."""

    def __init__(
        self,
        rng: Random,
        clock: Callable[[], float],
        sampler: Optional[PeerSampler] = None,
    ):
        self._rng = rng
        self._clock = clock
        self._state = SwarmState()
        self._sampler = sampler or UniformSampler()
        self._history: List[TrackerStats] = []
        self._outages: Tuple[Tuple[float, float], ...] = ()
        self.announce_count = 0
        self.failed_announce_count = 0

    @property
    def sampler(self) -> PeerSampler:
        return self._sampler

    @property
    def state(self) -> SwarmState:
        """The backing registry (shared with federation frontends)."""
        return self._state

    def set_outages(self, outages: Sequence[Tuple[float, float]]) -> None:
        """Install ``(start, duration)`` windows during which every
        announce raises :class:`TrackerUnavailable`."""
        self._outages = tuple(outages)

    def is_down(self, now: float) -> bool:
        return any(
            start <= now < start + duration for start, duration in self._outages
        )

    def announce(
        self,
        address: str,
        event: str,
        num_want: int,
        is_seed: bool,
        rng: Optional[Random] = None,
        have_count: Optional[int] = None,
    ) -> List[str]:
        """Process one announce and return up to *num_want* sampled peers.

        ``event`` is ``"started"``, ``"stopped"``, ``"completed"`` or
        ``""`` (the periodic keep-alive announce).  The returned list
        never contains the requester.  ``rng`` is the caller's seeded
        stream (module docstring); ``have_count`` optionally reports the
        peer's progress for progress-aware samplers.
        """
        now = self._clock()
        if self.is_down(now):
            self.failed_announce_count += 1
            raise TrackerUnavailable("tracker outage at t=%.1f" % now)
        self.announce_count += 1
        self._state.update(
            address,
            event=event,
            is_seed=is_seed,
            now=now,
            have_count=have_count,
        )
        self._record_sample()
        if num_want <= 0 or event == "stopped":
            return []
        return self._sampler.sample(
            self._state, address, num_want, rng if rng is not None else self._rng
        )

    @property
    def completed_count(self) -> int:
        return self._state.completed_count

    def scrape(self) -> Tuple[int, int]:
        """(seeds, leechers) currently registered."""
        return self._state.scrape()

    def _record_sample(self) -> None:
        seeds, leechers = self._state.scrape()
        self._history.append(TrackerStats(self._clock(), seeds, leechers))

    @property
    def history(self) -> List[TrackerStats]:
        """Every (time, seeds, leechers) sample, one per announce."""
        return list(self._history)

    @property
    def num_registered(self) -> int:
        return len(self._state)

    def registered_addresses(self) -> List[str]:
        return self._state.addresses()
