"""Tracker wire format: bencoded announce responses (BEP 3 / BEP 23).

Real trackers answer HTTP announces with a bencoded dictionary; the
*compact* format (BEP 23, universally used) packs each peer into 6
bytes: 4-byte big-endian IPv4 address + 2-byte big-endian port.  The
simulator exchanges peer lists directly, but the wire format is part of
the substrate a downstream user expects from a BitTorrent library, and
the tests exercise the full round trip.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.protocol.bencode import BencodeError, bdecode, bencode

DEFAULT_INTERVAL = 30 * 60  # the paper's 30-minute re-announce period


@dataclass(frozen=True)
class AnnounceResponse:
    """A tracker's answer to an announce."""

    interval: int
    complete: int
    """Number of seeds."""

    incomplete: int
    """Number of leechers."""

    peers: List[Tuple[str, int]]
    """(dotted-quad IPv4, port) pairs."""


def pack_peers(peers: List[Tuple[str, int]]) -> bytes:
    """BEP 23 compact peer list: 6 bytes per peer."""
    packed = bytearray()
    for address, port in peers:
        if not 0 < port < 65536:
            raise ValueError("port %d out of range" % port)
        packed += socket.inet_aton(address)
        packed += struct.pack(">H", port)
    return bytes(packed)


def unpack_peers(data: bytes) -> List[Tuple[str, int]]:
    """Inverse of :func:`pack_peers`."""
    if len(data) % 6:
        raise ValueError("compact peer blob length is not a multiple of 6")
    peers = []
    for offset in range(0, len(data), 6):
        address = socket.inet_ntoa(data[offset : offset + 4])
        (port,) = struct.unpack(">H", data[offset + 4 : offset + 6])
        peers.append((address, port))
    return peers


def encode_announce_response(response: AnnounceResponse) -> bytes:
    """Bencode an announce response in compact form."""
    return bencode(
        {
            b"interval": response.interval,
            b"complete": response.complete,
            b"incomplete": response.incomplete,
            b"peers": pack_peers(response.peers),
        }
    )


def decode_announce_response(data: bytes) -> AnnounceResponse:
    """Parse a compact-form announce response.

    Raises :class:`ValueError` on malformed input, including tracker
    *failure responses* (dictionaries with a ``failure reason`` key).
    """
    try:
        top = bdecode(data)
    except BencodeError as exc:
        raise ValueError("not a bencoded tracker response: %s" % exc) from exc
    if not isinstance(top, dict):
        raise ValueError("tracker response is not a dictionary")
    if b"failure reason" in top:
        raise ValueError(
            "tracker failure: %s"
            % top[b"failure reason"].decode("utf-8", "replace")
        )
    for key in (b"interval", b"peers"):
        if key not in top:
            raise ValueError("missing tracker response key %r" % key)
    return AnnounceResponse(
        interval=top[b"interval"],
        complete=top.get(b"complete", 0),
        incomplete=top.get(b"incomplete", 0),
        peers=unpack_peers(top[b"peers"]),
    )


def encode_failure(reason: str) -> bytes:
    """A tracker failure response."""
    return bencode({b"failure reason": reason.encode("utf-8")})
