"""Workloads: the paper's 26 torrents (Table I), scaled for simulation."""

from repro.workloads.capacities import (
    CapacityClass,
    CapacityDistribution,
    INTERNET_2005,
    uniform_capacity,
)
from repro.workloads.clients import CLIENT_MIX_2005, client_share, sample_client_id
from repro.workloads.open_system import (
    StabilityDetector,
    StabilitySample,
    StabilityVerdict,
    classify_samples,
)
from repro.workloads.torrents import (
    TABLE1,
    ExperimentHarness,
    TorrentScenario,
    build_experiment,
    scaled_copy,
    scenario_by_id,
)

__all__ = [
    "CLIENT_MIX_2005",
    "CapacityClass",
    "CapacityDistribution",
    "ExperimentHarness",
    "INTERNET_2005",
    "StabilityDetector",
    "StabilitySample",
    "StabilityVerdict",
    "TABLE1",
    "TorrentScenario",
    "classify_samples",
    "scaled_copy",
    "build_experiment",
    "client_share",
    "sample_client_id",
    "scenario_by_id",
    "uniform_capacity",
]
