"""Peer access-capacity distributions.

The paper runs against live 2005/2006 Internet peers: a mix of
asymmetric home broadband (ADSL/cable), a few fast academic or seedbox
hosts, and a tail of very slow uploaders.  ``INTERNET_2005`` reproduces
that mix; experiments can substitute :func:`uniform_capacity` or custom
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Optional, Sequence, Tuple

KIB = 1024


@dataclass(frozen=True)
class CapacityClass:
    """One access-link class: (weight, upload B/s, download B/s|None)."""

    weight: float
    upload: float
    download: Optional[float]
    label: str = ""


class CapacityDistribution:
    """Weighted mixture of capacity classes."""

    def __init__(self, classes: Sequence[CapacityClass]):
        if not classes:
            raise ValueError("need at least one capacity class")
        total = sum(c.weight for c in classes)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._classes = list(classes)
        self._total = total

    def sample(self, rng: Random) -> Tuple[float, Optional[float]]:
        """Draw one (upload, download) pair."""
        point = rng.uniform(0.0, self._total)
        acc = 0.0
        for capacity_class in self._classes:
            acc += capacity_class.weight
            if point <= acc:
                return capacity_class.upload, capacity_class.download
        last = self._classes[-1]
        return last.upload, last.download

    @property
    def classes(self) -> List[CapacityClass]:
        return list(self._classes)

    def mean_upload(self) -> float:
        return (
            sum(c.weight * c.upload for c in self._classes) / self._total
        )


INTERNET_2005 = CapacityDistribution(
    [
        CapacityClass(0.20, 10 * KIB, 120 * KIB, "slow ADSL"),
        CapacityClass(0.40, 20 * KIB, 250 * KIB, "ADSL"),
        CapacityClass(0.25, 50 * KIB, 500 * KIB, "cable"),
        CapacityClass(0.10, 100 * KIB, 1000 * KIB, "fast cable/FTTH"),
        CapacityClass(0.05, 400 * KIB, None, "academic/seedbox"),
    ]
)
"""Heterogeneous, mostly asymmetric mix modelled on 2005 access links."""


def uniform_capacity(
    upload: float, download: Optional[float] = None
) -> CapacityDistribution:
    """A degenerate distribution: every peer gets the same capacities."""
    return CapacityDistribution([CapacityClass(1.0, upload, download, "uniform")])
