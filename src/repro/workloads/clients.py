"""Client-implementation mix.

The paper's peer-identification section (§III-D) observes "around 20
different BitTorrent clients, each client existing in several different
versions".  This module provides a representative 2005/2006 mix so that
simulated populations carry realistic client IDs (Azureus dominated,
then mainline, BitComet, uTorrent's first releases, BitTornado, ...),
which the instrumentation's (IP, client-ID) identification logic then
exercises end to end.
"""

from __future__ import annotations

from random import Random
from typing import List, Sequence, Tuple

CLIENT_MIX_2005: Sequence[Tuple[str, float]] = (
    ("-AZ2304", 0.35),  # Azureus
    ("M4-0-2", 0.20),   # mainline 4.0.2, the instrumented client's kin
    ("-BC0059", 0.15),  # BitComet
    ("-UT1300", 0.10),  # uTorrent 1.3
    ("T03I----", 0.08),  # BitTornado (shadow-style)
    ("-lt0B01", 0.06),  # libtorrent
    ("-TR0006", 0.04),  # Transmission
    ("-BB0021", 0.02),  # BitBuddy
)


def sample_client_id(rng: Random, mix: Sequence[Tuple[str, float]] = CLIENT_MIX_2005) -> str:
    """Draw one client ID from the weighted *mix*."""
    total = sum(weight for __, weight in mix)
    point = rng.uniform(0.0, total)
    acc = 0.0
    for client_id, weight in mix:
        acc += weight
        if point <= acc:
            return client_id
    return mix[-1][0]


def client_share(client_ids: Sequence[str]) -> List[Tuple[str, float]]:
    """Observed share per client ID, sorted descending (for reports)."""
    if not client_ids:
        return []
    counts = {}
    for client_id in client_ids:
        counts[client_id] = counts.get(client_id, 0) + 1
    total = len(client_ids)
    return sorted(
        ((client_id, count / total) for client_id, count in counts.items()),
        key=lambda item: -item[1],
    )
