"""Open-system flash crowds and the swarm-stability detector.

The paper studies torrents in their steady and transient states but
always with peers that linger after completion.  The *open system* of
the fluid-model literature ([26], and the missing-piece-syndrome line of
work culminating in RFwPMS, arXiv 2211.00213) removes that cushion:
leechers arrive as a Poisson process and depart the instant they finish.
Under plain rarest first such a swarm has a hard stability boundary —
once the arrival rate exceeds the initial seed's rare-piece service
rate, almost every leecher ends up in a "one club" holding every piece
but one, the completion rate pins at the seed's rare-piece injection
rate, and the leecher population grows without bound.  Mode suppression
(:class:`~repro.core.rarest_first.ModeSuppressionSelector`) restores
stability by refusing over-replicated offers.

:class:`StabilityDetector` is the measurement side: a swarm-level,
read-only sampler that rides the existing fluid-tick callback, records
swarm-size and chunk-distribution statistics, and feeds them through the
peer-observer chain (``on_stability``) so they land in
:class:`~repro.instrumentation.logger.Instrumentation` and both trace
formats.  It draws no randomness and schedules no events of its own, so
attaching it never perturbs a seeded run — and when it is *not*
attached (the default) no ``stability`` event ever exists and traces
are byte-identical to pre-open-system runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.observer import PeerObserver
    from repro.sim.swarm import Swarm

__all__ = [
    "StabilityDetector",
    "StabilitySample",
    "StabilityVerdict",
    "classify_samples",
]


@dataclass(frozen=True)
class StabilitySample:
    """One periodic swarm-level observation."""

    now: float
    seeds: int
    leechers: int
    arrivals: int
    departures: int
    completions: int
    rarest_copies: int
    """Copies of the least replicated piece across all online peers."""
    mode_copies: int
    """Copies of the *most* replicated piece — the replication level of
    the chunk-distribution mode the one club piles onto."""
    mode_pieces: int
    """How many pieces sit at ``mode_copies``.  In a one club this
    approaches ``num_pieces - 1`` while ``rarest_copies`` stays pinned
    at the seed's lone copy."""

    def as_dict(self) -> dict:
        return {
            "seeds": self.seeds,
            "leechers": self.leechers,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "completions": self.completions,
            "rarest_copies": self.rarest_copies,
            "mode_copies": self.mode_copies,
            "mode_pieces": self.mode_pieces,
        }


@dataclass(frozen=True)
class StabilityVerdict:
    """The end-of-run classification emitted with the ``finalize`` event."""

    stable: bool
    samples: int
    peak_leechers: int
    final_leechers: int
    early_mean: float
    late_mean: float
    completions: int
    one_club: bool
    """True when the final sample shows the one-club signature: the
    rarest piece pinned at a single copy while a large majority of
    pieces sit together at the mode."""

    def as_dict(self) -> dict:
        return {
            "stable": self.stable,
            "samples": self.samples,
            "peak_leechers": self.peak_leechers,
            "final_leechers": self.final_leechers,
            "early_mean": self.early_mean,
            "late_mean": self.late_mean,
            "completions": self.completions,
            "one_club": self.one_club,
        }


def classify_samples(
    samples: Sequence[StabilitySample],
    warmup_fraction: float = 0.25,
    growth_factor: float = 1.4,
    min_backlog: int = 10,
    num_pieces: Optional[int] = None,
) -> StabilityVerdict:
    """Classify a sampled open-system run as stable or unstable.

    The signal is the leecher-population trajectory, exactly what the
    open-system fluid model predicts: a stable swarm settles around a
    finite steady state, an unstable one grows without bound.  After
    dropping the first *warmup_fraction* of samples (flash-crowd
    transient), the remaining series is split in half; the run is
    unstable when the late-half mean exceeds *growth_factor* times the
    early-half mean **and** the late-half backlog is at least
    *min_backlog* leechers (so a tiny swarm drifting from 1 to 2 peers
    never counts as divergence).  The same function classifies both live
    detector output and samples re-materialised from a trace, so sim and
    replay always agree.
    """
    if not samples:
        return StabilityVerdict(
            stable=True,
            samples=0,
            peak_leechers=0,
            final_leechers=0,
            early_mean=0.0,
            late_mean=0.0,
            completions=0,
            one_club=False,
        )
    start = int(len(samples) * warmup_fraction)
    body = list(samples[start:]) or list(samples)
    half = len(body) // 2
    early = body[:half] or body
    late = body[half:] or body
    early_mean = sum(s.leechers for s in early) / len(early)
    late_mean = sum(s.leechers for s in late) / len(late)
    unstable = late_mean >= max(growth_factor * early_mean, float(min_backlog))
    final = samples[-1]
    one_club = (
        num_pieces is not None
        and final.rarest_copies <= 1
        and final.mode_pieces >= max(2, int(0.8 * num_pieces))
        and final.leechers >= min_backlog
    )
    return StabilityVerdict(
        stable=not unstable,
        samples=len(samples),
        peak_leechers=max(s.leechers for s in samples),
        final_leechers=final.leechers,
        early_mean=early_mean,
        late_mean=late_mean,
        completions=final.completions,
        one_club=one_club,
    )


class StabilityDetector:
    """Swarm-size / chunk-distribution sampler for open-system runs.

    Attach with :meth:`attach`; every *interval* simulated seconds (on
    the swarm's existing fluid-tick grid) it reads the swarm's already
    maintained aggregates — ``global_counts``, ``result.join_times``,
    ``result.departures``, ``result.completions`` — and emits an
    ``on_stability(now, "sample", data)`` event through *observer*.
    :meth:`finalize` emits the ``"finalize"`` verdict from
    :func:`classify_samples`.  Strictly read-only: no randomness, no
    scheduled events, no swarm mutation.
    """

    def __init__(
        self,
        interval: float = 30.0,
        observer: Optional["PeerObserver"] = None,
        warmup_fraction: float = 0.25,
        growth_factor: float = 1.4,
        min_backlog: int = 10,
    ):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.observer = observer
        self.warmup_fraction = warmup_fraction
        self.growth_factor = growth_factor
        self.min_backlog = min_backlog
        self.samples: List[StabilitySample] = []
        self.verdict: Optional[StabilityVerdict] = None
        self._swarm: Optional["Swarm"] = None
        self._next_sample = 0.0

    def attach(self, swarm: "Swarm", observer: Optional["PeerObserver"] = None) -> None:
        """Start sampling *swarm* on its fluid-tick grid."""
        if observer is not None:
            self.observer = observer
        self._swarm = swarm
        self._next_sample = swarm.simulator.now + self.interval
        swarm.on_tick(self._on_tick)

    def _on_tick(self, now: float) -> None:
        if now + 1e-9 < self._next_sample:
            return
        self._next_sample += self.interval
        self.sample(now)

    def sample(self, now: float) -> StabilitySample:
        """Take one observation immediately (also used by the tick hook)."""
        swarm = self._swarm
        if swarm is None:
            raise RuntimeError("detector is not attached to a swarm")
        seeds, leechers = swarm.seeds_and_leechers()
        counts = swarm.availability_snapshot()
        if counts:
            rarest = min(counts)
            mode = max(counts)
            mode_pieces = sum(1 for count in counts if count == mode)
        else:  # pragma: no cover - zero-piece torrents don't exist
            rarest = mode = mode_pieces = 0
        sample = StabilitySample(
            now=now,
            seeds=seeds,
            leechers=leechers,
            arrivals=len(swarm.result.join_times),
            departures=len(swarm.result.departures),
            completions=len(swarm.result.completions),
            rarest_copies=rarest,
            mode_copies=mode,
            mode_pieces=mode_pieces,
        )
        self.samples.append(sample)
        if self.observer is not None:
            self.observer.on_stability(now, "sample", sample.as_dict())
        return sample

    def finalize(self, now: Optional[float] = None) -> StabilityVerdict:
        """Take a last sample, classify the run, emit ``finalize``."""
        if self._swarm is not None:
            when = self._swarm.simulator.now if now is None else now
            self.sample(when)
        else:
            when = 0.0 if now is None else now
        num_pieces = (
            len(self._swarm.availability_snapshot()) if self._swarm is not None else None
        )
        self.verdict = classify_samples(
            self.samples,
            warmup_fraction=self.warmup_fraction,
            growth_factor=self.growth_factor,
            min_backlog=self.min_backlog,
            num_pieces=num_pieces,
        )
        if self.observer is not None:
            self.observer.on_stability(when, "finalize", self.verdict.as_dict())
        return self.verdict
