"""The paper's Table I torrents, scaled for laptop-size simulation.

Each of the 26 monitored torrents is reproduced as a
:class:`TorrentScenario` preserving what drives the paper's results:

* the seeds/leechers *ratio* and whether the torrent is in transient
  state (single slow initial seed that has not yet pushed a full copy)
  or steady state (every piece replicated at least twice);
* the relative content size (piece count scales with the paper's MB);
* the default protocol parameters of §III-C for the local peer
  (20 kB/s upload cap, peer set of 80, 4 unchoke slots, ...).

Populations are divided by a per-torrent scale factor so the largest
torrents stay below ~90 simulated peers; entropy, replication dynamics
and fairness are ratio phenomena and survive this scaling (DESIGN.md §2).

Steady-state torrents are built the way the paper *met* them: the local
peer joins an already-running torrent, so the initial leechers hold
random partial bitfields (every piece already replicated).  Transient
torrents start from scratch: one slow initial seed, empty leechers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from random import Random
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.choke import Choker
from repro.core.rarest_first import PieceSelector
from repro.instrumentation.logger import Instrumentation
from repro.instrumentation.trace import TraceRecorder, TracingObserver
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import Metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.observer import FanoutObserver
from repro.sim.peer import Peer
from repro.sim.swarm import Swarm
from repro.workloads.capacities import (
    CapacityDistribution,
    INTERNET_2005,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.open_system import StabilityDetector

MAX_SIMULATED_PEERS = 90
DEFAULT_PIECE_SIZE = 256 * KIB
DEFAULT_BLOCK_SIZE = 64 * KIB  # 4 blocks/piece keeps runs fast; figure-8
# benches override this with finer blocks.


@dataclass(frozen=True)
class TorrentScenario:
    """One Table-I torrent, with both paper and scaled parameters."""

    torrent_id: int
    paper_seeds: int
    paper_leechers: int
    paper_max_peer_set: int
    paper_size_mb: int
    transient: bool
    """True for the torrents the paper identifies as being in a startup
    (transient) phase: a single slow source, rare pieces present."""

    seeds: int
    leechers: int
    num_pieces: int
    piece_size: int = DEFAULT_PIECE_SIZE
    block_size: int = DEFAULT_BLOCK_SIZE
    duration: float = 3000.0
    initial_seed_upload: float = 24.0 * KIB
    """Upload capacity of the initial seed; the paper estimates ~36 kB/s
    for torrent 8.  Transient scenarios keep this deliberately low so the
    source is the bottleneck."""

    local_join_time: float = 30.0
    almost_complete_joiners: int = 0
    """Peers that join holding almost every piece (the §IV-A.1 artifact)."""

    free_riders: int = 0
    arrival_rate: float = 0.0
    """Poisson arrival rate (peers/s) of fresh leechers during the run."""

    @property
    def paper_ratio(self) -> float:
        if self.paper_leechers == 0:
            return math.inf
        return self.paper_seeds / self.paper_leechers

    @property
    def scaled_ratio(self) -> float:
        if self.leechers == 0:
            return math.inf
        return self.seeds / self.leechers

    @property
    def content_size(self) -> int:
        return self.num_pieces * self.piece_size


def _scale_population(seeds: int, leechers: int) -> (int, int):
    total = seeds + leechers
    if total <= MAX_SIMULATED_PEERS:
        return seeds, leechers
    factor = total / MAX_SIMULATED_PEERS
    scaled_seeds = max(1 if seeds > 0 else 0, round(seeds / factor))
    scaled_leechers = max(2, round(leechers / factor))
    return scaled_seeds, scaled_leechers


def _scale_pieces(size_mb: int) -> int:
    """Sub-linear (cube-root) mapping of content size to piece count.

    Keeps the biggest contents distinguishable (the linear map clamps
    everything above ~540 MB to the same count) while bounding runtime.
    """
    return max(48, min(220, round(16.0 * size_mb ** (1.0 / 3.0))))


def _scenario(
    torrent_id: int,
    seeds: int,
    leechers: int,
    max_peer_set: int,
    size_mb: int,
    transient: bool,
    **overrides,
) -> TorrentScenario:
    scaled_seeds, scaled_leechers = _scale_population(seeds, leechers)
    defaults = dict(
        torrent_id=torrent_id,
        paper_seeds=seeds,
        paper_leechers=leechers,
        paper_max_peer_set=max_peer_set,
        paper_size_mb=size_mb,
        transient=transient,
        seeds=scaled_seeds,
        leechers=scaled_leechers,
        num_pieces=_scale_pieces(size_mb),
        duration=4000.0 if transient else 2600.0,
        # Real torrents are continuously refreshed by new leechers; a
        # sustaining arrival flow keeps the population in rough
        # equilibrium for the duration of the experiment.
        arrival_rate=(
            scaled_leechers / 3000.0 if transient else scaled_leechers / 1100.0
        ),
    )
    defaults.update(overrides)
    return TorrentScenario(**defaults)


# The 26 torrents of Table I.  The transient flag follows §IV:
# torrents 1, 2, 4, 5, 6, 8 and 9 are in a startup phase (low entropy on
# figure 1's top graph, single slow source); the others are steady.
TABLE1: List[TorrentScenario] = [
    _scenario(1, 0, 66, 60, 700, True),
    _scenario(2, 1, 2, 3, 580, True, almost_complete_joiners=1),
    _scenario(3, 1, 29, 34, 350, False),
    _scenario(4, 1, 40, 75, 800, True, almost_complete_joiners=1),
    _scenario(5, 1, 50, 60, 1419, True),
    _scenario(6, 1, 130, 80, 820, True),
    _scenario(7, 1, 713, 80, 700, False),
    _scenario(8, 1, 861, 80, 3000, True),
    _scenario(9, 1, 1055, 80, 2000, True),
    _scenario(10, 1, 1207, 80, 348, False, almost_complete_joiners=1),
    _scenario(11, 1, 1411, 80, 710, False),
    _scenario(12, 3, 612, 80, 1413, False),
    _scenario(13, 9, 30, 35, 350, False),
    _scenario(14, 20, 126, 80, 184, False),
    _scenario(15, 30, 230, 80, 820, False),
    _scenario(16, 50, 18, 40, 600, False),
    _scenario(17, 102, 342, 80, 200, False),
    _scenario(18, 115, 19, 55, 430, False, almost_complete_joiners=1),
    _scenario(19, 160, 5, 17, 6, False),
    _scenario(20, 177, 4657, 80, 2000, False),
    _scenario(21, 462, 180, 80, 2600, False, almost_complete_joiners=1),
    _scenario(22, 514, 1703, 80, 349, False),
    _scenario(23, 1197, 4151, 80, 349, False),
    _scenario(24, 3697, 7341, 80, 349, False),
    _scenario(25, 11641, 5418, 80, 350, False),
    _scenario(26, 12612, 7052, 80, 140, False, almost_complete_joiners=1),
]


def scenario_by_id(torrent_id: int) -> TorrentScenario:
    for scenario in TABLE1:
        if scenario.torrent_id == torrent_id:
            return scenario
    raise KeyError("no Table-I torrent with id %d" % torrent_id)


@dataclass
class ExperimentHarness:
    """One built experiment: the swarm, its instrumented local peer, and
    the trace recorder, ready to :meth:`run`."""

    scenario: TorrentScenario
    swarm: Swarm
    local_peer: Peer
    instrumentation: Instrumentation
    tracer: Optional[TracingObserver] = None
    """Structured-trace emitter for the local peer, when tracing is on."""

    stability: Optional["StabilityDetector"] = None
    """Swarm-stability sampler, attached only for open-system runs."""

    def run(self, duration: Optional[float] = None) -> Instrumentation:
        self.swarm.run(duration if duration is not None else self.scenario.duration)
        if self.stability is not None:
            # Emit the verdict before the trace finalize record so the
            # stability summary sits inside the trace, not after it.
            self.stability.finalize(self.swarm.simulator.now)
        self.instrumentation.finalize()
        if self.tracer is not None:
            self.tracer.finalize(self.swarm.simulator.now)
        return self.instrumentation


def _partial_bitfield(num_pieces: int, fraction: float, rng: Random) -> Bitfield:
    count = max(0, min(num_pieces - 1, round(num_pieces * fraction)))
    have = rng.sample(range(num_pieces), count)
    return Bitfield(num_pieces, have=have)


def build_experiment(
    scenario: TorrentScenario,
    seed: int = 1,
    capacities: Optional[CapacityDistribution] = None,
    local_config: Optional[PeerConfig] = None,
    local_selector: Optional[PieceSelector] = None,
    local_leecher_choker: Optional[Choker] = None,
    local_seed_choker: Optional[Choker] = None,
    population_selector_factory=None,
    population_seed_choker_factory=None,
    population_leecher_choker_factory=None,
    swarm_config: Optional[SwarmConfig] = None,
    block_size: Optional[int] = None,
    client_mix=None,
    trace_recorder: Optional[TraceRecorder] = None,
    trace_all_peers: bool = False,
    playback_rate: Optional[float] = None,
    playback_startup_pieces: Optional[int] = None,
    depart_on_completion: bool = False,
    flash_crowd_size: int = 0,
    flash_crowd_spread: float = 60.0,
    stability_interval: Optional[float] = None,
    tracker_sampler: Optional[str] = None,
) -> ExperimentHarness:
    """Materialise one Table-I scenario into a runnable experiment.

    The local (instrumented) peer uses the paper's defaults unless
    overridden; the ``population_*_factory`` hooks swap the strategy of
    every *remote* peer (used by the ablation benchmarks).  Pass
    ``client_mix`` (e.g. :data:`repro.workloads.clients.CLIENT_MIX_2005`)
    to give the population heterogeneous client IDs, exercising the
    paper's §III-D identification machinery; the mix draws from a
    dedicated RNG so enabling it does not perturb the scenario's other
    random choices.

    ``trace_recorder`` attaches a structured-trace emitter next to the
    classic instrumentation on the local peer (fanned out, so both see
    identical events); ``trace_all_peers`` additionally traces every
    remote peer — including churn arrivals — into the same recorder.
    Tracing draws no randomness, so a traced run's simulation outcome is
    identical to an untraced one with the same seed.

    ``playback_rate`` turns the run into a streaming workload: the local
    peer and every population leecher (initial, churn and
    almost-complete joiners; never the seeds) consume the content
    in-order at that many bytes/second, reporting startup delay and
    rebuffer events (see :mod:`repro.sim.playback`).  Pair it with a
    playback-aware ``local_selector``/``population_selector_factory``
    (``seq-window``, ``pfs``) to study streaming-friendly selection;
    left at None the run is byte-identical to a non-streaming one.

    ``depart_on_completion`` turns the run into an *open system*: every
    population leecher (initial, flash-crowd and Poisson arrivals)
    leaves the instant it completes, the regime where plain rarest first
    has a hard stability boundary (see
    :mod:`repro.workloads.open_system`).  ``flash_crowd_size`` adds a
    torrent-birth burst of that many extra leechers inside the first
    ``flash_crowd_spread`` seconds.  ``stability_interval`` attaches a
    :class:`~repro.workloads.open_system.StabilityDetector` sampling the
    swarm every that-many seconds; left at None (the default) no
    detector exists and traces are byte-identical to earlier runs.

    ``tracker_sampler`` selects the tracker's peer-sampling strategy
    (``"uniform"``, ``"seed-biased:seed_fraction=0.5"``,
    ``"rarity-aware:bias=1.0"``); None keeps the default uniform
    sampler with zero behaviour change.
    """
    capacities = capacities or INTERNET_2005
    client_rng = Random(seed ^ 0xC11E)
    metainfo = Metainfo.synthetic(
        "table1-torrent-%d" % scenario.torrent_id,
        scenario.content_size,
        piece_size=scenario.piece_size,
        block_size=block_size or scenario.block_size,
    )
    config = swarm_config or SwarmConfig(seed=seed, duration=scenario.duration)
    if tracker_sampler is not None:
        config.tracker_sampler = tracker_sampler
    swarm = Swarm(metainfo, config)
    if trace_recorder is not None and trace_all_peers:
        # Installed before any peer is added, so the initial population,
        # scheduled arrivals and churn joiners are all covered.
        swarm.observer_factory = lambda: TracingObserver(trace_recorder)
    rng = Random(seed ^ 0x5EED)

    def remote_kwargs() -> Dict:
        kwargs: Dict = {}
        if population_selector_factory is not None:
            kwargs["selector"] = population_selector_factory()
        if population_seed_choker_factory is not None:
            kwargs["seed_choker"] = population_seed_choker_factory()
        if population_leecher_choker_factory is not None:
            kwargs["leecher_choker"] = population_leecher_choker_factory()
        return kwargs

    def leecher_config(upload: float, download: Optional[float]) -> PeerConfig:
        client_id = "M4-0-2"
        if client_mix is not None:
            from repro.workloads.clients import sample_client_id

            client_id = sample_client_id(client_rng, client_mix)
        kwargs: Dict = {}
        if playback_rate is not None:
            kwargs["playback_rate"] = playback_rate
            if playback_startup_pieces is not None:
                kwargs["playback_startup_pieces"] = playback_startup_pieces
        seeding_time = rng.expovariate(1.0 / 400.0)
        if depart_on_completion:
            seeding_time = 0.0
        return PeerConfig(
            upload_capacity=upload,
            download_capacity=download,
            seeding_time=seeding_time,
            client_id=client_id,
            **kwargs,
        )

    # Initial seeds.  The first one is "the initial seed" of transient
    # scenarios and gets the scenario's (slow) capacity; extra seeds get
    # population capacities.
    for index in range(scenario.seeds):
        if index == 0:
            upload = scenario.initial_seed_upload
            download = None
        else:
            upload, download = capacities.sample(rng)
        swarm.add_peer(
            config=PeerConfig(upload_capacity=upload, download_capacity=download),
            is_seed=True,
            **remote_kwargs(),
        )

    # Initial leechers.  Steady-state torrents are met mid-life: leechers
    # already hold random partial bitfields, so every piece is replicated.
    # Transient torrents start empty behind a single slow source.
    for index in range(scenario.leechers):
        upload, download = capacities.sample(rng)
        bitfield = None
        if not scenario.transient and scenario.seeds > 0:
            bitfield = _partial_bitfield(
                metainfo.geometry.num_pieces, rng.uniform(0.1, 0.6), rng
            )
        if scenario.transient and scenario.torrent_id == 1 and index == 0:
            # Torrent 1 has no seed at all: one leecher holds most of the
            # content and the rest of the pieces are simply missing.
            bitfield = _partial_bitfield(metainfo.geometry.num_pieces, 0.92, rng)
        swarm.schedule_arrival(
            rng.uniform(0.0, 20.0),
            config=leecher_config(upload, download),
            initial_bitfield=bitfield,
            **remote_kwargs(),
        )

    for __ in range(scenario.almost_complete_joiners):
        upload, download = capacities.sample(rng)
        swarm.schedule_arrival(
            rng.uniform(
                scenario.local_join_time, scenario.local_join_time + 600.0
            ),
            config=leecher_config(upload, download),
            initial_bitfield=_partial_bitfield(
                metainfo.geometry.num_pieces, 0.97, rng
            ),
            **remote_kwargs(),
        )

    for __ in range(scenario.free_riders):
        from repro.core.free_rider import FreeRiderChoker

        __unused, download = capacities.sample(rng)
        swarm.schedule_arrival(
            rng.uniform(0.0, 20.0),
            config=PeerConfig(upload_capacity=0.0, download_capacity=download),
            leecher_choker=FreeRiderChoker(),
            seed_choker=FreeRiderChoker(),
        )

    if flash_crowd_size > 0:
        from repro.sim.churn import flash_crowd

        flash_crowd(
            swarm,
            flash_crowd_size,
            config_factory=lambda r: leecher_config(*capacities.sample(r)),
            rng=Random(seed ^ 0xF1A5),
            spread=flash_crowd_spread,
            kwargs_factory=remote_kwargs,
        )

    if scenario.arrival_rate > 0:
        from repro.sim.churn import open_system_arrivals, poisson_arrivals

        # leecher_config already pins seeding_time to 0 in open systems;
        # open_system_arrivals re-asserts it so ad-hoc config factories
        # can't reintroduce lingering seeds.
        arrivals = open_system_arrivals if depart_on_completion else poisson_arrivals
        arrivals(
            swarm,
            scenario.arrival_rate,
            scenario.duration + scenario.local_join_time,
            config_factory=lambda r: leecher_config(*capacities.sample(r)),
            rng=Random(seed ^ 0xA221),
            kwargs_factory=remote_kwargs,
        )

    # The instrumented local peer: paper defaults (20 kB/s upload cap,
    # unconstrained download).
    instrumentation = Instrumentation()
    tracer = (
        TracingObserver(trace_recorder) if trace_recorder is not None else None
    )
    local_observer = (
        instrumentation
        if tracer is None
        else FanoutObserver(instrumentation, tracer)
    )
    local_config = local_config or PeerConfig()
    if playback_rate is not None:
        local_config = replace(
            local_config,
            playback_rate=playback_rate,
            playback_startup_pieces=(
                playback_startup_pieces
                if playback_startup_pieces is not None
                else local_config.playback_startup_pieces
            ),
        )
    stability = None
    if stability_interval is not None:
        from repro.workloads.open_system import StabilityDetector

        stability = StabilityDetector(
            interval=stability_interval, observer=local_observer
        )
        stability.attach(swarm)

    local_holder: Dict[str, Peer] = {}

    def add_local() -> None:
        local_holder["peer"] = swarm.add_peer(
            config=local_config,
            selector=local_selector,
            leecher_choker=local_leecher_choker,
            seed_choker=local_seed_choker,
            observer=local_observer,
        )
        instrumentation.start_sampling()

    swarm.simulator.schedule(scenario.local_join_time, add_local)
    # Run to the join instant so the harness can expose the local peer.
    swarm.simulator.run_until(scenario.local_join_time)
    return ExperimentHarness(
        scenario=scenario,
        swarm=swarm,
        local_peer=local_holder["peer"],
        instrumentation=instrumentation,
        tracer=tracer,
        stability=stability,
    )


def scaled_copy(scenario: TorrentScenario, **overrides) -> TorrentScenario:
    """A copy of *scenario* with fields replaced (for ablations)."""
    return replace(scenario, **overrides)
