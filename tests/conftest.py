"""Shared fixtures and builders for integration tests."""

from typing import Optional

import pytest

from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm


def tiny_swarm(
    num_pieces: int = 8,
    piece_size: int = 4 * KIB,
    block_size: int = 1 * KIB,
    seed: int = 7,
    verify_hashes: bool = False,
    name: str = "tiny",
    swarm_config: Optional[SwarmConfig] = None,
) -> Swarm:
    """A small torrent with fast-to-simulate geometry."""
    metainfo = make_metainfo(
        name, num_pieces=num_pieces, piece_size=piece_size, block_size=block_size
    )
    config = swarm_config or SwarmConfig(
        seed=seed, verify_piece_hashes=verify_hashes, snapshot_interval=5.0
    )
    return Swarm(metainfo, config)


def fast_config(upload: float = 8 * KIB, download: Optional[float] = None, **kwargs):
    return PeerConfig(upload_capacity=upload, download_capacity=download, **kwargs)


@pytest.fixture
def swarm():
    return tiny_swarm()
