"""Differential trace-equivalence harness for the mega-swarm engine.

The fast engine paths — numpy max-min allocator, calendar-queue event
wheel, shared availability matrix with the fused HAVE fan-out, and the
binary trace container — are each *claimed* to be observably identical
to the reference implementations they replace.  This suite pins those
claims down three ways:

* **property tests** drive the two allocators over random networks and
  require bit-identical rates (not approximately equal: the reference
  was restructured so both charge residuals with the same arithmetic);
* **differential swarm runs** execute the same seeded scenario once per
  engine configuration and require identical trace fingerprints and
  final swarm state — including under churn, faults, and rejoins;
* **format tests** require the binary trace to reproduce the JSONL
  trace byte for byte, and to fail loudly when truncated or corrupted.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.instrumentation import (
    BinaryTraceRecorder,
    TraceRecorder,
    TracingObserver,
    binary_to_jsonl,
    iter_trace,
    jsonl_to_binary,
    replay_instrumentation,
)
from repro.instrumentation.replay import TraceFormatError
from repro.protocol.metainfo import make_metainfo
from repro.sim.bandwidth import (
    HAVE_NUMPY,
    Flow,
    max_min_allocation,
    max_min_allocation_numpy,
    resolve_allocator,
)
from repro.sim.config import KIB, FaultConfig, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

from random import Random

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

# The reference engine configuration: every fast path disabled.
REFERENCE_EXTRA = {
    "availability_backend": "index",
    "have_fanout": "unbatched",
    "allocator": "reference",
    "event_queue": "heap",
}


# ---------------------------------------------------------------------------
# allocator property suite
# ---------------------------------------------------------------------------

@st.composite
def networks(draw):
    """A random bipartite flow network with optional capacity gaps."""
    num_nodes = draw(st.integers(min_value=1, max_value=8))
    nodes = ["n%d" % i for i in range(num_nodes)]
    caps = st.one_of(
        st.none(),  # unconstrained direction
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    )
    uploads = {
        node: cap
        for node in nodes
        if (cap := draw(caps, label="upload %s" % node)) is not None
    }
    downloads = {
        node: cap
        for node in nodes
        if (cap := draw(caps, label="download %s" % node)) is not None
    }
    num_flows = draw(st.integers(min_value=0, max_value=24))
    pairs = st.tuples(st.sampled_from(nodes), st.sampled_from(nodes))
    flows = [draw(pairs) for __ in range(num_flows)]
    return flows, uploads, downloads


@needs_numpy
class TestAllocatorEquivalence:
    @given(networks())
    @settings(max_examples=200, deadline=None)
    def test_numpy_matches_reference_bit_for_bit(self, network):
        pairs, uploads, downloads = network
        reference = [Flow(u, d) for u, d in pairs]
        vectorized = [Flow(u, d) for u, d in pairs]
        max_min_allocation(reference, uploads, downloads)
        max_min_allocation_numpy(vectorized, uploads, downloads)
        # Bit-identical, not approximately equal: both paths perform the
        # same residual arithmetic in the same order.
        assert [f.rate for f in reference] == [f.rate for f in vectorized]

    @given(networks())
    @settings(max_examples=100, deadline=None)
    def test_numpy_allocation_is_feasible(self, network):
        pairs, uploads, downloads = network
        flows = [Flow(u, d) for u, d in pairs]
        max_min_allocation_numpy(flows, uploads, downloads)
        tolerance = 1e-6
        for node, cap in uploads.items():
            used = sum(f.rate for f in flows if f.uploader == node)
            if used != float("inf"):
                assert used <= cap + tolerance
        for node, cap in downloads.items():
            used = sum(f.rate for f in flows if f.downloader == node)
            if used != float("inf"):
                assert used <= cap + tolerance

    def test_resolve_allocator_names(self):
        assert resolve_allocator("reference") is max_min_allocation
        assert resolve_allocator("numpy") is max_min_allocation_numpy
        assert resolve_allocator("auto") in (
            max_min_allocation,
            max_min_allocation_numpy,
        )
        with pytest.raises(ValueError):
            resolve_allocator("no-such-allocator")


# ---------------------------------------------------------------------------
# differential swarm runs
# ---------------------------------------------------------------------------

def run_swarm(
    extra,
    seed=17,
    leechers=12,
    pieces=128,
    horizon=150.0,
    churn=False,
    faults=None,
    recorder=None,
):
    """One seeded scenario; returns (fingerprint, state, swarm)."""
    metainfo = make_metainfo(
        "equiv", num_pieces=pieces, piece_size=4 * KIB, block_size=4 * KIB
    )
    config = SwarmConfig(seed=seed, extra=dict(extra), faults=faults)
    swarm = Swarm(metainfo, config)
    if recorder is not None:
        swarm.observer_factory = lambda: TracingObserver(recorder)
    rng = Random(seed)
    swarm.add_peer(
        config=PeerConfig(upload_capacity=64 * KIB), is_seed=True
    )
    for index in range(leechers):
        peer_config = PeerConfig(
            upload_capacity=rng.choice([16, 32, 64]) * KIB,
            seeding_time=rng.uniform(5.0, 30.0) if churn and index % 3 == 0 else None,
        )
        swarm.schedule_arrival(rng.uniform(0.0, 30.0), config=peer_config)
    result = swarm.run(horizon)
    fingerprint = None
    if recorder is not None and isinstance(recorder, TraceRecorder):
        fingerprint = recorder.close()
    state = (
        result.bytes_moved,
        result.first_full_copy_at,
        sorted(result.completions.items()),
        {
            address: sorted(peer.bitfield.have_set)
            for address, peer in swarm.peers.items()
        },
    )
    return fingerprint, state, swarm


@needs_numpy
class TestEngineDifferential:
    def test_fast_path_trace_equals_reference(self):
        fast = TraceRecorder()
        reference = TraceRecorder()
        fast_fp, fast_state, __ = run_swarm({}, recorder=fast)
        ref_fp, ref_state, __ = run_swarm(REFERENCE_EXTRA, recorder=reference)
        assert fast_fp == ref_fp
        assert fast_state == ref_state

    def test_wheel_trace_equals_heap(self):
        heap = TraceRecorder()
        wheel = TraceRecorder()
        heap_fp, heap_state, __ = run_swarm(
            {"event_queue": "heap"}, recorder=heap
        )
        wheel_fp, wheel_state, __ = run_swarm(
            {"event_queue": "wheel"}, recorder=wheel
        )
        assert heap_fp == wheel_fp
        assert heap_state == wheel_state

    def test_wheel_bucket_width_does_not_change_the_trace(self):
        fingerprints = set()
        for width in (0.05, 0.25, 2.0):
            recorder = TraceRecorder()
            fp, __, __ = run_swarm(
                {"event_queue": "wheel", "bucket_width": width},
                recorder=recorder,
            )
            fingerprints.add(fp)
        assert len(fingerprints) == 1

    def test_fast_path_equals_reference_under_churn(self):
        fast_fp, fast_state, __ = run_swarm(
            {}, churn=True, recorder=TraceRecorder()
        )
        ref_fp, ref_state, __ = run_swarm(
            REFERENCE_EXTRA, churn=True, recorder=TraceRecorder()
        )
        assert fast_fp == ref_fp
        assert fast_state == ref_state

    def test_allocator_choice_invisible_under_faults(self):
        # Faults disable the fused fan-out automatically; the allocator
        # and availability backend still run and must stay invisible.
        faults = FaultConfig(
            message_loss_rate=0.02,
            crash_probability=0.05,
            crash_interval=20.0,
        )
        fast_fp, fast_state, __ = run_swarm(
            {}, faults=faults, recorder=TraceRecorder()
        )
        ref_fp, ref_state, __ = run_swarm(
            REFERENCE_EXTRA, faults=faults, recorder=TraceRecorder()
        )
        assert fast_fp == ref_fp
        assert fast_state == ref_state

    def test_leave_and_rejoin_reacquires_matrix_slot(self):
        metainfo = make_metainfo(
            "rejoin", num_pieces=16, piece_size=4 * KIB, block_size=4 * KIB
        )
        swarm = Swarm(metainfo, SwarmConfig(seed=3))
        seed_peer = swarm.add_peer(
            config=PeerConfig(upload_capacity=64 * KIB), is_seed=True
        )
        leecher = swarm.add_peer(config=PeerConfig(upload_capacity=64 * KIB))
        swarm.run(20.0)
        leecher.leave()
        if leecher.picker.availability_backend == "matrix":
            assert leecher.picker.matrix_slot is None
        leecher.join()
        if leecher.picker.availability_backend == "matrix":
            assert leecher.picker.matrix_slot is not None
        swarm.run(200.0)
        assert leecher.bitfield.is_complete()
        assert seed_peer.is_seed


class TestFlowCacheUnderChurn:
    def test_cached_rates_survive_crash_hammer(self):
        """The per-tick allocation cache must stay coherent while peers
        crash and links are reaped: forcing a recompute on every tick
        must not change any outcome (regression: stale cached rates for
        departed uploaders)."""

        def run_once(force_recompute):
            metainfo = make_metainfo(
                "hammer", num_pieces=32, piece_size=4 * KIB, block_size=4 * KIB
            )
            faults = FaultConfig(
                crash_probability=0.15,
                crash_interval=5.0,
            )
            swarm = Swarm(
                metainfo,
                SwarmConfig(seed=29, tick_interval=1.0, faults=faults),
            )
            swarm.add_peer(
                config=PeerConfig(upload_capacity=32 * KIB), is_seed=True
            )
            for __ in range(8):
                swarm.add_peer(config=PeerConfig(upload_capacity=16 * KIB))
            if force_recompute:
                def invalidate(now):
                    swarm._members_generation += 1

                swarm.on_tick(invalidate)
            result = swarm.run(120.0)
            return (
                result.bytes_moved,
                sorted(result.completions.items()),
                {a: p.bitfield.count for a, p in swarm.peers.items()},
            )

        assert run_once(False) == run_once(True)


# ---------------------------------------------------------------------------
# binary trace format
# ---------------------------------------------------------------------------

def traced_pair(tmp_path=None):
    """The same tiny run recorded by the JSONL and binary recorders."""
    jsonl = TraceRecorder()
    run_swarm({}, seed=5, leechers=4, pieces=32, horizon=80.0, recorder=jsonl)
    jsonl.close()
    binary = BinaryTraceRecorder()
    run_swarm({}, seed=5, leechers=4, pieces=32, horizon=80.0, recorder=binary)
    binary.close()
    return jsonl, binary


class TestBinaryTrace:
    def test_live_binary_recorder_reproduces_jsonl_bytes(self):
        jsonl, binary = traced_pair()
        assert binary_to_jsonl(binary) == jsonl.lines()

    def test_fingerprints_agree_across_formats(self):
        jsonl, binary = traced_pair()
        events_jsonl = iter_trace(jsonl)
        events_binary = iter_trace(binary_to_jsonl(binary))
        assert events_jsonl == events_binary
        assert jsonl.events_emitted == binary.events_emitted

    def test_round_trip_is_byte_identical(self):
        jsonl, __ = traced_pair()
        binary_one = jsonl_to_binary(jsonl.lines())
        lines = binary_to_jsonl(binary_one)
        binary_two = jsonl_to_binary(lines)
        assert lines == jsonl.lines()
        assert binary_one == binary_two

    def test_binary_is_substantially_smaller(self):
        jsonl, __ = traced_pair()
        binary = jsonl_to_binary(jsonl.lines())
        jsonl_size = sum(len(line) + 1 for line in jsonl.lines())
        assert len(binary) < jsonl_size / 2

    def test_replay_from_binary_file_matches_jsonl(self, tmp_path):
        jsonl, __ = traced_pair()
        path = os.fspath(tmp_path / "trace.bin")
        jsonl_to_binary(jsonl.lines(), path=path)
        peer = next(
            event["peer"]
            for event in iter_trace(jsonl)
            if event["type"] == "attach"
        )
        from_jsonl = replay_instrumentation(jsonl, peer=peer)
        from_binary = replay_instrumentation(path, peer=peer)
        assert [vars(s) for s in from_jsonl.snapshots] == [
            vars(s) for s in from_binary.snapshots
        ]

    def test_truncated_binary_fails_loudly(self):
        jsonl, __ = traced_pair()
        binary = jsonl_to_binary(jsonl.lines())
        for cut in (3, 4, len(binary) // 2, len(binary) - 7):
            with pytest.raises(TraceFormatError):
                binary_to_jsonl(binary[:cut])

    def test_corrupt_tag_fails_loudly(self):
        jsonl, __ = traced_pair()
        binary = bytearray(jsonl_to_binary(jsonl.lines()))
        binary[4] = 0x7F  # first record tag -> unknown
        with pytest.raises(TraceFormatError):
            binary_to_jsonl(bytes(binary))

    def test_bad_magic_fails_loudly(self):
        with pytest.raises(TraceFormatError):
            binary_to_jsonl(b"NOPE" + b"\x00" * 64)

    def test_event_count_mismatch_fails_loudly(self):
        jsonl, __ = traced_pair()
        binary = bytearray(jsonl_to_binary(jsonl.lines()))
        # The end record's count field sits right after its tag byte,
        # 37 bytes from the end (4 count + 1 state + 32 fingerprint).
        offset = len(binary) - 37
        binary[offset] ^= 0xFF
        with pytest.raises(TraceFormatError):
            binary_to_jsonl(bytes(binary))

    def test_jsonl_to_binary_rejects_garbage(self):
        with pytest.raises(TraceFormatError):
            jsonl_to_binary(["not json at all"])
        with pytest.raises(TraceFormatError):
            jsonl_to_binary([])
