"""Tests for the figure-analysis modules, on synthetic traces and on
small real swarm runs."""

import math

import pytest

from repro.analysis.entropy import entropy_ratios, summarize_entropy
from repro.analysis.fairness import (
    leecher_contribution,
    seed_contribution,
    seed_service_bytes,
    unchoke_interest_correlation,
)
from repro.analysis.interarrival import interarrival_summary, interarrival_times
from repro.analysis.peerset import peer_set_series
from repro.analysis.replication import (
    linearity_r_squared,
    rarest_set_decay_rate,
    rarest_set_series,
    replication_series,
)
from repro.analysis.stats import cdf, cdf_at, median, pearson, percentile
from repro.instrumentation import Instrumentation
from repro.sim.config import KIB

from tests.conftest import fast_config, tiny_swarm


class TestStats:
    def test_percentile_midpoint(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3.0

    def test_percentile_extremes(self):
        values = [5, 1, 3]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_percentile_single(self):
        assert percentile([7], 0.8) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_cdf(self):
        values, fractions = cdf([3, 1, 2])
        assert values == [1.0, 2.0, 3.0]
        assert fractions == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_cdf_empty(self):
        assert cdf([]) == ([], [])

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == 0.5
        assert cdf_at([], 1.0) == 0.0

    def test_pearson_perfect(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_pearson_degenerate(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0
        assert pearson([1], [2]) == 0.0

    def test_pearson_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_median(self):
        assert median([1, 3, 2]) == 2.0


class TestInterarrival:
    def test_interarrival_times(self):
        assert interarrival_times([0.0, 1.0, 4.0]) == [1.0, 3.0]

    def test_unordered_input_sorted(self):
        assert interarrival_times([4.0, 0.0, 1.0]) == [1.0, 3.0]

    def test_summary_partitions(self):
        trace = Instrumentation()
        trace.piece_completions = [(float(i), i) for i in range(300)]
        summary = interarrival_summary(trace, kind="piece", n=100)
        assert len(summary.all_items) == 299
        assert len(summary.first_n) == 100
        assert len(summary.last_n) == 100

    def test_first_items_problem_detected(self):
        trace = Instrumentation()
        # First 100 pieces arrive slowly (gap 10), the rest quickly (gap 1).
        times, t = [], 0.0
        for i in range(300):
            t += 10.0 if i < 100 else 1.0
            times.append((t, i))
        trace.piece_completions = times
        summary = interarrival_summary(trace, kind="piece", n=100)
        assert summary.first_slowdown() > 2.0
        assert summary.last_slowdown() == pytest.approx(1.0, rel=0.2)

    def test_block_kind(self):
        trace = Instrumentation()
        trace.block_arrivals = [(float(i), 0, i, 16) for i in range(50)]
        summary = interarrival_summary(trace, kind="block", n=10)
        assert summary.median_all == 1.0

    def test_invalid_kind(self):
        trace = Instrumentation()
        trace.piece_completions = [(0.0, 0), (1.0, 1), (2.0, 2)]
        with pytest.raises(ValueError):
            interarrival_summary(trace, kind="chunk")

    def test_too_few_arrivals(self):
        trace = Instrumentation()
        trace.piece_completions = [(0.0, 0)]
        with pytest.raises(ValueError):
            interarrival_summary(trace, kind="piece")

    def test_n_adapts_to_small_traces(self):
        trace = Instrumentation()
        trace.piece_completions = [(float(i), i) for i in range(30)]
        summary = interarrival_summary(trace, kind="piece", n=100)
        assert summary.n == 10


class TestReplicationHelpers:
    def test_decay_rate_linear(self):
        times = [float(t) for t in range(100)]
        sizes = [1000 - 3 * t for t in range(100)]
        rate = rarest_set_decay_rate(times, sizes)
        assert rate == pytest.approx(-3.0)
        assert linearity_r_squared(times, sizes) == pytest.approx(1.0)

    def test_decay_rate_degenerate(self):
        assert rarest_set_decay_rate([1.0], [5]) is None
        assert rarest_set_decay_rate([1.0, 1.0], [5, 6]) is None

    def test_r_squared_constant(self):
        assert linearity_r_squared([0.0, 1.0, 2.0], [5, 5, 5]) is None


class TestOnRealRuns:
    @pytest.fixture(scope="class")
    def completed_run(self):
        swarm = tiny_swarm(num_pieces=24, seed=11)
        swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(6):
            swarm.add_peer(config=fast_config(upload=2 * KIB))
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(upload=4 * KIB), observer=trace)
        trace.start_sampling()
        swarm.run(1200)
        trace.finalize()
        return swarm, local, trace

    def test_entropy_ratios_in_unit_interval(self, completed_run):
        __, __, trace = completed_run
        local_ratios, remote_ratios = entropy_ratios(trace)
        for ratio in local_ratios + remote_ratios:
            assert 0.0 <= ratio <= 1.0

    def test_entropy_summary_percentiles_ordered(self, completed_run):
        __, __, trace = completed_run
        summary = summarize_entropy(trace)
        if summary.local_in_remote:
            assert summary.p20_local <= summary.median_local <= summary.p80_local

    def test_replication_series_from_snapshots(self, completed_run):
        __, __, trace = completed_run
        series = replication_series(trace)
        assert len(series.times) == len(series.min_copies)
        assert all(
            low <= mean <= high
            for low, mean, high in zip(
                series.min_copies, series.mean_copies, series.max_copies
            )
        )

    def test_leecher_only_filter(self, completed_run):
        __, __, trace = completed_run
        all_series = replication_series(trace)
        leecher_series = replication_series(trace, leecher_state_only=True)
        assert len(leecher_series.times) <= len(all_series.times)
        if leecher_series.times:
            assert max(leecher_series.times) <= trace.seed_state_at + 10.0

    def test_rarest_set_series(self, completed_run):
        __, __, trace = completed_run
        times, sizes = rarest_set_series(trace)
        assert len(times) == len(sizes)
        assert all(size >= 0 for size in sizes)

    def test_peer_set_series(self, completed_run):
        swarm, __, trace = completed_run
        times, sizes = peer_set_series(trace)
        assert max(sizes) <= 80
        assert max(sizes) >= 7  # the whole tiny swarm fits in the peer set

    def test_piece_interarrival_summary(self, completed_run):
        __, __, trace = completed_run
        summary = interarrival_summary(trace, kind="piece")
        assert summary.median_all > 0

    def test_contributions(self, completed_run):
        __, __, trace = completed_run
        up_shares, down_shares = leecher_contribution(trace)
        assert len(up_shares) == 6
        assert sum(up_shares) <= 1.0 + 1e-9
        seed_shares = seed_contribution(trace)
        assert len(seed_shares) == 6

    def test_unchoke_correlation_states(self, completed_run):
        __, __, trace = completed_run
        leecher_corr = unchoke_interest_correlation(trace, state="leecher")
        seed_corr = unchoke_interest_correlation(trace, state="seed")
        assert len(leecher_corr.interested_times) == len(leecher_corr.unchoke_counts)
        assert len(seed_corr.interested_times) == len(seed_corr.unchoke_counts)
        assert not math.isnan(leecher_corr.correlation)

    def test_unchoke_correlation_invalid_state(self, completed_run):
        __, __, trace = completed_run
        with pytest.raises(ValueError):
            unchoke_interest_correlation(trace, state="zombie")

    def test_seed_service_bytes(self, completed_run):
        __, local, trace = completed_run
        service = seed_service_bytes(trace)
        assert sum(service.values()) <= local.total_uploaded + 1e-6
