"""Tests for the max-min fair and upload-fair bandwidth allocators."""

from random import Random

import pytest
from hypothesis import given, strategies as st

from repro.sim.bandwidth import (
    Flow,
    allocation_summary,
    max_min_allocation,
    upload_fair_allocation,
)


class TestMaxMin:
    def test_empty(self):
        max_min_allocation([], {}, {})  # must not raise

    def test_single_flow_upload_limited(self):
        flows = [Flow("a", "b")]
        max_min_allocation(flows, {"a": 100.0}, {"b": 1000.0})
        assert flows[0].rate == pytest.approx(100.0)

    def test_single_flow_download_limited(self):
        flows = [Flow("a", "b")]
        max_min_allocation(flows, {"a": 1000.0}, {"b": 100.0})
        assert flows[0].rate == pytest.approx(100.0)

    def test_uploader_splits_equally(self):
        flows = [Flow("a", "b"), Flow("a", "c")]
        max_min_allocation(flows, {"a": 100.0}, {})
        assert flows[0].rate == pytest.approx(50.0)
        assert flows[1].rate == pytest.approx(50.0)

    def test_slow_downloader_frees_capacity_for_other(self):
        # a (100) -> b (capped 10) and a -> c (uncapped): max-min gives
        # b its 10 and the rest (90) to c.
        flows = [Flow("a", "b"), Flow("a", "c")]
        max_min_allocation(flows, {"a": 100.0}, {"b": 10.0})
        rates = {f.downloader: f.rate for f in flows}
        assert rates["b"] == pytest.approx(10.0)
        assert rates["c"] == pytest.approx(90.0)

    def test_download_contention(self):
        flows = [Flow("a", "x"), Flow("b", "x")]
        max_min_allocation(flows, {"a": 100.0, "b": 100.0}, {"x": 60.0})
        assert flows[0].rate == pytest.approx(30.0)
        assert flows[1].rate == pytest.approx(30.0)

    def test_zero_capacity_uploader(self):
        flows = [Flow("a", "b")]
        max_min_allocation(flows, {"a": 0.0}, {})
        assert flows[0].rate == 0.0

    def test_unconstrained_downloader_default(self):
        # Missing download capacity means unconstrained (the paper's
        # monitored client has no download limit).
        flows = [Flow("a", "b")]
        max_min_allocation(flows, {"a": 42.0}, {})
        assert flows[0].rate == pytest.approx(42.0)

    def test_classic_three_flow_example(self):
        # Textbook max-min: sources a,b,c with caps 10, 100, 100 sharing a
        # downloader capped at 150: a gets 10, b and c get 70 each.
        flows = [Flow("a", "x"), Flow("b", "x"), Flow("c", "x")]
        max_min_allocation(
            flows, {"a": 10.0, "b": 100.0, "c": 100.0}, {"x": 150.0}
        )
        rates = {f.uploader: f.rate for f in flows}
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(70.0)
        assert rates["c"] == pytest.approx(70.0)

    def test_allocation_summary(self):
        flows = [Flow("a", "b"), Flow("a", "c"), Flow("d", "b")]
        max_min_allocation(flows, {"a": 100.0, "d": 30.0}, {})
        totals = allocation_summary(flows)
        assert totals["a"] == pytest.approx(100.0)
        assert totals["d"] == pytest.approx(30.0)


class TestUploadFair:
    def test_equal_split(self):
        flows = [Flow("a", "b"), Flow("a", "c")]
        upload_fair_allocation(flows, {"a": 100.0}, {})
        assert flows[0].rate == pytest.approx(50.0)
        assert flows[1].rate == pytest.approx(50.0)

    def test_download_cap_scales_inbound(self):
        flows = [Flow("a", "x"), Flow("b", "x")]
        upload_fair_allocation(flows, {"a": 100.0, "b": 100.0}, {"x": 100.0})
        assert flows[0].rate + flows[1].rate == pytest.approx(100.0)

    def test_no_redistribution(self):
        # Unlike max-min, capacity freed by a capped downloader is lost.
        flows = [Flow("a", "b"), Flow("a", "c")]
        upload_fair_allocation(flows, {"a": 100.0}, {"b": 10.0})
        rates = {f.downloader: f.rate for f in flows}
        assert rates["b"] == pytest.approx(10.0)
        assert rates["c"] == pytest.approx(50.0)


@st.composite
def _random_network(draw):
    num_up = draw(st.integers(1, 6))
    num_down = draw(st.integers(1, 6))
    uploads = {
        "u%d" % i: draw(st.floats(0.0, 1000.0)) for i in range(num_up)
    }
    downloads = {
        "d%d" % i: draw(st.floats(1.0, 1000.0)) for i in range(num_down)
    }
    flows = []
    for __ in range(draw(st.integers(1, 12))):
        up = draw(st.sampled_from(sorted(uploads)))
        down = draw(st.sampled_from(sorted(downloads)))
        flows.append(Flow(up, down))
    return flows, uploads, downloads


@given(_random_network())
def test_property_maxmin_feasible(network):
    """No node's capacity is ever exceeded (within float tolerance)."""
    flows, uploads, downloads = network
    max_min_allocation(flows, uploads, downloads)
    up_totals = {}
    down_totals = {}
    for flow in flows:
        assert flow.rate >= 0.0
        up_totals[flow.uploader] = up_totals.get(flow.uploader, 0.0) + flow.rate
        down_totals[flow.downloader] = (
            down_totals.get(flow.downloader, 0.0) + flow.rate
        )
    for node, total in up_totals.items():
        assert total <= uploads[node] + 1e-6 * max(1.0, uploads[node])
    for node, total in down_totals.items():
        assert total <= downloads[node] + 1e-6 * max(1.0, downloads[node])


@given(_random_network())
def test_property_maxmin_is_maximal(network):
    """No flow can be increased without violating some capacity: every
    flow traverses at least one saturated node."""
    flows, uploads, downloads = network
    max_min_allocation(flows, uploads, downloads)
    up_totals = {}
    down_totals = {}
    for flow in flows:
        up_totals[flow.uploader] = up_totals.get(flow.uploader, 0.0) + flow.rate
        down_totals[flow.downloader] = (
            down_totals.get(flow.downloader, 0.0) + flow.rate
        )
    for flow in flows:
        up_cap = uploads[flow.uploader]
        down_cap = downloads[flow.downloader]
        up_saturated = up_totals[flow.uploader] >= up_cap - 1e-6 * max(1.0, up_cap)
        down_saturated = down_totals[flow.downloader] >= down_cap - 1e-6 * max(
            1.0, down_cap
        )
        assert up_saturated or down_saturated


@pytest.mark.parametrize("seed", range(20))
def test_upload_fair_matches_maxmin_when_upload_constrained(seed):
    """In the paper's regime — upload caps far below download caps — the
    one-pass upload-fair model and full max-min progressive filling must
    agree flow for flow: only uploader links ever saturate, and both
    models then split each uploader's capacity equally over its flows."""
    rng = Random(seed)
    num_up = rng.randint(1, 6)
    num_down = rng.randint(1, 6)
    # Uploads of a few units vs downloads of thousands: the downloader
    # cap can never bind (at most 6 uploaders x 10 units inbound).
    uploads = {"u%d" % i: rng.uniform(1.0, 10.0) for i in range(num_up)}
    downloads = {"d%d" % i: rng.uniform(1000.0, 2000.0) for i in range(num_down)}
    flows = [
        Flow(
            rng.choice(sorted(uploads)),
            rng.choice(sorted(downloads)),
        )
        for __ in range(rng.randint(1, 12))
    ]
    reference = [Flow(f.uploader, f.downloader) for f in flows]
    max_min_allocation(flows, uploads, downloads)
    upload_fair_allocation(reference, uploads, downloads)
    for maxmin_flow, fair_flow in zip(flows, reference):
        assert maxmin_flow.rate == pytest.approx(fair_flow.rate, rel=1e-6)


class TestUnconstrainedFlows:
    def test_fully_unconstrained_flow_is_infinitely_fast(self):
        # Neither endpoint has a capacity entry: the model treats the
        # flow as infinitely fast rather than stalling or raising.
        flows = [Flow("a", "b")]
        max_min_allocation(flows, {}, {})
        assert flows[0].rate == float("inf")

    def test_unconstrained_flow_does_not_starve_constrained_one(self):
        flows = [Flow("a", "x"), Flow("b", "y")]
        max_min_allocation(flows, {"a": 10.0}, {})
        rates = {f.uploader: f.rate for f in flows}
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == float("inf")


@given(_random_network())
def test_property_upload_fair_feasible(network):
    flows, uploads, downloads = network
    upload_fair_allocation(flows, uploads, downloads)
    up_totals = {}
    down_totals = {}
    for flow in flows:
        assert flow.rate >= 0.0
        up_totals[flow.uploader] = up_totals.get(flow.uploader, 0.0) + flow.rate
        down_totals[flow.downloader] = (
            down_totals.get(flow.downloader, 0.0) + flow.rate
        )
    for node, total in up_totals.items():
        assert total <= uploads[node] + 1e-6 * max(1.0, uploads[node])
    for node, total in down_totals.items():
        assert total <= downloads[node] + 1e-6 * max(1.0, downloads[node])
