"""Unit and property tests for the bencoding codec."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol.bencode import BencodeError, bdecode, bencode


class TestEncode:
    def test_integer(self):
        assert bencode(42) == b"i42e"

    def test_negative_integer(self):
        assert bencode(-7) == b"i-7e"

    def test_zero(self):
        assert bencode(0) == b"i0e"

    def test_bytes(self):
        assert bencode(b"spam") == b"4:spam"

    def test_empty_bytes(self):
        assert bencode(b"") == b"0:"

    def test_str_encoded_as_utf8(self):
        assert bencode("café") == b"5:caf\xc3\xa9"

    def test_list(self):
        assert bencode([1, b"a"]) == b"li1e1:ae"

    def test_tuple_as_list(self):
        assert bencode((1, 2)) == b"li1ei2ee"

    def test_nested_list(self):
        assert bencode([[1], []]) == b"lli1eelee"

    def test_dict_keys_sorted_by_raw_bytes(self):
        assert bencode({"b": 1, "a": 2}) == b"d1:ai2e1:bi1ee"

    def test_dict_bytes_keys(self):
        assert bencode({b"k": b"v"}) == b"d1:k1:ve"

    def test_bool_rejected(self):
        with pytest.raises(BencodeError):
            bencode(True)

    def test_float_rejected(self):
        with pytest.raises(BencodeError):
            bencode(1.5)

    def test_none_rejected(self):
        with pytest.raises(BencodeError):
            bencode(None)

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(BencodeError):
            bencode({1: 2})


class TestDecode:
    def test_integer(self):
        assert bdecode(b"i42e") == 42

    def test_negative(self):
        assert bdecode(b"i-42e") == -42

    def test_bytes(self):
        assert bdecode(b"4:spam") == b"spam"

    def test_list(self):
        assert bdecode(b"li1ei2ee") == [1, 2]

    def test_dict(self):
        assert bdecode(b"d1:ai1e1:bi2ee") == {b"a": 1, b"b": 2}

    def test_empty_collections(self):
        assert bdecode(b"le") == []
        assert bdecode(b"de") == {}

    def test_trailing_garbage_rejected(self):
        with pytest.raises(BencodeError):
            bdecode(b"i1ejunk")

    def test_leading_zeros_rejected(self):
        with pytest.raises(BencodeError):
            bdecode(b"i01e")

    def test_negative_zero_rejected(self):
        with pytest.raises(BencodeError):
            bdecode(b"i-0e")

    def test_unterminated_integer(self):
        with pytest.raises(BencodeError):
            bdecode(b"i42")

    def test_unterminated_list(self):
        with pytest.raises(BencodeError):
            bdecode(b"li1e")

    def test_unterminated_dict(self):
        with pytest.raises(BencodeError):
            bdecode(b"d1:a")

    def test_string_too_short(self):
        with pytest.raises(BencodeError):
            bdecode(b"9:abc")

    def test_string_length_leading_zero(self):
        with pytest.raises(BencodeError):
            bdecode(b"04:spam")

    def test_unsorted_dict_keys_rejected(self):
        with pytest.raises(BencodeError):
            bdecode(b"d1:bi1e1:ai2ee")

    def test_duplicate_dict_keys_rejected(self):
        with pytest.raises(BencodeError):
            bdecode(b"d1:ai1e1:ai2ee")

    def test_non_bytes_dict_key_rejected(self):
        with pytest.raises(BencodeError):
            bdecode(b"di1ei2ee")

    def test_empty_input(self):
        with pytest.raises(BencodeError):
            bdecode(b"")

    def test_non_bytes_input(self):
        with pytest.raises(BencodeError):
            bdecode("i1e")  # type: ignore[arg-type]

    def test_unknown_marker(self):
        with pytest.raises(BencodeError):
            bdecode(b"x")


# Hypothesis: arbitrary nested bencodable values survive a round trip.
bencodable = st.recursive(
    st.integers() | st.binary(max_size=64),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.binary(max_size=8), children, max_size=4),
    max_leaves=20,
)


@given(bencodable)
def test_roundtrip(value):
    def normalise(v):
        if isinstance(v, tuple):
            return [normalise(i) for i in v]
        if isinstance(v, list):
            return [normalise(i) for i in v]
        if isinstance(v, dict):
            return {k: normalise(val) for k, val in v.items()}
        return v

    assert bdecode(bencode(value)) == normalise(value)


@given(bencodable)
def test_encoding_is_canonical(value):
    """Encoding is deterministic: encode(decode(encode(x))) == encode(x)."""
    first = bencode(value)
    assert bencode(bdecode(first)) == first


@given(st.binary(max_size=32))
def test_decoder_never_crashes_unexpectedly(data):
    """Arbitrary bytes either decode or raise BencodeError — nothing else."""
    try:
        bdecode(data)
    except BencodeError:
        pass
