"""Unit and property tests for the piece-ownership bitfield."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol.bitfield import Bitfield


class TestBasics:
    def test_starts_empty(self):
        field = Bitfield(10)
        assert field.count == 0
        assert field.missing == 10
        assert field.is_empty()
        assert not field.is_complete()

    def test_set_and_has(self):
        field = Bitfield(10)
        assert field.set(3)
        assert field.has(3)
        assert not field.has(4)
        assert field.count == 1

    def test_set_idempotent(self):
        field = Bitfield(10)
        assert field.set(3)
        assert not field.set(3)
        assert field.count == 1

    def test_clear(self):
        field = Bitfield(10, have=[3])
        assert field.clear(3)
        assert not field.clear(3)
        assert field.count == 0

    def test_constructor_with_have(self):
        field = Bitfield(10, have=[0, 9])
        assert field.has(0) and field.has(9)
        assert field.count == 2

    def test_out_of_range_rejected(self):
        field = Bitfield(10)
        with pytest.raises(IndexError):
            field.has(10)
        with pytest.raises(IndexError):
            field.set(-1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitfield(-1)

    def test_zero_pieces(self):
        field = Bitfield(0)
        assert field.is_complete()  # vacuously: no pieces missing
        assert field.count == 0

    def test_full(self):
        field = Bitfield.full(13)
        assert field.is_complete()
        assert field.count == 13
        assert list(field.missing_indices()) == []

    def test_copy_is_independent(self):
        field = Bitfield(8, have=[1])
        clone = field.copy()
        clone.set(2)
        assert not field.has(2)
        assert clone.count == 2

    def test_len_and_contains(self):
        field = Bitfield(8, have=[2])
        assert len(field) == 8
        assert 2 in field
        assert 3 not in field
        assert 100 not in field


class TestIteration:
    def test_have_indices(self):
        field = Bitfield(10, have=[9, 0, 4])
        assert list(field.have_indices()) == [0, 4, 9]

    def test_missing_indices(self):
        field = Bitfield(4, have=[1, 2])
        assert list(field.missing_indices()) == [0, 3]


class TestInterest:
    def test_interesting_when_other_has_missing_piece(self):
        ours = Bitfield(5, have=[0])
        theirs = Bitfield(5, have=[0, 1])
        assert ours.interesting_in(theirs)

    def test_not_interesting_when_subset(self):
        ours = Bitfield(5, have=[0, 1])
        theirs = Bitfield(5, have=[0])
        assert not ours.interesting_in(theirs)

    def test_not_interesting_in_equal(self):
        ours = Bitfield(5, have=[2])
        theirs = Bitfield(5, have=[2])
        assert not ours.interesting_in(theirs)

    def test_seed_not_interesting_in_anyone(self):
        ours = Bitfield.full(5)
        theirs = Bitfield(5, have=[0, 1, 2, 3])
        assert not ours.interesting_in(theirs)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Bitfield(5).interesting_in(Bitfield(6))

    def test_pieces_only_in(self):
        ours = Bitfield(6, have=[0, 2])
        theirs = Bitfield(6, have=[0, 1, 5])
        assert list(ours.pieces_only_in(theirs)) == [1, 5]


class TestWireFormat:
    def test_roundtrip(self):
        field = Bitfield(12, have=[0, 5, 11])
        recovered = Bitfield.from_bytes(field.to_bytes(), 12)
        assert recovered == field
        assert recovered.count == 3

    def test_msb_first_bit_order(self):
        field = Bitfield(8, have=[0])
        assert field.to_bytes() == b"\x80"

    def test_spare_bits_must_be_zero(self):
        with pytest.raises(ValueError):
            Bitfield.from_bytes(b"\xff", 4)  # low nibble is spare

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Bitfield.from_bytes(b"\x00\x00", 4)

    def test_full_last_byte_masked(self):
        field = Bitfield.full(9)
        data = field.to_bytes()
        assert data == b"\xff\x80"


@given(st.integers(1, 200), st.data())
def test_property_count_matches_indices(num_pieces, data):
    have = data.draw(
        st.lists(st.integers(0, num_pieces - 1), unique=True, max_size=num_pieces)
    )
    field = Bitfield(num_pieces, have=have)
    assert field.count == len(have)
    assert sorted(have) == list(field.have_indices())
    assert field.count + field.missing == num_pieces


@given(st.integers(1, 200), st.data())
def test_property_wire_roundtrip(num_pieces, data):
    have = data.draw(
        st.lists(st.integers(0, num_pieces - 1), unique=True, max_size=num_pieces)
    )
    field = Bitfield(num_pieces, have=have)
    assert Bitfield.from_bytes(field.to_bytes(), num_pieces) == field


@given(st.integers(1, 100), st.data())
def test_property_interest_antisymmetry_on_disjoint(num_pieces, data):
    """With disjoint non-empty holdings, interest is mutual."""
    indices = list(range(num_pieces))
    split = data.draw(st.integers(1, max(1, num_pieces - 1)))
    a = Bitfield(num_pieces, have=indices[:split])
    b = Bitfield(num_pieces, have=indices[split:])
    if a.count and b.count:
        assert a.interesting_in(b)
        assert b.interesting_in(a)


@given(st.integers(1, 100), st.data())
def test_property_interest_definition(num_pieces, data):
    """interesting_in matches the set-theoretic definition."""
    ours = set(
        data.draw(st.lists(st.integers(0, num_pieces - 1), unique=True))
    )
    theirs = set(
        data.draw(st.lists(st.integers(0, num_pieces - 1), unique=True))
    )
    a = Bitfield(num_pieces, have=ours)
    b = Bitfield(num_pieces, have=theirs)
    assert a.interesting_in(b) == bool(theirs - ours)
    assert set(a.pieces_only_in(b)) == theirs - ours
