"""Tests for the campaign subsystem (spec, cache, runner, CLI).

The runner-semantics tests drive :class:`CampaignRunner` with tiny
module-level fake executors (picklable, so they also run in real worker
processes); the end-to-end tests run real simulations on the smallest
Table-I torrents under the ``smoke`` scenario.
"""

import json
import os
import random
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    SCENARIOS,
    ShardCache,
    ShardSpec,
    derive_shard_seed,
    execute_shard,
    expand_spec,
    manifest_fingerprint,
    parse_torrent_ids,
    shard_cache_key,
)
from repro.cli import main as cli_main

SMOKE = {"scenarios": ("smoke",)}


def smoke_spec(torrent_ids, **overrides):
    kwargs = {"name": "test", "torrent_ids": tuple(torrent_ids)}
    kwargs.update(SMOKE)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


# ---------------------------------------------------------------------------
# Fake executors (module level: picklable into real worker processes).
# ---------------------------------------------------------------------------

def fake_ok(payload):
    return {
        "status": "ok",
        "cache_hit": False,
        "trace_fingerprint": "fp-%s" % payload["seed"],
    }


def fake_fail(payload):
    raise ValueError("shard %d is cursed" % payload["torrent_id"])


def fake_sleep(payload):
    time.sleep(5.0)
    return {"status": "ok", "cache_hit": False}


def fake_crash_once(payload):
    marker = os.environ["REPRO_TEST_CRASH_MARKER"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed")
        os._exit(1)  # hard kill: breaks the whole process pool
    return fake_ok(payload)


# ---------------------------------------------------------------------------
# Spec expansion and seed derivation
# ---------------------------------------------------------------------------

class TestSpecExpansion:
    def test_default_campaign_is_the_paper_matrix(self):
        shards = expand_spec(CampaignSpec())
        assert len(shards) == 26
        assert [s.torrent_id for s in shards] == list(range(1, 27))
        assert shards[0].shard_id == "t01-paper-r0"
        assert shards[-1].shard_id == "t26-paper-r0"

    def test_cross_product_count_and_order(self):
        spec = CampaignSpec(
            torrent_ids=(2, 3), scenarios=("paper", "smoke"), replicates=2
        )
        shards = expand_spec(spec)
        assert len(shards) == 2 * 2 * 2
        # torrent-major, then scenario position, then replicate.
        assert [s.shard_id for s in shards] == [
            "t02-paper-r0", "t02-paper-r1", "t02-smoke-r0", "t02-smoke-r1",
            "t03-paper-r0", "t03-paper-r1", "t03-smoke-r0", "t03-smoke-r1",
        ]

    def test_filter_glob_and_substring(self):
        spec = CampaignSpec(torrent_ids=(2, 3, 13), scenarios=("paper", "smoke"))
        assert [
            s.shard_id for s in expand_spec(spec, shard_filter="t03-*")
        ] == ["t03-paper-r0", "t03-smoke-r0"]
        assert [
            s.shard_id for s in expand_spec(spec, shard_filter="smoke")
        ] == ["t02-smoke-r0", "t03-smoke-r0", "t13-smoke-r0"]

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            expand_spec(CampaignSpec(scenarios=("nonsense",)))

    def test_spec_duration_beats_variant_duration(self):
        assert SCENARIOS["smoke"].duration == 240.0
        shards = expand_spec(smoke_spec((2,), duration=99.0))
        assert shards[0].duration == 99.0
        shards = expand_spec(smoke_spec((2,)))
        assert shards[0].duration == 240.0

    def test_faults_variant_sets_preset(self):
        shards = expand_spec(
            CampaignSpec(torrent_ids=(2,), scenarios=("faults-light",))
        )
        assert shards[0].faults == "light"

    def test_payload_roundtrip(self):
        shard = expand_spec(smoke_spec((7,)))[0]
        assert ShardSpec.from_payload(shard.as_payload()) == shard

    def test_parse_torrent_ids(self):
        assert parse_torrent_ids("all") == tuple(range(1, 27))
        assert parse_torrent_ids("1,2,7-9") == (1, 2, 7, 8, 9)
        assert parse_torrent_ids("3,3,3") == (3,)
        with pytest.raises(ValueError):
            parse_torrent_ids("27")


class TestSeedDerivation:
    def test_paper_replicate0_preserves_historical_stream(self):
        for torrent_id in (1, 8, 26):
            assert derive_shard_seed(3, torrent_id, "paper", 0) == 3 + 37 * torrent_id

    def test_other_coordinates_draw_independent_streams(self):
        seeds = {
            derive_shard_seed(3, tid, scenario, replicate)
            for tid in range(1, 27)
            for scenario in ("paper", "smoke", "faults-light")
            for replicate in range(3)
        }
        assert len(seeds) == 26 * 3 * 3  # no collisions anywhere
        # And the hashed streams are nowhere near the historical ones.
        assert derive_shard_seed(3, 5, "smoke", 0) != derive_shard_seed(3, 5, "paper", 0)
        assert derive_shard_seed(3, 5, "paper", 1) != derive_shard_seed(3, 5, "paper", 0)

    def test_derivation_is_pure(self):
        a = derive_shard_seed(17, 9, "smoke", 2)
        b = derive_shard_seed(17, 9, "smoke", 2)
        assert a == b


# ---------------------------------------------------------------------------
# Content-addressed cache
# ---------------------------------------------------------------------------

class TestCacheKey:
    def test_same_spec_same_key(self):
        shard = expand_spec(smoke_spec((2,)))[0]
        rebuilt = ShardSpec.from_payload(shard.as_payload())
        assert shard_cache_key(shard) == shard_cache_key(rebuilt)

    def test_any_coordinate_change_changes_the_key(self):
        base = expand_spec(smoke_spec((2,)))[0]
        variants = [
            expand_spec(smoke_spec((2,), campaign_seed=4))[0],       # seed
            expand_spec(CampaignSpec(torrent_ids=(2,)))[0],          # scenario
            expand_spec(smoke_spec((3,)))[0],                        # torrent
            expand_spec(smoke_spec((2,), replicates=2))[1],          # replicate
            expand_spec(smoke_spec((2,), block_size=32768))[0],      # block size
            expand_spec(smoke_spec((2,), duration=60.0))[0],         # duration
        ]
        keys = {shard_cache_key(s) for s in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_load_requires_record_and_trace(self, tmp_path):
        cache = ShardCache(tmp_path)
        key = "a" * 64
        assert cache.load(key) is None
        # Record without its trace: incomplete, reads as a miss.
        cache.record_path(key).write_text(json.dumps({"key": key, "status": "ok"}))
        assert cache.load(key) is None
        cache.trace_path(key).write_text("")
        assert cache.load(key)["status"] == "ok"
        # A record that self-identifies with a different key is a miss.
        cache.record_path(key).write_text(json.dumps({"key": "b" * 64}))
        assert cache.load(key) is None

    def test_store_commits_trace_then_record(self, tmp_path):
        cache = ShardCache(tmp_path)
        key = "c" * 64
        tmp = cache.trace_tmp_path(key)
        tmp.write_text('{"type":"x"}\n')
        cache.store(key, {"key": key, "status": "ok"}, trace_tmp=tmp)
        assert not tmp.exists()
        assert cache.load(key)["status"] == "ok"
        assert key in cache.keys()
        cache.remove(key)
        assert cache.load(key) is None and cache.keys() == []


# ---------------------------------------------------------------------------
# Runner failure semantics (fake executors)
# ---------------------------------------------------------------------------

class TestRunnerSemantics:
    def test_retry_then_fail_bookkeeping(self):
        runner = CampaignRunner(
            smoke_spec((2, 3)), workers=1, retries=2, executor=fake_fail
        )
        result = runner.run()
        assert result.counts == {
            "shards": 2, "ok": 0, "failed": 2, "timeout": 0,
            "cache_hits": 0, "executed": 2,
        }
        for entry in result.manifest["shards"]:
            assert entry["status"] == "failed"
            assert entry["attempts"] == 3  # 1 try + 2 retries
            assert len(entry["errors"]) == 3
            assert "cursed" in entry["errors"][0]
        assert [e["shard_id"] for e in result.failed_shards()] == [
            "t02-smoke-r0", "t03-smoke-r0",
        ]

    def test_failure_does_not_abort_other_shards(self):
        def mixed(payload):
            if payload["torrent_id"] == 3:
                raise ValueError("boom")
            return fake_ok(payload)

        runner = CampaignRunner(
            smoke_spec((2, 3, 4)), workers=1, retries=0, executor=mixed
        )
        result = runner.run()
        assert result.counts["ok"] == 2 and result.counts["failed"] == 1

    def test_timeout_is_recorded_not_retried(self):
        runner = CampaignRunner(
            smoke_spec((2,)), workers=1, timeout=0.2, retries=3,
            executor=fake_sleep,
        )
        result = runner.run()
        entry = result.manifest["shards"][0]
        assert entry["status"] == "timeout"
        assert entry["attempts"] == 1  # deterministic overrun: no retry
        assert result.counts["timeout"] == 1

    def test_worker_crash_is_retried_and_pool_rebuilt(self, tmp_path, monkeypatch):
        marker = tmp_path / "crashed-once"
        monkeypatch.setenv("REPRO_TEST_CRASH_MARKER", str(marker))
        runner = CampaignRunner(
            smoke_spec((2, 3, 4)), workers=2, retries=1,
            executor=fake_crash_once,
        )
        result = runner.run()
        assert marker.exists()  # the crash actually happened
        assert result.counts["ok"] == 3 and result.counts["failed"] == 0

    def test_manifest_fingerprint_ignores_scheduling_facts(self):
        entries = [
            {"shard_id": "t02-smoke-r0", "key": "k1", "seed": 77,
             "status": "ok", "trace_fingerprint": "fp", "attempts": 1,
             "wall_seconds": 0.5, "cache_hit": False},
            {"shard_id": "t03-smoke-r0", "key": "k2", "seed": 78,
             "status": "ok", "trace_fingerprint": "fp2", "attempts": 1,
             "wall_seconds": 0.1, "cache_hit": False},
        ]
        baseline = manifest_fingerprint(entries)
        shuffled = [dict(entries[1]), dict(entries[0])]
        for entry in shuffled:
            entry.update(attempts=3, wall_seconds=9.9, cache_hit=True)
        assert manifest_fingerprint(shuffled) == baseline
        changed = [dict(entries[0]), dict(entries[1])]
        changed[0]["trace_fingerprint"] = "different"
        assert manifest_fingerprint(changed) != baseline

    def test_inline_and_pool_agree_on_fake_executor(self):
        spec = smoke_spec((2, 3, 4))
        serial = CampaignRunner(spec, workers=1, executor=fake_ok).run()
        pooled = CampaignRunner(spec, workers=2, executor=fake_ok).run()
        assert serial.fingerprint == pooled.fingerprint


# ---------------------------------------------------------------------------
# End-to-end: real simulations, caching, resume, determinism
# ---------------------------------------------------------------------------

class TestRealCampaign:
    def test_fresh_then_fully_cached_resume(self, tmp_path):
        spec = smoke_spec((2, 3))
        fresh = CampaignRunner(spec, cache_dir=tmp_path, workers=1).run()
        assert fresh.counts["ok"] == 2
        assert fresh.counts["executed"] == 2
        assert fresh.counts["cache_hits"] == 0
        assert (tmp_path / "manifest.json").exists()

        resumed = CampaignRunner(spec, cache_dir=tmp_path, workers=1).run()
        assert resumed.counts["executed"] == 0
        assert resumed.counts["cache_hits"] == 2
        assert resumed.fingerprint == fresh.fingerprint

    def test_resume_after_interrupt_reruns_only_the_missing_shard(self, tmp_path):
        spec = smoke_spec((2, 3))
        fresh = CampaignRunner(spec, cache_dir=tmp_path, workers=1).run()
        # Simulate an interrupt that lost one shard's committed record.
        victim = next(
            e for e in fresh.manifest["shards"] if e["shard_id"] == "t03-smoke-r0"
        )
        ShardCache(tmp_path).remove(victim["key"])

        resumed = CampaignRunner(spec, cache_dir=tmp_path, workers=1).run()
        assert resumed.counts["executed"] == 1
        assert resumed.counts["cache_hits"] == 1
        by_id = {e["shard_id"]: e for e in resumed.manifest["shards"]}
        assert by_id["t02-smoke-r0"]["cache_hit"] is True
        assert by_id["t03-smoke-r0"]["cache_hit"] is False
        # The re-executed shard recomputed the identical result.
        assert resumed.fingerprint == fresh.fingerprint

    def test_worker_count_does_not_change_results(self, tmp_path):
        """Regression: workers re-seed per shard, never inherit parent RNG."""
        spec = smoke_spec((2, 3))
        random.seed(1234)  # pollute the parent stream on purpose
        serial = CampaignRunner(spec, cache_dir=tmp_path / "w1", workers=1).run()
        random.seed(987654321)  # a different parent stream
        pooled = CampaignRunner(spec, cache_dir=tmp_path / "w4", workers=4).run()

        assert serial.fingerprint == pooled.fingerprint
        serial_fps = {
            e["shard_id"]: e["trace_fingerprint"]
            for e in serial.manifest["shards"]
        }
        pooled_fps = {
            e["shard_id"]: e["trace_fingerprint"]
            for e in pooled.manifest["shards"]
        }
        assert serial_fps == pooled_fps
        assert all(fp for fp in serial_fps.values())

    def test_cache_hit_replays_identical_instrumentation(self, tmp_path):
        shard = expand_spec(smoke_spec((2,)))[0]
        cache = ShardCache(tmp_path)
        live_record, live = execute_shard(
            shard, cache=cache, want_instrumentation=True
        )
        hit_record, replayed = execute_shard(
            shard, cache=cache, want_instrumentation=True
        )
        assert live_record["cache_hit"] is False
        assert hit_record["cache_hit"] is True
        assert hit_record["trace_fingerprint"] == live_record["trace_fingerprint"]
        assert replayed.seed_state_at == live.seed_state_at
        assert replayed.peer.address == live.peer.address
        assert replayed.piece_completions == live.piece_completions
        assert len(replayed.block_arrivals) == len(live.block_arrivals)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCampaignCLI:
    def test_run_then_status(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code = cli_main([
            "campaign", "run", "--torrents", "2", "--scenario", "smoke",
            "--cache-dir", cache_dir,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "t02-smoke-r0" in out
        assert (tmp_path / "cache" / "manifest.json").exists()

        code = cli_main(["campaign", "status", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "t02-smoke-r0" in out

        code = cli_main(["campaign", "status", "--cache-dir", cache_dir, "--json"])
        out = capsys.readouterr().out
        assert code == 0
        manifest = json.loads(out)
        assert manifest["counts"]["ok"] == 1

    def test_status_without_manifest_fails(self, tmp_path, capsys):
        code = cli_main(["campaign", "status", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert code == 1
